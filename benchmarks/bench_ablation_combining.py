"""Benchmark (ablation): naive identical transmission vs Alamouti smart combining (§6)."""

from bench_utils import report

from repro.experiments import ablation_combining


def test_ablation_combining(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_combining.run(n_realizations=400), rounds=1, iterations=1
    )
    report(result)
    # The Smart Combiner removes (nearly all) destructive deep fades.
    assert result.summary["alamouti_deep_fade_fraction"] < result.summary["naive_deep_fade_fraction"] / 3.0
