"""Benchmark (ablation): naive identical transmission vs Alamouti smart combining (§6)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("ablation_combining")


def test_ablation_combining(benchmark):
    config = SPEC.make_config("quick", {"n_realizations": 400})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # The Smart Combiner removes (nearly all) destructive deep fades.
    assert result.summary["alamouti_deep_fade_fraction"] < result.summary["naive_deep_fade_fraction"] / 3.0
