"""Smoke benchmark: batched PHY pipeline vs the per-packet loop.

Runs the identical Monte-Carlo workload — N packets through transmit ->
channel -> noise -> receive at a fixed seed — once through the batched
ensemble runner and once through the single-packet APIs, asserts the
decoded payloads agree, and writes the measured throughputs to
``BENCH_batch_pipeline.json`` so regressions in the batched path are
visible in version control.

Methodology: both paths consume the RNG stream in the same order (see
``repro.experiments.batch``), so they decode the same packets; timing is
wall-clock ``time.perf_counter`` (best of 3) over the full pipeline
including transmit, channel and receive.  The asserted floor (>= 2x) is
deliberately far below the typical observed speedup (~6-7x) to keep the
smoke test robust on loaded CI machines.
"""

import numpy as np

from bench_utils import timed, write_baseline

from repro.channel.multipath import DEFAULT_PROFILE
from repro.experiments.batch import run_packet_ensemble

_N_PACKETS = 48
_PAYLOAD_BYTES = 60
_SNR_DB = 20.0
_SEED = 77


def _run(batched: bool):
    return run_packet_ensemble(
        _N_PACKETS,
        payload_bytes=_PAYLOAD_BYTES,
        snr_db=_SNR_DB,
        profile=DEFAULT_PROFILE,
        seed=_SEED,
        batched=batched,
    )


def test_batched_pipeline_faster_than_per_packet(benchmark):
    # Same repeats on both sides (best-of-3) so the recorded speedup is not
    # biased by giving only one path a warmup discard.
    batched_s, batched_result = timed(lambda: _run(batched=True), repeats=3)
    per_packet_s, per_packet_result = timed(lambda: _run(batched=False), repeats=3)

    # Identical workload, identical outcome.
    assert np.array_equal(batched_result.crc_ok, per_packet_result.crc_ok)
    assert all(
        a.payload == b.payload
        for a, b in zip(batched_result.results, per_packet_result.results)
    )
    assert batched_result.delivery_ratio == 1.0

    speedup = per_packet_s / batched_s
    # The committed artifact holds only the workload parameters and the
    # integer speedup: raw wall-clock numbers jitter by several ms between
    # runs, which would churn the version-controlled file with no signal
    # (they are printed below instead).
    write_baseline(
        "batch_pipeline",
        {
            "n_packets": _N_PACKETS,
            "payload_bytes": _PAYLOAD_BYTES,
            "snr_db": _SNR_DB,
            "speedup": round(speedup),
        },
    )
    print(
        f"\nbatched: {batched_s*1e3:.1f} ms, per-packet: {per_packet_s*1e3:.1f} ms, "
        f"speedup: {speedup:.1f}x"
    )
    # Typical observed speedup is ~6-7x; the floor is deliberately loose so
    # scheduler noise on a loaded CI machine cannot fail the smoke test.
    assert speedup >= 2.0, f"batched pipeline only {speedup:.2f}x faster"

    # Register the batched path with pytest-benchmark for the timing table.
    benchmark.pedantic(lambda: _run(batched=True), rounds=1, iterations=1)
