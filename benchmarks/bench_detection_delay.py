"""Benchmark (ablation): phase-slope detection-delay estimation accuracy (§4.2a)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("ablation_slope")


def test_detection_delay_estimators(benchmark):
    config = SPEC.make_config("quick", {"n_trials": 12})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # The windowed estimator resolves delays to a small fraction of a sample
    # (tens of nanoseconds), which is what enables symbol-level sync.
    assert result.summary["windowed_median_error_ns"] < 25.0
