"""Benchmark (ablation): phase-slope detection-delay estimation accuracy (§4.2a)."""

from bench_utils import report

from repro.experiments import ablation_slope


def test_detection_delay_estimators(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_slope.run(delays_samples=(1.0, 2.0, 4.0, 8.0), n_trials=12),
        rounds=1,
        iterations=1,
    )
    report(result)
    # The windowed estimator resolves delays to a small fraction of a sample
    # (tens of nanoseconds), which is what enables symbol-level sync.
    assert result.summary["windowed_median_error_ns"] < 25.0
