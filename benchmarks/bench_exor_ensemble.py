"""Smoke benchmark: lockstep mesh-ensemble engine vs the per-topology loops.

Runs the two network-layer ensemble experiments — fig18 (ExOR topology
ensemble) and fig17 (last-hop placement ensemble) — through both execution
paths: the lockstep engine of :mod:`repro.routing.ensemble`
(``batched=True``) and the per-topology / per-placement event loops
(``batched=False``); asserts the seeded results agree, and writes the
measured ratios to ``BENCH_exor_ensemble.json``.

Methodology: both paths run the identical seeded workload — the engine
consumes every lane's generator in sequential order, so outputs are bit
identical (asserted here via the series, and bit-for-bit by
``tests/routing/test_exor_ensemble.py``).  Timing is wall-clock
``time.perf_counter`` (best of the configured repeats) over the full
experiment including topology construction and link priming.  Two workload
scales are recorded per experiment:

* **quick** — the quick presets (10-12 lanes).  Lane counts are modest,
  so the fixed lockstep overhead is only partly amortised; this is the
  conservative number.
* **full** — the full presets (200 topologies x 2 rates for fig18 — the
  hundreds-of-topologies sweep the heterogeneous-lane engine exists for —
  and 40 placements for fig17), where the stacked priming and per-turn
  batching dominate and the ratio reflects the engine's real throughput.

The asserted floors (fig18: 1.5x quick, 2.5x full) are deliberately below
the typically observed ratios (~2.5x quick, ~3.5x full) to keep the smoke
test robust on loaded CI machines; fig17's ratios are recorded but not
asserted — its trials are rate-adaptation feedback loops, so its engine
gains come only from stacked decision state, not from merged draws.
"""

from bench_utils import series_match, timed, write_baseline

from repro.experiments import registry

_EXPERIMENTS = ["fig18", "fig17"]


def _time_both(name: str, preset: str, repeats: int) -> tuple[float, float]:
    spec = registry.get(name)
    spec.run(spec.make_config("smoke"))  # warm code paths and caches
    batched_s, batched = timed(lambda: spec.run(spec.make_config(preset)), repeats=repeats)
    sequential_s, sequential = timed(
        lambda: spec.run(spec.make_config(preset, {"batched": False})), repeats=repeats
    )
    assert series_match(batched, sequential), f"{name} {preset}: paths diverge"
    return batched_s, sequential_s


def test_exor_ensemble_batched_vs_per_topology(benchmark):
    ratios: dict[str, dict[str, float]] = {}
    for name in _EXPERIMENTS:
        # The quick presets finish in tens of milliseconds, where scheduler
        # bursts dominate single measurements — best-of-5 stabilises them;
        # fig18's full preset is now a hundreds-of-topologies sweep, where
        # best-of-3 suffices.
        quick_batched, quick_sequential = _time_both(name, "quick", repeats=5)
        full_batched, full_sequential = _time_both(name, "full", repeats=3)
        ratios[name] = {
            "quick": round(quick_sequential / quick_batched, 1),
            "full": round(full_sequential / full_batched, 1),
        }
        print(
            f"\n{name} quick: batched {quick_batched*1e3:.0f} ms vs sequential "
            f"{quick_sequential*1e3:.0f} ms ({quick_sequential/quick_batched:.2f}x); "
            f"full: batched {full_batched*1e3:.0f} ms vs sequential "
            f"{full_sequential*1e3:.0f} ms ({full_sequential/full_batched:.2f}x)"
        )
        if name == "fig18":
            quick_speedup = quick_sequential / quick_batched
            full_speedup = full_sequential / full_batched

    # The committed artifact holds coarsely rounded ratios only: raw
    # wall-clock jitters run to run, which would churn the file with no
    # signal (raw numbers are printed above).
    write_baseline(
        "exor_ensemble",
        {
            "experiments": _EXPERIMENTS,
            "speedup": ratios,
        },
    )
    # Typical observed fig18 ratios: ~2.5x quick, ~3.4x full; floors are
    # loose so scheduler noise cannot fail the smoke test.
    assert quick_speedup >= 1.5, f"fig18 quick only {quick_speedup:.2f}x faster batched"
    assert full_speedup >= 2.5, f"fig18 full only {full_speedup:.2f}x faster batched"

    benchmark.pedantic(
        lambda: [
            registry.get(name).run(registry.get(name).make_config("quick"))
            for name in _EXPERIMENTS
        ],
        rounds=1,
        iterations=1,
    )
