"""Benchmark: regenerate Fig. 12 (95th-percentile synchronization error vs SNR)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig12")


def test_fig12_sync_error(benchmark):
    config = SPEC.make_config("quick", {"repetitions_per_measurement": 3})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape check: the residual error stays far below a symbol time.  The
    # paper's FPGA prototype reports < 20 ns at the 95th percentile; our
    # software detector and reduced averaging leave a larger low-SNR tail,
    # but the error remains a small fraction of the 800 ns cyclic prefix.
    assert result.summary["worst_p95_ns"] < 300.0
