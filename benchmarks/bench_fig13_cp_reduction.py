"""Benchmark: regenerate Fig. 13 (joint-transmission SNR vs cyclic prefix)."""

from bench_utils import report

from repro.experiments import fig13_cp_reduction


def test_fig13_cp_reduction(benchmark):
    result = benchmark.pedantic(
        lambda: fig13_cp_reduction.run(
            cp_values_samples=(0, 2, 4, 8, 16, 24, 32), n_frames=2, seed=5
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Shape check: SourceSync saturates at a (much) smaller CP than the
    # unsynchronized baseline (117 ns vs 469 ns in the paper).
    assert (
        result.summary["sourcesync_cp_for_95pct_peak_ns"]
        <= result.summary["baseline_cp_for_95pct_peak_ns"]
    )
