"""Benchmark: regenerate Fig. 13 (joint-transmission SNR vs cyclic prefix)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig13")


def test_fig13_cp_reduction(benchmark):
    config = SPEC.make_config("quick", {"n_frames": 2})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape check: SourceSync saturates at a (much) smaller CP than the
    # unsynchronized baseline (117 ns vs 469 ns in the paper).
    assert (
        result.summary["sourcesync_cp_for_95pct_peak_ns"]
        <= result.summary["baseline_cp_for_95pct_peak_ns"]
    )
