"""Benchmark: regenerate Fig. 14 (time-domain channel delay spread)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig14")


def test_fig14_delay_spread(benchmark):
    config = SPEC.make_config("quick", {"n_realizations": 300})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape check: roughly 15 significant taps as in the paper.
    assert 10 <= result.summary["significant_taps"] <= 20
