"""Benchmark: regenerate Fig. 14 (time-domain channel delay spread)."""

from bench_utils import report

from repro.experiments import fig14_delay_spread


def test_fig14_delay_spread(benchmark):
    result = benchmark.pedantic(
        lambda: fig14_delay_spread.run(n_realizations=300), rounds=1, iterations=1
    )
    report(result)
    # Shape check: roughly 15 significant taps as in the paper.
    assert 10 <= result.summary["significant_taps"] <= 20
