"""Benchmark: regenerate Fig. 15 (power gains per SNR regime)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig15")


def test_fig15_power_gains(benchmark):
    config = SPEC.make_config("quick", {"n_placements": 4})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape check: SourceSync gains roughly 2-3 dB of average SNR.
    assert result.summary["min_gain_db"] > 0.5
    assert result.summary["max_gain_db"] < 5.0
