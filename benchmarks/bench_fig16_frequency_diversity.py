"""Benchmark: regenerate Fig. 16 (per-subcarrier SNR profiles / frequency diversity)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig16")


def test_fig16_frequency_diversity(benchmark):
    config = SPEC.make_config("quick")
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape check: the joint profile is flatter than the single-sender ones
    # in at least one regime that produced a measurement.
    flatness_pairs = [
        (result.summary[f"{regime}_single_flatness_db"], result.summary[f"{regime}_sourcesync_flatness_db"])
        for regime in ("low", "medium", "high")
        if f"{regime}_single_flatness_db" in result.summary
    ]
    assert flatness_pairs, "no regime produced a profile"
    assert any(joint < single for single, joint in flatness_pairs)
