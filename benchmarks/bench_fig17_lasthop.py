"""Benchmark: regenerate Fig. 17 (last-hop throughput CDF, best AP vs SourceSync)."""

from bench_utils import report

from repro.experiments import fig17_lasthop


def test_fig17_lasthop(benchmark):
    result = benchmark.pedantic(
        lambda: fig17_lasthop.run(n_placements=20, n_packets=120), rounds=1, iterations=1
    )
    report(result)
    # Shape check: a clear median gain over the single best AP (paper: 1.57x).
    assert result.summary["median_gain"] > 1.1
