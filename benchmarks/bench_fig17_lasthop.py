"""Benchmark: regenerate Fig. 17 (last-hop throughput CDF, best AP vs SourceSync)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig17")


def test_fig17_lasthop(benchmark):
    config = SPEC.make_config("quick", {"n_placements": 20, "n_packets": 120})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape check: a clear median gain over the single best AP (paper: 1.57x).
    assert result.summary["median_gain"] > 1.1
