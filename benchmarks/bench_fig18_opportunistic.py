"""Benchmark: regenerate Fig. 18 (opportunistic routing throughput CDFs at 6 and 12 Mbps)."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("fig18")


def test_fig18_opportunistic(benchmark):
    config = SPEC.make_config("quick", {"n_topologies": 15, "batch_size": 20})
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Shape checks: ExOR beats single path, and ExOR+SourceSync beats both
    # (paper: 1.26-1.4x and 1.7-2x over single path respectively).
    for tag in ("6mbps", "12mbps"):
        assert result.summary[f"exor_over_single_{tag}"] > 1.0
        assert result.summary[f"sourcesync_over_single_{tag}"] > result.summary[f"exor_over_single_{tag}"] * 0.95
    assert result.summary["sourcesync_over_exor_12mbps"] > 1.1
