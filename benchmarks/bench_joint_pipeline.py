"""Smoke benchmark: batched joint-frame core path vs the per-frame loop.

Runs the four sender-diversity experiments (Figs. 12, 13, 15, 18) through
both execution paths — the lockstep ensemble engine
(:mod:`repro.core.ensemble`, ``batched=True``) and the per-frame sequential
loop (``batched=False``) — asserts the seeded results agree, and writes the
measured ratios to ``BENCH_joint_pipeline.json``.

Methodology: both paths run the identical seeded workload (the lockstep
engine consumes every session generator in sequential order, so outputs
match to float noise); timing is wall-clock ``time.perf_counter`` (best of
the configured repeats) over the full experiment including topology
construction.  Two workload scales are recorded:

* **quick** — the four quick presets end-to-end.  Ensemble widths are
  modest (fig13's chains now span three topologies each — 42 lockstep jobs
  per chain — while the others carry 6-24 lanes), so fixed batching
  overhead is only partly amortised; this is the conservative number.
* **scaled** — the full presets of the two joint-frame-bound experiments
  (fig12: 42 lockstep cells, fig15: 30), where the batch axis is wide
  enough to amortise and the ratio reflects the engine's real throughput.

fig18's scheduler is control-flow-bound (its delivery hot path was already
memoised), so its ratio hovers near 1x and the quick aggregate lands around
2x; the scaled joint-frame workloads run 3-4x faster batched.  The asserted
floors are deliberately below the typical observed ratios to keep the smoke
test robust on loaded CI machines.
"""

import time

import numpy as np

from bench_utils import series_match, timed, write_baseline

from repro.experiments import registry

_QUICK_NAMES = ["fig12", "fig13", "fig15", "fig18"]
_SCALED_NAMES = ["fig12", "fig15"]


def _time_both(name: str, preset: str, repeats: int) -> tuple[float, float]:
    spec = registry.get(name)
    spec.run(spec.make_config("smoke"))  # warm caches for both paths
    batched_s, batched = timed(
        lambda: spec.run(spec.make_config(preset)), repeats=repeats
    )
    sequential_s, sequential = timed(
        lambda: spec.run(spec.make_config(preset, {"batched": False})), repeats=repeats
    )
    assert series_match(batched, sequential), f"{name} {preset}: paths diverge"
    return batched_s, sequential_s


def test_joint_pipeline_batched_vs_per_frame(benchmark):
    quick_batched = quick_sequential = 0.0
    per_experiment = {}
    for name in _QUICK_NAMES:
        batched_s, sequential_s = _time_both(name, "quick", repeats=3)
        quick_batched += batched_s
        quick_sequential += sequential_s
        per_experiment[name] = round(sequential_s / batched_s, 1)

    scaled_batched = scaled_sequential = 0.0
    for name in _SCALED_NAMES:
        batched_s, sequential_s = _time_both(name, "full", repeats=1)
        scaled_batched += batched_s
        scaled_sequential += sequential_s

    quick_speedup = quick_sequential / quick_batched
    scaled_speedup = scaled_sequential / scaled_batched
    # The committed artifact holds the workload description and coarsely
    # rounded ratios: raw wall-clock jitters run to run, which would churn
    # the version-controlled file with no signal (raw numbers are printed).
    write_baseline(
        "joint_pipeline",
        {
            "quick_experiments": _QUICK_NAMES,
            "scaled_experiments": _SCALED_NAMES,
            "quick_speedup": round(quick_speedup, 1),
            "scaled_speedup": round(scaled_speedup, 1),
            "quick_speedup_per_experiment": per_experiment,
        },
    )
    print(
        f"\nquick: batched {quick_batched*1e3:.0f} ms vs per-frame "
        f"{quick_sequential*1e3:.0f} ms ({quick_speedup:.2f}x); "
        f"scaled: batched {scaled_batched*1e3:.0f} ms vs per-frame "
        f"{scaled_sequential*1e3:.0f} ms ({scaled_speedup:.2f}x)"
    )
    # Typical observed ratios: ~2x quick aggregate, ~3.5-4x scaled; floors
    # are loose so scheduler noise cannot fail the smoke test.
    assert quick_speedup >= 1.5, f"quick presets only {quick_speedup:.2f}x faster batched"
    assert scaled_speedup >= 2.5, f"scaled ensembles only {scaled_speedup:.2f}x faster batched"

    benchmark.pedantic(
        lambda: [
            registry.get(name).run(registry.get(name).make_config("quick"))
            for name in _QUICK_NAMES
        ],
        rounds=1,
        iterations=1,
    )
