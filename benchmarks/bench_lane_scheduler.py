"""Smoke benchmark: the shared lane scheduler adds no measurable overhead.

PR context: the three private lockstep engines (packet batch, joint-frame
core, mesh routing) moved onto the shared :mod:`repro.engine` scheduler.
This benchmark guards the migration's performance contract from both
ends and writes ``BENCH_lane_scheduler.json``:

* **engine speedups must hold** — fig18 (ExOR mesh ensemble) and
  fig19_traffic_load (flows-as-lanes) quick presets re-measure their
  batched-vs-sequential ratios on the migrated engine.  The recorded
  pre-migration ratios (``BENCH_exor_ensemble.json``: 2.7x quick;
  ``BENCH_traffic_load.json``: 1.5x bucket) would absorb a >5% scheduler
  overhead long before the asserted floors here (1.5x / 1.1x — the same
  loose quick-preset floor ``bench_exor_ensemble`` uses, so scheduler
  noise on loaded machines cannot fail the smoke test; typical observed
  ratios are ~2.2-2.5x and ~1.6x);
* **newly batched experiments** — fig16 and ablation_slope gained
  ``batched=True`` lanes in this PR; their ratios are recorded (not
  asserted: both quick workloads are small, so ~1x is acceptable);
* **raw dispatch cost** — a microbench of trivial scripted lanes through
  :class:`~repro.engine.LockstepScheduler` against the same bodies run
  inline, recording the per-lane-wave overhead in microseconds (bucketed
  coarsely; typical values are single-digit).
"""

import numpy as np

from bench_utils import series_match, timed, write_baseline

from repro.engine import Lane, LockstepScheduler
from repro.experiments import registry


def _time_both(name: str, preset: str, repeats: int) -> tuple[float, float]:
    spec = registry.get(name)
    spec.run(spec.make_config("smoke"))  # warm code paths and caches
    batched_s, batched = timed(lambda: spec.run(spec.make_config(preset)), repeats=repeats)
    sequential_s, sequential = timed(
        lambda: spec.run(spec.make_config(preset, {"batched": False})), repeats=repeats
    )
    assert series_match(batched, sequential), f"{name} {preset}: paths diverge"
    return batched_s, sequential_s


class _NullLane(Lane):
    """Trivial scripted lane: fixed rounds, one tiny draw per advance."""

    def __init__(self, rng, rounds):
        self.rng = rng
        self.after = None
        self.rounds = rounds
        self.advanced = 0

    def advance(self):
        """One wave step and one scalar draw."""
        self.advanced += 1
        self.rng.random()

    @property
    def finished(self):
        """Done after the scripted number of advances."""
        return self.advanced >= self.rounds

    def result(self):
        """The number of advances taken."""
        return self.advanced


def _dispatch_overhead_us(n_lanes: int = 200, rounds: int = 5) -> float:
    """Scheduler-vs-inline cost per lane-wave on do-nothing lanes."""
    def scheduled():
        lanes = [_NullLane(np.random.default_rng(i), rounds) for i in range(n_lanes)]
        return LockstepScheduler().run(lanes)

    def inline():
        lanes = [_NullLane(np.random.default_rng(i), rounds) for i in range(n_lanes)]
        out = []
        for lane in lanes:
            while not lane.finished:
                lane.advance()
            out.append(lane.result())
        return out

    assert scheduled() == inline()
    scheduled_s, _ = timed(scheduled, repeats=5)
    inline_s, _ = timed(inline, repeats=5)
    return max(scheduled_s - inline_s, 0.0) / (n_lanes * rounds) * 1e6


def test_lane_scheduler_overhead(benchmark):
    fig18_batched, fig18_sequential = _time_both("fig18", "quick", repeats=5)
    fig19_batched, fig19_sequential = _time_both("fig19_traffic_load", "quick", repeats=3)
    fig16_batched, fig16_sequential = _time_both("fig16", "quick", repeats=3)
    slope_batched, slope_sequential = _time_both("ablation_slope", "quick", repeats=3)
    overhead_us = _dispatch_overhead_us()

    fig18_ratio = fig18_sequential / fig18_batched
    fig19_ratio = fig19_sequential / fig19_batched
    print(
        f"\nfig18 quick {fig18_ratio:.2f}x, fig19 quick {fig19_ratio:.2f}x, "
        f"fig16 quick {fig16_sequential / fig16_batched:.2f}x, "
        f"ablation_slope quick {slope_sequential / slope_batched:.2f}x, "
        f"dispatch overhead {overhead_us:.1f} us/lane-wave"
    )

    # Coarse buckets only: raw wall-clock jitters run to run, which would
    # churn the committed file with no signal (raw numbers print above).
    write_baseline(
        "lane_scheduler",
        {
            "engine_speedup": {
                "fig18_quick": round(fig18_ratio, 1),
                "fig19_traffic_load_quick": round(fig19_ratio, 1),
            },
            "pr_floor": {"fig18_quick": 1.5, "fig19_traffic_load_quick": 1.1},
            "newly_batched_speedup": {
                "fig16_quick": round(fig16_sequential / fig16_batched, 1),
                "ablation_slope_quick": round(slope_sequential / slope_batched, 1),
            },
            "dispatch_overhead_us_per_lane_wave_bucket": float(
                np.ceil(overhead_us / 5.0) * 5.0
            ),
        },
    )
    # Pre-migration ratios (2.7x / 1.5x) minus a generous noise margin: a
    # shared-scheduler overhead anywhere near 5% of the quick presets
    # would still clear these floors, an engine regression would not.
    assert fig18_ratio >= 1.5, f"fig18 quick only {fig18_ratio:.2f}x faster batched"
    assert fig19_ratio >= 1.1, f"fig19 quick only {fig19_ratio:.2f}x faster lockstep"

    benchmark.pedantic(
        lambda: registry.get("fig18").run(registry.get("fig18").make_config("quick")),
        rounds=1,
        iterations=1,
    )
