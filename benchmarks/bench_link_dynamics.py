"""Benchmark: fault injection overhead (``BENCH_link_dynamics.json``).

Gilbert–Elliott dynamics add one upfront trajectory draw plus a per-slot
multiplier gather to every transfer; this benchmark measures what that
costs through the traffic layer at two burst regimes (short shallow
bursts vs long deep ones), for the lockstep mesh engine and the per-flow
sequential oracle.  Bit-identity between the two engines is asserted at
both regimes before any number is recorded — a fast lockstep path that
drifts from the oracle is a bug, not a speedup.
"""

from functools import partial

from bench_utils import timed, write_baseline

from repro.channel.dynamics import GilbertElliott, LinkDynamics
from repro.traffic import (
    SCHEMES,
    mice_elephants,
    poisson_workload,
    relay_mesh,
    simulate_flow_services,
)

_N_FLOWS = 64
_RATE_MBPS = 12.0
_PAYLOAD = 1460
_SEED = 20
_HORIZON = 256

#: (label, mean burst slots, bad-state multiplier): short shallow bursts
#: vs long deep ones — the two corners of the fig20 fault grid.
_REGIMES = (
    ("short_burst", 2.0, 0.5),
    ("long_burst", 16.0, 0.1),
)


def test_link_dynamics_lockstep_vs_sequential(benchmark):
    mix = mice_elephants(mice_packets=2, elephant_packets=16, elephant_fraction=0.15)
    # Mesh seed 13 keeps the ETX graph connected at full-size probes, so
    # the benchmark measures real recovery work rather than early returns.
    factory = partial(relay_mesh, 13, n_relays=3)
    workload = poisson_workload(_N_FLOWS, 0.2, mix, _RATE_MBPS, _PAYLOAD, seed=_SEED)

    def serve(lockstep, dynamics):
        return simulate_flow_services(
            workload, factory, dst=1, lockstep=lockstep, dynamics=dynamics
        )

    regimes = {}
    for label, burst_slots, bad_multiplier in _REGIMES:
        dynamics = LinkDynamics(
            gilbert_elliott=GilbertElliott.from_burst(
                burst_slots, 0.2, bad_multiplier=bad_multiplier
            ),
            horizon_slots=_HORIZON,
        )
        lockstep_s, lockstep = timed(lambda: serve(True, dynamics), repeats=3)
        sequential_s, sequential = timed(lambda: serve(False, dynamics), repeats=3)

        # The lockstep path must reproduce the sequential oracle bit for bit.
        assert lockstep == sequential

        delivered = sum(s.delivered_packets for s in lockstep["link_local"])
        offered = sum(s.size_packets for s in lockstep["link_local"])
        # Coarse buckets: the committed file should change only when the
        # engine's behaviour changes, not with timer jitter.
        regimes[label] = {
            "burst_slots": burst_slots,
            "bad_multiplier": bad_multiplier,
            "flows_per_sec_lockstep_bucket": int(round(_N_FLOWS / lockstep_s / 100) * 100),
            "flows_per_sec_sequential_bucket": int(round(_N_FLOWS / sequential_s / 100) * 100),
            "lockstep_over_sequential_bucket": round(sequential_s / max(lockstep_s, 1e-9) * 2)
            / 2,
            "linklocal_delivered_fraction": round(delivered / offered, 4),
        }

    benchmark.pedantic(
        lambda: serve(
            True,
            LinkDynamics(
                gilbert_elliott=GilbertElliott.from_burst(2.0, 0.2, bad_multiplier=0.5),
                horizon_slots=_HORIZON,
            ),
        ),
        rounds=1,
        iterations=1,
    )

    write_baseline(
        "link_dynamics",
        {
            "n_flows": _N_FLOWS,
            "schemes": list(SCHEMES),
            "horizon_slots": _HORIZON,
            "bit_identical": True,
            "regimes": regimes,
        },
    )
    for label, numbers in regimes.items():
        print(
            f"\n{label}: lockstep {numbers['flows_per_sec_lockstep_bucket']} flows/s, "
            f"sequential {numbers['flows_per_sec_sequential_bucket']} flows/s "
            f"({numbers['lockstep_over_sequential_bucket']}x)"
        )
