"""Benchmark: regenerate the §4.4 synchronization-overhead table."""

from bench_utils import report

from repro.experiments import registry

SPEC = registry.get("overhead")


def test_overhead_table(benchmark):
    config = SPEC.make_config("quick")
    result = benchmark.pedantic(lambda: SPEC.run(config), rounds=1, iterations=1)
    report(result)
    # Paper: 1.7% for two senders, 2.8% for five (1 us symbols); with 4 us
    # 802.11 symbols the same header costs a little more but stays small.
    assert result.summary["two_senders_percent"] < 3.0
    assert result.summary["five_senders_percent"] < 7.0
