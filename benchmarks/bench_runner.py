"""Smoke benchmark: registry-dispatch and parallel-runner overhead.

Two overheads of the declarative experiment API are tracked in
``BENCH_runner.json``:

* **dispatch** — the cost `ExperimentSpec.run` adds on top of calling the
  implementation function directly (config type check + config/provenance
  attachment).  Measured on the closed-form ``overhead`` experiment, whose
  own work is microseconds, so the delta is an upper bound for every real
  experiment.
* **parallel** — wall-clock of `run_all(..., jobs=4)` vs the same
  selection sequentially, at the smoke preset.  Smoke workloads are far
  too small to amortise process-pool startup, so the recorded ratio is a
  *cost* tracker (how much fork/pickle overhead the runner adds), not a
  speedup claim; the committed numbers are rounded coarsely so the
  artifact only changes when behaviour does.

Both paths assert result equality so the parallel runner is also checked
for determinism against the sequential one.
"""

from bench_utils import timed, write_baseline

from repro.experiments import registry
from repro.experiments.runner import run_all

_DISPATCH_CALLS = 50
_PARALLEL_NAMES = ["fig13", "fig15", "fig17", "ablation_slope"]


def test_registry_dispatch_and_parallel_overhead(benchmark):
    spec = registry.get("overhead")
    config = spec.make_config("smoke")

    raw_s, _ = timed(lambda: [spec.fn(config) for _ in range(_DISPATCH_CALLS)], repeats=3)
    wrapped_s, _ = timed(lambda: [spec.run(config) for _ in range(_DISPATCH_CALLS)], repeats=3)
    dispatch_us = max(wrapped_s - raw_s, 0.0) / _DISPATCH_CALLS * 1e6

    seq_s, seq = timed(lambda: run_all(_PARALLEL_NAMES, preset="smoke", jobs=1))
    par_s, par = timed(lambda: run_all(_PARALLEL_NAMES, preset="smoke", jobs=4))

    # The parallel runner must be a pure execution-strategy change: every
    # experiment seeds its own RNGs, so results are identical across jobs.
    assert seq.keys() == par.keys()
    for name in seq:
        assert seq[name].summary == par[name].summary, f"{name} differs between jobs=1 and jobs=4"

    write_baseline(
        "runner",
        {
            "dispatch_calls": _DISPATCH_CALLS,
            "parallel_experiments": _PARALLEL_NAMES,
            "preset": "smoke",
            # Coarse buckets: the committed file should change only when the
            # runner's behaviour changes, not with scheduler jitter.
            "dispatch_overhead_us_bucket": int(round(dispatch_us / 50.0) * 50),
            "parallel_over_sequential_ratio": int(round(par_s / max(seq_s, 1e-9))),
        },
    )
    print(
        f"\ndispatch overhead: {dispatch_us:.0f} us/run, "
        f"sequential: {seq_s*1e3:.0f} ms, parallel(4): {par_s*1e3:.0f} ms"
    )
    # Dispatch must stay negligible next to any real experiment (the
    # cheapest quick run is ~30 ms); the bound is loose for noisy CI boxes.
    assert dispatch_us < 5000.0

    benchmark.pedantic(lambda: run_all(_PARALLEL_NAMES, preset="smoke", jobs=1), rounds=1, iterations=1)
