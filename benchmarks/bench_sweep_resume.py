"""Benchmark: cold grid sweep vs warm-cache resume (``BENCH_sweep_cache.json``).

The fault-tolerant sweep engine's serving story is "precompute once,
answer any grid query from cache": a completed cell is keyed by a content
address of (experiment, resolved config, seed, schema/code version), so
re-running the same grid must be a directory of lookups, not a
simulation.  This benchmark runs one grid cold, resumes it warm against
the same run directory, checks the resumed results are identical, and
records the ratio.  The warm resume of a fully completed grid must be
near-instant — a regression here means the cache fast path is broken and
``sweep --resume`` silently re-simulates.
"""

from bench_utils import timed, write_baseline

from repro.experiments.runner import run_sweep
from repro.experiments.supervisor import RetryPolicy

_GRID = {"seed": [1, 2, 3, 4, 5, 6, 7, 8]}
_OVERRIDES = {"n_realizations": 800}
_JOBS = 2


def test_sweep_cold_vs_warm_cache_resume(benchmark, tmp_path):
    run_dir = tmp_path / "sweep"
    policy = RetryPolicy(retries=1, backoff_base_s=0.01)

    def sweep_into_dir():
        return run_sweep(
            "fig14", _GRID, preset="smoke", overrides=_OVERRIDES,
            jobs=_JOBS, policy=policy, run_dir=run_dir,
        )

    cold_s, cold = timed(sweep_into_dir)
    warm_s, warm = timed(sweep_into_dir)

    # The warm pass must be pure cache: every cell served without simulation,
    # with results identical to the cold run.
    assert [outcome.status for outcome in cold.outcomes] == ["completed"] * len(cold.outcomes)
    assert [outcome.status for outcome in warm.outcomes] == ["cached"] * len(warm.outcomes)
    for first, second in zip(cold.outcomes, warm.outcomes):
        assert first.result.to_json() == second.result.to_json()

    speedup = cold_s / max(warm_s, 1e-9)
    write_baseline(
        "sweep_cache",
        {
            "experiment": "fig14",
            "preset": "smoke",
            "cells": len(cold.outcomes),
            "jobs": _JOBS,
            # Coarse buckets: the committed file should change only when the
            # engine's behaviour changes, not with scheduler jitter.
            "cold_s_bucket": round(cold_s, 1),
            "warm_resume_near_instant": bool(warm_s < 0.5),
            "warm_over_cold_percent_bucket": int(round(warm_s / cold_s * 100 / 5.0) * 5),
        },
    )
    print(
        f"\ncold sweep: {cold_s*1e3:.0f} ms, warm-cache resume: {warm_s*1e3:.0f} ms "
        f"({speedup:.0f}x), {len(cold.outcomes)} cells"
    )
    # A resume of a completed grid is a handful of file loads; anything
    # slower means cells are being re-simulated.
    assert warm_s < 0.5
    assert warm_s < cold_s / 2.0

    benchmark.pedantic(sweep_into_dir, rounds=1, iterations=1)
