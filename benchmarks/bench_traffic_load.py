"""Benchmark: flows/sec through the traffic layer (``BENCH_traffic_load.json``).

The traffic layer's serving claim is that flows-as-lanes on the lockstep
mesh engine beats serving flows one at a time: one Poisson population is
simulated under all three routing schemes through the lockstep path and
through the per-flow sequential oracle, their results are checked
bit-identical, and the flows/sec rates at three offered-load points are
recorded.  Because services are independent of the arrival rate (common
random numbers across the load axis), one serving answers every load
point — the per-load numbers differ only in the FCT composition, which is
effectively free.
"""

from functools import partial

from bench_utils import timed, write_baseline

from repro.analysis.fct import extract_fct
from repro.traffic import (
    mice_elephants,
    poisson_workload,
    relay_mesh,
    simulate_flow_services,
)

#: The original three schemes, pinned so the committed baseline cannot
#: drift as the canonical scheme list grows (link_local has its own
#: benchmark in ``bench_link_dynamics.py``).
_SCHEMES = ("single_path", "exor", "sourcesync")

_N_FLOWS = 96
_LOADS = (0.05, 0.2, 0.8)
_RATE_MBPS = 12.0
_PAYLOAD = 1460
_SEED = 19


def test_traffic_load_lockstep_vs_sequential(benchmark):
    mix = mice_elephants(mice_packets=2, elephant_packets=16, elephant_fraction=0.15)
    factory = partial(relay_mesh, 17, n_relays=3)
    workloads = [
        poisson_workload(_N_FLOWS, load, mix, _RATE_MBPS, _PAYLOAD, seed=_SEED)
        for load in _LOADS
    ]

    def serve(lockstep):
        return simulate_flow_services(
            workloads[0], factory, dst=1, schemes=_SCHEMES, lockstep=lockstep
        )

    lockstep_s, lockstep = timed(lambda: serve(True), repeats=3)
    sequential_s, sequential = timed(lambda: serve(False), repeats=3)
    benchmark.pedantic(lambda: serve(True), rounds=1, iterations=1)

    # The lockstep path must reproduce the sequential oracle bit for bit.
    assert lockstep == sequential

    # FCT composition per load point (pure arithmetic on the shared serving).
    per_load = {}
    for load, workload in zip(_LOADS, workloads):
        summary = extract_fct(
            workload.arrivals_us(),
            [s.service_us for s in lockstep["sourcesync"]],
            [s.delivered_packets for s in lockstep["sourcesync"]],
            [s.size_packets for s in lockstep["sourcesync"]],
            payload_bytes=_PAYLOAD,
        )
        # Coarse rate buckets: the committed file should change only when
        # the engine's behaviour changes, not with timer jitter.
        per_load[f"{load:g}"] = {
            "flows_per_sec_lockstep_bucket": int(round(_N_FLOWS / lockstep_s / 1000) * 1000),
            "flows_per_sec_sequential_bucket": int(round(_N_FLOWS / sequential_s / 1000) * 1000),
            "p95_fct_ms_sourcesync_bucket": round(summary.p95_us / 1e3, 1),
        }

    speedup = sequential_s / max(lockstep_s, 1e-9)
    write_baseline(
        "traffic_load",
        {
            "n_flows": _N_FLOWS,
            "schemes": list(_SCHEMES),
            "loads": per_load,
            "bit_identical": True,
            "lockstep_over_sequential_bucket": round(speedup * 2) / 2,
        },
    )
    print(
        f"\nserve {_N_FLOWS} flows x {len(_SCHEMES)} schemes: "
        f"lockstep {lockstep_s*1e3:.0f} ms, sequential {sequential_s*1e3:.0f} ms "
        f"({speedup:.1f}x)"
    )
