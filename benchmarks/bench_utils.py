"""Helpers shared by the benchmark modules."""


def report(result) -> None:
    """Print an experiment report beneath the benchmark output."""
    print()
    print(result.report())
