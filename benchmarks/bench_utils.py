"""Helpers shared by the benchmark modules.

Besides the report printer, this module provides a small baseline writer:
benchmarks call :func:`write_baseline` with their headline numbers and a
``BENCH_<name>.json`` file appears in the repository root, so throughput
regressions are visible as plain-diffable artifacts regardless of whether
the session also passed pytest-benchmark's own ``--benchmark-json`` flag
(whose machine-generated output is richer but not diff-friendly).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.experiments.common import atomic_write_text

#: Repository root (the directory that holds ``benchmarks/``).
REPO_ROOT = Path(__file__).resolve().parent.parent


def report(result) -> None:
    """Print an experiment report beneath the benchmark output."""
    print()
    print(result.report())


def baseline_path(name: str) -> Path:
    """Path of the ``BENCH_<name>.json`` baseline artifact."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_baseline(name: str, summary: dict) -> Path:
    """Write a benchmark baseline as ``BENCH_<name>.json`` in the repo root.

    ``summary`` must be JSON-serialisable.  No timestamp is embedded:
    identical results should produce identical files so the committed
    artifact only changes when the measured numbers do (callers should
    round timing fields coarsely for the same reason).
    """
    path = baseline_path(name)
    payload = {"name": name, **summary}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times and return (best_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def series_match(a, b) -> bool:
    """True when two ExperimentResults carry numerically identical series.

    Shared by the batched-vs-sequential smoke benchmarks: every converted
    experiment must produce the same series through both execution paths
    before its timing ratio is reported.
    """
    if a.series.keys() != b.series.keys():
        return False
    for key in a.series:
        first, second = a.series[key], b.series[key]
        if first and isinstance(first[0], str):
            if first != second:
                return False
        elif not np.allclose(first, second, rtol=1e-9, equal_nan=True):
            return False
    return True
