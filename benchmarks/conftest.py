"""Make the library importable when the package is not installed."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))
