"""Last-hop sender diversity: two APs jointly serve a WLAN client (§7.1, Fig. 17).

Runs the registered ``fig17`` experiment: for random client placements a
wired-side SourceSync controller associates the client with its two
nearest APs and has both transmit every downlink packet simultaneously,
with SampleRate adapting the bit rate; the baseline serves the client from
its single best AP.  The per-placement throughputs of both schemes form
the CDFs of Fig. 17.

Run with:  python examples/lasthop_diversity.py [smoke|quick|full]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import registry


def main(preset: str = "quick") -> None:
    spec = registry.get("fig17")
    config = spec.make_config(preset)
    print(f"running {spec.name} at the {preset!r} preset: "
          f"{config.n_placements} placements x {config.n_packets} packets, seed {config.seed}")
    result = spec.run(config)

    best = result.series["best_ap_mbps"]
    joint = result.series["sourcesync_mbps"]
    print()
    print(f"{'placement':>10s} | {'best AP (Mbps)':>15s} | {'SourceSync (Mbps)':>18s}")
    print("-" * 50)
    for index, (b, j) in enumerate(zip(best, joint)):
        print(f"{index:10d} | {b:15.2f} | {j:18.2f}")
    print("-" * 50)
    print(f"median gain: {result.summary['median_gain']:.2f}x "
          "(the paper's Fig. 17 reports a median of 1.57x)")
    print(f"reproduce with: {spec.cli_example(preset)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
