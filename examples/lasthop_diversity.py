"""Last-hop sender diversity: two APs jointly serve a WLAN client (§7.1, Fig. 17).

A wired-side SourceSync controller associates a client with its two nearest
APs, designates a lead AP, and has both APs transmit every downlink packet
simultaneously.  The script compares the downlink goodput against the
selective-diversity baseline (single best AP) for several client positions,
with SampleRate adapting the bit rate in both cases.

Run with:  python examples/lasthop_diversity.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.channel.propagation import PathLossModel
from repro.lasthop import SourceSyncController, simulate_downlink
from repro.net.topology import Testbed


def main() -> None:
    rng = np.random.default_rng(17)
    client_positions = [(12.0, 20.0), (22.0, 28.0), (30.0, 15.0), (20.0, 38.0), (35.0, 30.0)]

    print(f"{'client position':>18s} | {'best AP (Mbps)':>15s} | {'SourceSync (Mbps)':>18s} | {'gain':>6s}")
    print("-" * 68)
    gains = []
    for position in client_positions:
        testbed = Testbed.from_positions(
            [(0.0, 0.0), (45.0, 0.0), position],
            rng=rng,
            path_loss=PathLossModel(exponent=3.5, shadowing_sigma_db=5.0),
        )
        controller = SourceSyncController(testbed, ap_ids=[0, 1], max_aps_per_client=2)
        best = simulate_downlink(testbed, controller, 2, scheme="best_ap", n_packets=200, rng=rng)
        joint = simulate_downlink(testbed, controller, 2, scheme="sourcesync", n_packets=200, rng=rng)
        gain = joint.throughput_mbps / max(best.throughput_mbps, 1e-9)
        gains.append(gain)
        print(f"{str(position):>18s} | {best.throughput_mbps:15.2f} | {joint.throughput_mbps:18.2f} | {gain:5.2f}x")

    print("-" * 68)
    print(f"median gain over these placements: {np.median(gains):.2f}x "
          "(the paper's Fig. 17 reports a median of 1.57x)")


if __name__ == "__main__":
    main()
