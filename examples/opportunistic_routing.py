"""Opportunistic routing with sender diversity (§7.2, Fig. 18).

Runs the registered ``fig18`` experiment: lossy five-node meshes (source,
destination, three relays) transfer a packet batch under three schemes —
single-path routing over the best ETX route, ExOR (receiver diversity
only), and ExOR + SourceSync (relays that overheard a packet join the
forwarder's transmission).

Run with:  python examples/opportunistic_routing.py [smoke|quick|full]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import registry


def main(preset: str = "quick") -> None:
    spec = registry.get("fig18")
    config = spec.make_config(preset)
    print(f"running {spec.name} at the {preset!r} preset: "
          f"{config.n_topologies} topologies, batch {config.batch_size}, "
          f"rates {config.rates_mbps} Mbps, seed {config.seed}")
    result = spec.run(config)
    print()
    print(result.report())
    print()
    for rate in config.rates_mbps:
        tag = f"{rate:g}mbps"
        print(f"median gains at {rate:g} Mbps: "
              f"ExOR/single {result.summary[f'exor_over_single_{tag}']:.2f}x, "
              f"SourceSync/ExOR {result.summary[f'sourcesync_over_exor_{tag}']:.2f}x, "
              f"SourceSync/single {result.summary[f'sourcesync_over_single_{tag}']:.2f}x")
    print("(paper: 1.26-1.4x, 1.35-1.45x and 1.7-2x respectively)")
    print(f"reproduce with: {spec.cli_example(preset)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
