"""Opportunistic routing with sender diversity (§7.2, Fig. 18).

A lossy five-node mesh (source, destination, three relays) transfers a batch
of packets under three schemes: single-path routing over the best ETX route,
ExOR (receiver diversity only), and ExOR + SourceSync (relays that overheard
a packet join the forwarder's transmission).

Run with:  python examples/opportunistic_routing.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.experiments.fig18_opportunistic import random_relay_topology
from repro.routing import ExorConfig, simulate_exor, simulate_exor_sourcesync, simulate_single_path


def main() -> None:
    rng = np.random.default_rng(33)
    rate_mbps = 12.0
    n_topologies = 8
    config = ExorConfig(batch_size=24)

    print(f"rate: {rate_mbps:g} Mbps, batch: {config.batch_size} packets, {n_topologies} random topologies")
    print(f"{'topology':>9s} | {'single path':>12s} | {'ExOR':>8s} | {'ExOR+SourceSync':>16s} | {'joint tx used':>13s}")
    print("-" * 72)

    singles, exors, joints = [], [], []
    for index in range(n_topologies):
        testbed = random_relay_topology(rng)
        relays = [n for n in testbed.node_ids if n not in (0, 1)]
        single = simulate_single_path(testbed, 0, 1, rate_mbps, n_packets=config.batch_size, rng=rng)
        exor = simulate_exor(testbed, 0, 1, rate_mbps, relays, config=config, rng=rng)
        joint = simulate_exor_sourcesync(testbed, 0, 1, rate_mbps, relays, config=config, rng=rng)
        singles.append(single.throughput_mbps)
        exors.append(exor.throughput_mbps)
        joints.append(joint.throughput_mbps)
        print(f"{index:9d} | {single.throughput_mbps:9.2f} Mb | {exor.throughput_mbps:5.2f} Mb | "
              f"{joint.throughput_mbps:13.2f} Mb | {joint.joint_transmissions:13d}")

    print("-" * 72)
    print(f"median throughput: single {np.median(singles):.2f}, ExOR {np.median(exors):.2f}, "
          f"ExOR+SourceSync {np.median(joints):.2f} Mbps")
    print(f"median gains: ExOR/single {np.median(exors)/np.median(singles):.2f}x, "
          f"SourceSync/ExOR {np.median(joints)/np.median(exors):.2f}x, "
          f"SourceSync/single {np.median(joints)/np.median(singles):.2f}x")
    print("(paper: 1.26-1.4x, 1.35-1.45x and 1.7-2x respectively)")


if __name__ == "__main__":
    main()
