"""Quickstart: one SourceSync joint transmission, then the experiment registry.

Part 1 walks the core API end to end: two senders (a lead and a co-sender)
deliver the same packet to one receiver over simulated indoor channels —
probe-based delay/CFO measurement (§4.2, §5), wait-time tracking
(§4.3-§4.5), and a joint frame decoded with per-sender channel estimation
and Alamouti combining (§5, §6).

Part 2 shows the declarative experiment API that regenerates the paper's
figures: every experiment is registered in ``repro.experiments.registry``
with typed configs and smoke/quick/full presets, and the same registry
backs the ``python -m repro.experiments`` command line.

Run with:  python examples/quickstart.py [smoke|quick|full]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core import JointTopology, SourceSyncConfig, SourceSyncSession
from repro.experiments import registry
from repro.experiments.runner import run_experiment
from repro.phy import bits as bitutils
from repro.phy.params import DEFAULT_PARAMS


def main(preset: str = "quick") -> None:
    rng = np.random.default_rng(2026)
    tracking_rounds = 2 if preset == "smoke" else 5

    # Lead->receiver and co-sender->receiver links both at ~12 dB, a strong
    # lead->co-sender link (they are close to each other), realistic
    # propagation distances and independent oscillators per node.
    topology = JointTopology.from_snrs(
        rng,
        lead_rx_snr_db=12.0,
        cosender_rx_snr_db=[12.0],
        lead_cosender_snr_db=[22.0],
        lead_rx_distance_m=25.0,
        cosender_rx_distance_m=[35.0],
        lead_cosender_distance_m=[12.0],
    )
    session = SourceSyncSession(topology, SourceSyncConfig(), rng=rng)

    print("== measurement phase (probes) ==")
    session.measure_delays()
    state = session._states[0]
    print(f"  lead->co-sender delay estimate : {state.lead_to_cosender_samples:6.2f} samples "
          f"(true {topology.links_lead_cosender[0].delay_samples:.2f})")
    print(f"  lead->receiver delay estimate  : {state.lead_to_receiver_samples:6.2f} samples "
          f"(true {topology.link_lead_rx.delay_samples:.2f})")
    print(f"  co-sender CFO pre-correction   : {state.cfo_to_lead_hz/1e3:6.1f} kHz")

    print("== tracking loop (§4.5) ==")
    session.converge_tracking(rounds=tracking_rounds)
    outcome = session.run_header_exchange(apply_tracking_feedback=False)
    if outcome.measured_misalignment and outcome.measured_misalignment.misalignments_samples:
        residual_ns = outcome.measured_misalignment.misalignments_samples[0] * DEFAULT_PARAMS.sample_period_ns
        print(f"  residual misalignment measured by the receiver: {residual_ns:6.1f} ns")

    print("== joint frame vs single sender ==")
    payload = bitutils.random_payload(300, rng)
    joint = session.run_joint_frame(payload, rate_mbps=12.0, genie_timing=True)
    single = session.run_single_sender_frame(payload, rate_mbps=12.0, genie_timing=True)
    print(f"  joint transmission : decoded={joint.result.success}  SNR={joint.result.snr_db:5.1f} dB")
    print(f"  lead sender alone  : decoded={single.result.success}  SNR={single.result.snr_db:5.1f} dB")
    print(f"  sender-diversity SNR gain: {joint.result.snr_db - single.result.snr_db:4.1f} dB "
          "(the paper reports 2-3 dB for two equal-power senders)")
    assert joint.result.payload == payload

    print("== the experiment registry ==")
    for spec in registry.specs():
        print(f"  {spec.name:<20s} {spec.description}")
    print(f"(run any of them with `python -m repro.experiments run <name> --preset {preset}`)")

    result = run_experiment("overhead", preset=preset)
    print()
    print(result.report())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
