"""Quickstart: one SourceSync joint transmission, end to end.

Two senders (a lead and a co-sender) deliver the same packet to one receiver
over simulated indoor channels.  The script runs the full architecture:

1. probe exchanges measure pair-wise propagation delays and CFOs (§4.2, §5);
2. the co-sender synchronizes to the lead's synchronization header and the
   tracking loop trims its wait time (§4.3-§4.5);
3. a joint frame is transmitted, combined on the channel, and decoded by the
   joint receiver with per-sender channel estimation and Alamouti combining
   (§5, §6);
4. the same packet is also sent by the lead alone, to show the SNR gain.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core import JointTopology, SourceSyncConfig, SourceSyncSession
from repro.phy import bits as bitutils
from repro.phy.params import DEFAULT_PARAMS


def main() -> None:
    rng = np.random.default_rng(2026)

    # Lead->receiver and co-sender->receiver links both at ~12 dB, a strong
    # lead->co-sender link (they are close to each other), realistic
    # propagation distances and independent oscillators per node.
    topology = JointTopology.from_snrs(
        rng,
        lead_rx_snr_db=12.0,
        cosender_rx_snr_db=[12.0],
        lead_cosender_snr_db=[22.0],
        lead_rx_distance_m=25.0,
        cosender_rx_distance_m=[35.0],
        lead_cosender_distance_m=[12.0],
    )
    session = SourceSyncSession(topology, SourceSyncConfig(), rng=rng)

    print("== measurement phase (probes) ==")
    session.measure_delays()
    state = session._states[0]
    print(f"  lead->co-sender delay estimate : {state.lead_to_cosender_samples:6.2f} samples "
          f"(true {topology.links_lead_cosender[0].delay_samples:.2f})")
    print(f"  lead->receiver delay estimate  : {state.lead_to_receiver_samples:6.2f} samples "
          f"(true {topology.link_lead_rx.delay_samples:.2f})")
    print(f"  co-sender CFO pre-correction   : {state.cfo_to_lead_hz/1e3:6.1f} kHz")

    print("== tracking loop (§4.5) ==")
    session.converge_tracking(rounds=5)
    outcome = session.run_header_exchange(apply_tracking_feedback=False)
    if outcome.measured_misalignment and outcome.measured_misalignment.misalignments_samples:
        residual_ns = outcome.measured_misalignment.misalignments_samples[0] * DEFAULT_PARAMS.sample_period_ns
        print(f"  residual misalignment measured by the receiver: {residual_ns:6.1f} ns")

    print("== joint frame vs single sender ==")
    payload = bitutils.random_payload(300, rng)
    joint = session.run_joint_frame(payload, rate_mbps=12.0, genie_timing=True)
    single = session.run_single_sender_frame(payload, rate_mbps=12.0, genie_timing=True)
    print(f"  joint transmission : decoded={joint.result.success}  SNR={joint.result.snr_db:5.1f} dB")
    print(f"  lead sender alone  : decoded={single.result.success}  SNR={single.result.snr_db:5.1f} dB")
    print(f"  sender-diversity SNR gain: {joint.result.snr_db - single.result.snr_db:4.1f} dB "
          "(the paper reports 2-3 dB for two equal-power senders)")
    assert joint.result.payload == payload


if __name__ == "__main__":
    main()
