"""Symbol-level synchronization accuracy across SNRs (§8.1, Fig. 12).

Runs the registered ``fig12`` experiment: for each SNR point SourceSync
synchronizes random two-sender topologies, the ACK-feedback tracking loop
converges, and the residual misalignment of subsequent joint headers is
measured with the paper's repeated-header ground-truth estimator.  The
experiment comes from the registry, so the same run is reproducible from
the command line:

    python -m repro.experiments run fig12 --preset quick

Run with:  python examples/sync_accuracy.py [smoke|quick|full]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import registry


def main(preset: str = "quick") -> None:
    spec = registry.get("fig12")
    config = spec.make_config(preset)
    print(f"running {spec.name} at the {preset!r} preset: {spec.description}")
    print(f"  SNR points: {config.snr_points_db} dB, "
          f"{config.n_topologies} topologies x {config.n_measurements} measurements, seed {config.seed}")
    print()
    result = spec.run(config)
    print(result.report())
    print()
    print("SourceSync keeps the senders aligned to a small fraction of the 800 ns CP;")
    print(f"reproduce this exact run with: {spec.cli_example(preset)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
