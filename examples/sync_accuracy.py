"""Symbol-level synchronization accuracy across SNRs (§8.1, Fig. 12).

For a few SNR points this script synchronizes a two-sender topology with
SourceSync, lets the ACK-feedback tracking loop converge, and reports the
residual misalignment the receiver measures on subsequent joint headers —
the experiment behind Fig. 12 of the paper.  It also shows what happens when
delay compensation is switched off (the unsynchronized baseline of §8.1.2).

Run with:  python examples/sync_accuracy.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core import JointTopology, SourceSyncConfig, SourceSyncSession
from repro.phy.params import DEFAULT_PARAMS


def residuals_ns(session: SourceSyncSession, compensate: bool, n_frames: int = 12) -> list[float]:
    values = []
    for _ in range(n_frames):
        outcome = session.run_header_exchange(
            compensate=compensate, apply_tracking_feedback=compensate
        )
        misalignment = outcome.true_misalignment_samples
        if misalignment and np.isfinite(misalignment[0]):
            values.append(abs(misalignment[0]) * DEFAULT_PARAMS.sample_period_ns)
    return values


def main() -> None:
    rng = np.random.default_rng(12)
    print(f"{'SNR (dB)':>9s} | {'SourceSync p95 (ns)':>20s} | {'baseline p95 (ns)':>18s}")
    print("-" * 55)
    for snr_db in (6.0, 12.0, 20.0):
        topo = JointTopology.from_snrs(
            rng, lead_rx_snr_db=snr_db, cosender_rx_snr_db=[snr_db], lead_cosender_snr_db=[max(snr_db, 15.0)]
        )
        session = SourceSyncSession(topo, SourceSyncConfig(), rng=rng)
        session.measure_delays()
        session.converge_tracking(rounds=6)
        synced = residuals_ns(session, compensate=True)
        baseline = residuals_ns(session, compensate=False)
        print(f"{snr_db:9.1f} | {np.percentile(synced, 95):20.1f} | {np.percentile(baseline, 95):18.1f}")
    print()
    print("SourceSync keeps the senders aligned to a small fraction of the 800 ns CP;")
    print("without compensation the misalignment is dominated by detection and propagation delays.")


if __name__ == "__main__":
    main()
