"""SourceSync reproduction library.

A from-scratch Python implementation of *SourceSync: A Distributed Wireless
Architecture for Exploiting Sender Diversity* (Rahul, Hassanieh, Katabi —
SIGCOMM 2010), together with every substrate the paper's evaluation depends
on: an 802.11a/g-like OFDM PHY, multipath channel and radio-hardware models,
a discrete-event MAC/network simulator, ExOR opportunistic routing,
single-path routing, last-hop AP diversity, SampleRate rate adaptation, and
an experiment harness that regenerates every figure of the paper's
evaluation section.

Top-level layout
----------------
``repro.phy``
    OFDM physical layer (coding, modulation, framing, detection, equalisation).
``repro.channel``
    Multipath/fading channel, AWGN, oscillator offsets, propagation delay.
``repro.hardware``
    Radio front-end model: detection latency, turnaround delay, sample clock.
``repro.core``
    The paper's contribution: symbol-level synchronizer, joint channel
    estimator, smart combiner, joint frame format, lead/co-sender and joint
    receiver logic.
``repro.net``
    Nodes, testbed topology, ETX link metrics, CSMA MAC, event simulator.
``repro.routing``
    Single-path routing, ExOR, and ExOR+SourceSync.
``repro.lasthop``
    Multi-AP downlink diversity with a wired controller and SampleRate.
``repro.traffic``
    Flow-level traffic: arrival processes, flow-size mixes, the offered-load
    knob, and flows-as-lanes service measurement over the mesh.
``repro.analysis``
    SNR/throughput metrics, CDFs and summary statistics.
``repro.experiments``
    One module per paper figure/table, regenerating the reported results.
"""

from repro.version import __version__

__all__ = ["__version__"]
