"""Analysis utilities: SNR profiles, error models, CDFs and metrics."""

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.error_models import (
    combined_subcarrier_snr,
    delivery_probability,
    effective_snr_db,
    packet_error_rate,
)
from repro.analysis.metrics import (
    evm_db,
    evm_to_snr_db,
    median_gain,
    percentile,
    throughput_mbps,
)
from repro.analysis.snr import (
    SNR_REGIMES,
    average_snr_db,
    flatness_db,
    snr_regime,
    subcarrier_snr_profile,
)

__all__ = [
    "EmpiricalCDF",
    "combined_subcarrier_snr",
    "delivery_probability",
    "effective_snr_db",
    "packet_error_rate",
    "evm_db",
    "evm_to_snr_db",
    "median_gain",
    "percentile",
    "throughput_mbps",
    "SNR_REGIMES",
    "average_snr_db",
    "flatness_db",
    "snr_regime",
    "subcarrier_snr_profile",
]
