"""Empirical CDFs, the presentation format of the paper's throughput figures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmpiricalCDF"]


@dataclass
class EmpiricalCDF:
    """An empirical cumulative distribution function over scalar samples.

    The paper reports last-hop and opportunistic-routing results as CDFs of
    per-placement throughput (Figs. 17 and 18); this class reproduces those
    curves and the summary statistics quoted in the text.
    """

    samples: np.ndarray

    def __init__(self, samples: np.ndarray | list[float]):
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ValueError("samples must be 1-D")
        if samples.size == 0:
            raise ValueError("an empirical CDF needs at least one sample")
        self.samples = np.sort(samples)

    # ------------------------------------------------------------------
    def evaluate(self, x: float | np.ndarray) -> np.ndarray:
        """Fraction of samples less than or equal to ``x``."""
        return np.searchsorted(self.samples, np.asarray(x, dtype=np.float64), side="right") / self.samples.size

    def quantile(self, q: float) -> float:
        """Inverse CDF (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self.samples, q))

    @property
    def median(self) -> float:
        """Median of the samples."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Mean of the samples."""
        return float(self.samples.mean())

    def median_gain_over(self, baseline: "EmpiricalCDF") -> float:
        """Ratio of medians relative to a baseline CDF.

        This is how the paper summarises Figs. 17/18 ("median throughput
        gain of 1.57x").
        """
        base = baseline.median
        if base <= 0:
            raise ValueError("baseline median must be positive")
        return self.median / base

    def curve(self, n_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs suitable for plotting or tabulating the CDF."""
        xs = np.linspace(self.samples[0], self.samples[-1], n_points)
        return xs, self.evaluate(xs)

    def table(self, fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)) -> dict[float, float]:
        """Quantile table used by the benchmark harnesses to print figures."""
        return {f: self.quantile(f) for f in fractions}
