"""Link-level error models: per-subcarrier SNR -> packet error rate.

The mesh-routing and last-hop experiments of the paper (Figs. 17 and 18)
involve thousands of packets over dozens of topologies, which is too much
to simulate at the sample level.  Like standard system-level wireless
simulators, we abstract each packet reception into a packet-error-rate
computed from the link's per-subcarrier SNRs:

1. per-subcarrier SNRs are compressed into an *effective SNR* with the
   exponential effective-SNR mapping (EESM) — this is what captures the
   frequency-diversity gain of SourceSync: a joint transmission has a much
   flatter per-subcarrier SNR profile (Fig. 16), so its effective SNR is
   close to its average SNR, whereas a faded single-sender link loses
   several dB;
2. the effective SNR is mapped to a PER through a logistic "waterfall"
   centred at the rate's sensitivity threshold, the usual abstraction for a
   convolutionally-coded 802.11 link.

For joint (SourceSync) transmissions, the per-subcarrier SNR is the sum of
the individual senders' per-subcarrier SNRs, which is exactly the
``sum_i |H_i|^2`` post-combining gain delivered by the Smart Combiner.
"""

from __future__ import annotations

import numpy as np

from repro.channel.awgn import db_to_linear, linear_to_db
from repro.phy.rates import Rate, rate_for_mbps

__all__ = [
    "effective_snr_db",
    "packet_error_rate",
    "delivery_probability",
    "delivery_probabilities",
    "delivery_probabilities_rates",
    "combined_subcarrier_snr",
    "combined_subcarrier_snr_batch",
    "EESM_BETA",
]

#: EESM beta parameter per modulation (typical calibrated values).
EESM_BETA = {
    "BPSK": 1.5,
    "QPSK": 2.0,
    "16QAM": 6.0,
    "64QAM": 18.0,
}

#: Steepness of the PER waterfall in dB^-1.  Coded 802.11 packets drop from
#: ~90% to ~10% PER over a few dB on a static channel; the value here is
#: slightly gentler to reflect the residual time variation (people moving,
#: interference) that real testbeds such as the paper's average over.
_WATERFALL_STEEPNESS = 0.9

#: Reference payload length for the sensitivity thresholds in the rate table.
_REFERENCE_LENGTH_BYTES = 1024.0


def effective_snr_db(per_subcarrier_snr_db: np.ndarray, modulation: str = "QPSK") -> float:
    """Exponential effective-SNR mapping over subcarriers.

    ``ESNR = -beta * ln( mean_k exp(-SNR_k / beta) )`` with SNRs in linear
    scale.  A flat profile maps to its average; a profile with deep fades is
    penalised, which is how frequency-selective fading hurts coded OFDM.
    """
    snrs = np.asarray(per_subcarrier_snr_db, dtype=np.float64)
    if snrs.size == 0:
        raise ValueError("need at least one subcarrier SNR")
    beta = EESM_BETA.get(modulation.upper().replace("-", ""), 2.0)
    linear = db_to_linear(snrs)
    mean_exp = max(float(np.mean(np.exp(-linear / beta))), 1e-300)
    esnr = -beta * np.log(mean_exp)
    return float(linear_to_db(esnr))


def packet_error_rate(
    effective_snr: float,
    rate: Rate | float,
    payload_bytes: int = 1024,
) -> float:
    """Packet error rate for a payload at a rate given the effective SNR (dB).

    The PER follows a logistic waterfall centred at the rate's sensitivity
    threshold; longer packets shift the waterfall right (more bits, more
    chances to fail), shorter packets shift it left.
    """
    rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    length_shift_db = 10.0 * np.log10(payload_bytes / _REFERENCE_LENGTH_BYTES) / 4.0
    threshold = rate_obj.min_snr_db + length_shift_db
    margin = effective_snr - threshold
    per = 1.0 / (1.0 + np.exp(_WATERFALL_STEEPNESS * margin))
    return float(np.clip(per, 0.0, 1.0))


def delivery_probability(
    per_subcarrier_snr_db: np.ndarray,
    rate: Rate | float,
    payload_bytes: int = 1024,
) -> float:
    """Probability that a packet at the given rate is received correctly.

    Thin wrapper over :func:`delivery_probabilities` with one link, so the
    scalar and batched paths share one EESM/waterfall implementation (they
    also share one memoisation cache in :class:`repro.net.topology.Testbed`).
    """
    snrs = np.asarray(per_subcarrier_snr_db, dtype=np.float64)
    return float(delivery_probabilities(snrs[None, :], rate, payload_bytes)[0])


def delivery_probabilities(
    per_subcarrier_snr_db: np.ndarray,
    rate: Rate | float,
    payload_bytes: int = 1024,
) -> np.ndarray:
    """Delivery probability of every link of a ``(n_links, n_sc)`` ensemble.

    Batched EESM + waterfall over the link axis: the routing experiments
    evaluate every directed link of a topology at once instead of once per
    ETX probe.
    """
    return delivery_probabilities_rates(per_subcarrier_snr_db, [rate], payload_bytes)[:, 0]


def delivery_probabilities_rates(
    per_subcarrier_snr_db: np.ndarray,
    rates: "list[Rate | float]",
    payload_bytes: int = 1024,
) -> np.ndarray:
    """Delivery probability of every (link, rate) pair in one pass.

    Returns an ``(n_links, n_rates)`` array.  This is the one EESM +
    waterfall kernel (:func:`delivery_probability` and
    :func:`delivery_probabilities` are thin wrappers over it); the
    compression is evaluated once per distinct beta, and every entry is
    row-wise identical to a single-link call, so rate tables precomputed
    for adaptation loops (e.g. the lockstep last-hop ensemble) reproduce
    the lazily-computed per-rate values bit for bit.
    """
    snrs = np.asarray(per_subcarrier_snr_db, dtype=np.float64)
    if snrs.ndim != 2 or snrs.shape[1] == 0:
        raise ValueError("expected a (n_links, n_subcarriers) SNR ensemble")
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    rate_objs = [r if isinstance(r, Rate) else rate_for_mbps(r) for r in rates]
    linear = db_to_linear(snrs)
    esnr_by_beta: dict[float, np.ndarray] = {}
    out = np.empty((snrs.shape[0], len(rate_objs)), dtype=np.float64)
    length_shift_db = 10.0 * np.log10(payload_bytes / _REFERENCE_LENGTH_BYTES) / 4.0
    for col, rate_obj in enumerate(rate_objs):
        beta = EESM_BETA.get(rate_obj.modulation.upper().replace("-", ""), 2.0)
        esnr_db = esnr_by_beta.get(beta)
        if esnr_db is None:
            mean_exp = np.maximum(np.mean(np.exp(-linear / beta), axis=1), 1e-300)
            esnr_db = linear_to_db(-beta * np.log(mean_exp))
            esnr_by_beta[beta] = esnr_db
        margin = esnr_db - (rate_obj.min_snr_db + length_shift_db)
        out[:, col] = 1.0 - np.clip(1.0 / (1.0 + np.exp(_WATERFALL_STEEPNESS * margin)), 0.0, 1.0)
    return out


def combined_subcarrier_snr(per_sender_snr_db: list[np.ndarray]) -> np.ndarray:
    """Per-subcarrier SNR of a SourceSync joint transmission.

    The Smart Combiner delivers ``sum_i |H_i|^2 / N0`` per subcarrier, i.e.
    the linear per-sender SNRs add.  This captures both the power gain
    (equal-power senders add 3 dB) and the diversity gain (a subcarrier is
    only bad if it is bad for *every* sender).
    """
    if not per_sender_snr_db:
        raise ValueError("need at least one sender")
    return combined_subcarrier_snr_batch(
        np.stack([np.asarray(snr, dtype=np.float64) for snr in per_sender_snr_db])
    )


def combined_subcarrier_snr_batch(per_sender_snr_db: np.ndarray) -> np.ndarray:
    """Joint per-subcarrier SNR of many links sharing one sender set.

    ``per_sender_snr_db`` stacks the senders on the leading axis
    (``(n_senders, ..., n_subcarriers)``); the linear per-sender SNRs are
    accumulated in stacking order, matching the element-wise accumulation
    of :func:`combined_subcarrier_snr` bit for bit, so batched joint
    tables agree with scalar calls that listed their senders in the same
    order.
    """
    stack = np.asarray(per_sender_snr_db, dtype=np.float64)
    if stack.ndim < 2 or stack.shape[0] == 0:
        raise ValueError("expected a (n_senders, ..., n_subcarriers) SNR stack")
    total = np.zeros_like(stack[0])
    for snr in stack:
        total = total + db_to_linear(snr)
    return np.asarray(linear_to_db(total))
