"""Flow-completion-time extraction: FCT percentiles, CDFs, load metrics.

The traffic layer (:mod:`repro.traffic`) measures each flow's *service
time* — the medium time its transfer occupies — independently; this module
composes those services with the workload's arrival times into the
quantities the traffic experiments report:

* :func:`fifo_completion_times` — completion instants under the shared
  medium's FIFO discipline (one collision domain: a flow starts service at
  ``max(arrival, previous completion)``);
* :func:`extract_fct` — per-flow FCTs plus the summary scalars (p50 / p95
  / p99 / mean, goodput, offered utilization, makespan);
* :func:`saturation_load` — the offered load at which a scheme's service
  queue saturates, from a least-squares fit of utilization versus load;
* :func:`sender_goodput_shares` and :func:`jains_index` — per-sender
  goodput shares of a multi-sender workload and their Jain fairness
  index, the per-sender fairness view the incast and link-dynamics
  experiments report.

Everything here is pure arithmetic on arrays: no randomness, so results
inherit the traffic layer's bit-identity guarantees unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.cdf import EmpiricalCDF

__all__ = [
    "FctSummary",
    "fifo_completion_times",
    "extract_fct",
    "saturation_load",
    "sender_goodput_shares",
    "jains_index",
]


@dataclass(frozen=True)
class FctSummary:
    """Per-flow FCTs of one (workload, scheme) serving plus summary scalars."""

    n_flows: int
    #: Flow-completion times in flow-index order (µs).
    fct_us: tuple[float, ...]
    p50_us: float
    p95_us: float
    p99_us: float
    mean_us: float
    #: Delivered payload bits over the makespan (Mb/s); 0 for empty serves.
    goodput_mbps: float
    #: Offered utilization: total service time over the arrival span;
    #: ``inf`` for bursts whose arrivals (nearly) coincide.
    utilization: float
    #: Time from the first arrival to the last completion (µs).
    makespan_us: float
    #: Fraction of offered packets that reached the destination.
    delivered_fraction: float

    def cdf(self) -> EmpiricalCDF:
        """Empirical CDF over the per-flow FCTs."""
        return EmpiricalCDF(list(self.fct_us))


def fifo_completion_times(arrival_us: Sequence[float], service_us: Sequence[float]) -> np.ndarray:
    """Completion instants under FIFO service of one shared medium.

    Flows are served in arrival order (stable ties by index): flow *i*
    begins at ``max(arrival_i, completion of its predecessor)`` and
    completes after its service time.  Returns completions in the input
    (flow-index) order, not arrival order.
    """
    arrivals = np.asarray(arrival_us, dtype=np.float64)
    services = np.asarray(service_us, dtype=np.float64)
    if arrivals.shape != services.shape or arrivals.ndim != 1:
        raise ValueError("arrival_us and service_us must be equal-length 1-D sequences")
    if np.any(services < 0) or np.any(arrivals < 0):
        raise ValueError("arrivals and services must be non-negative")
    order = np.argsort(arrivals, kind="stable")
    completions = np.empty_like(arrivals)
    previous = 0.0
    for k in order:
        previous = max(float(arrivals[k]), previous) + float(services[k])
        completions[k] = previous
    return completions


def extract_fct(
    arrival_us: Sequence[float],
    service_us: Sequence[float],
    delivered_packets: Sequence[int] | None = None,
    size_packets: Sequence[int] | None = None,
    payload_bytes: int = 1460,
) -> FctSummary:
    """Compose arrivals and services into per-flow FCTs and summary scalars.

    FCT is completion minus arrival under :func:`fifo_completion_times`
    (a flow that loses packets still completes when its transfer attempt
    ends — the delivered fraction reports the loss separately).  Goodput
    is delivered payload bits over the makespan; utilization is total
    service time over the arrival span (the open-loop offered load as the
    medium actually experienced it).
    """
    arrivals = np.asarray(arrival_us, dtype=np.float64)
    completions = fifo_completion_times(arrivals, service_us)
    services = np.asarray(service_us, dtype=np.float64)
    n_flows = arrivals.size
    if n_flows == 0:
        raise ValueError("extract_fct needs at least one flow")
    fct = completions - arrivals
    cdf = EmpiricalCDF(fct)

    if delivered_packets is None or size_packets is None:
        delivered_bits = 0.0
        delivered_fraction = float("nan")
    else:
        delivered = np.asarray(delivered_packets, dtype=np.float64)
        sizes = np.asarray(size_packets, dtype=np.float64)
        if delivered.shape != arrivals.shape or sizes.shape != arrivals.shape:
            raise ValueError("delivered_packets / size_packets must match arrivals")
        delivered_bits = float(delivered.sum()) * payload_bytes * 8
        delivered_fraction = float(delivered.sum() / sizes.sum()) if sizes.sum() > 0 else 0.0

    makespan = float(completions.max() - arrivals.min())
    goodput = delivered_bits / makespan if makespan > 0 else 0.0
    span = float(arrivals.max() - arrivals.min())
    utilization = float(services.sum()) / span if span > 0 else float("inf")
    return FctSummary(
        n_flows=int(n_flows),
        fct_us=tuple(float(value) for value in fct),
        p50_us=cdf.quantile(0.5),
        p95_us=cdf.quantile(0.95),
        p99_us=cdf.quantile(0.99),
        mean_us=cdf.mean,
        goodput_mbps=goodput,
        utilization=utilization,
        makespan_us=makespan,
        delivered_fraction=delivered_fraction,
    )


def saturation_load(loads: Sequence[float], utilizations: Sequence[float]) -> float:
    """Offered load at which the service queue saturates (utilization = 1).

    Open-loop utilization is linear in offered load (services do not
    depend on the arrival rate), so a least-squares fit through the origin
    — ``utilization = k · load`` — estimates the saturation point as
    ``1 / k``.  Returns ``inf`` when the fit slope is non-positive (an
    idle medium never saturates).
    """
    load_arr = np.asarray(loads, dtype=np.float64)
    util_arr = np.asarray(utilizations, dtype=np.float64)
    if load_arr.shape != util_arr.shape or load_arr.ndim != 1 or load_arr.size == 0:
        raise ValueError("loads and utilizations must be equal-length non-empty 1-D sequences")
    if np.any(load_arr <= 0):
        raise ValueError("loads must be positive")
    if not np.all(np.isfinite(util_arr)):
        raise ValueError("utilizations must be finite (incast bursts have no offered load)")
    slope = float(np.dot(load_arr, util_arr) / np.dot(load_arr, load_arr))
    if slope <= 0:
        return float("inf")
    return 1.0 / slope


def sender_goodput_shares(
    senders: Sequence[int],
    delivered_packets: Sequence[int],
    payload_bytes: int,
    makespan_us: float,
) -> dict[int, float]:
    """Per-sender delivered goodput (Mb/s) over one serving's makespan.

    ``senders[i]`` is flow *i*'s sender node; each sender's share is the
    payload bits its flows delivered over the common makespan, so the
    shares sum to the serving's aggregate goodput.  Senders that delivered
    nothing still appear (share 0.0) — starvation is exactly what the
    fairness view must expose.  Returns senders in first-appearance order.
    """
    sender_list = [int(s) for s in senders]
    delivered = np.asarray(delivered_packets, dtype=np.float64)
    if len(sender_list) != delivered.size:
        raise ValueError("senders and delivered_packets must be equal length")
    if makespan_us < 0:
        raise ValueError("makespan_us must be non-negative")
    shares: dict[int, float] = {}
    for sender, packets in zip(sender_list, delivered.tolist()):
        shares.setdefault(sender, 0.0)
        if makespan_us > 0:
            shares[sender] += packets * payload_bytes * 8 / makespan_us
    return shares


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index, ``(Σx)² / (n · Σx²)``.

    1.0 means perfectly equal shares; ``1/n`` means one participant takes
    everything.  All-zero allocations return 1.0 (an idle system treats
    everyone identically); negative shares are rejected.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("jains_index needs a non-empty 1-D sequence")
    if np.any(x < 0):
        raise ValueError("shares must be non-negative")
    total_sq = float(x.sum()) ** 2
    denom = x.size * float(np.dot(x, x))
    if denom == 0.0:
        return 1.0
    return total_sq / denom
