"""Throughput / airtime / EVM metrics used by the experiments."""

from __future__ import annotations

import numpy as np

__all__ = [
    "evm_db",
    "evm_to_snr_db",
    "throughput_mbps",
    "median_gain",
    "percentile",
]


def evm_db(equalized: np.ndarray, reference: np.ndarray) -> float:
    """Error vector magnitude (dB) of equalised symbols against the reference."""
    equalized = np.asarray(equalized, dtype=np.complex128).ravel()
    reference = np.asarray(reference, dtype=np.complex128).ravel()
    if equalized.shape != reference.shape:
        raise ValueError("equalized and reference must have the same shape")
    error = np.mean(np.abs(equalized - reference) ** 2)
    power = np.mean(np.abs(reference) ** 2)
    return float(10.0 * np.log10(max(error / max(power, 1e-30), 1e-30)))


def evm_to_snr_db(equalized: np.ndarray, reference: np.ndarray) -> float:
    """Effective post-equalisation SNR implied by the EVM.

    This is the "average receiver SNR of a joint transmission" metric used
    for the CP-sweep experiment (Fig. 13): residual inter-symbol
    interference from a too-short CP shows up as EVM degradation even when
    the thermal noise is unchanged.
    """
    return -evm_db(equalized, reference)


def throughput_mbps(delivered_payload_bits: float, elapsed_us: float) -> float:
    """Throughput in Mbps for a number of delivered bits over elapsed airtime."""
    if elapsed_us <= 0:
        raise ValueError("elapsed time must be positive")
    return float(delivered_payload_bits / elapsed_us)


def median_gain(values_new: np.ndarray, values_baseline: np.ndarray) -> float:
    """Median of the element-wise ratio new/baseline (paired samples)."""
    values_new = np.asarray(values_new, dtype=np.float64)
    values_baseline = np.asarray(values_baseline, dtype=np.float64)
    if values_new.shape != values_baseline.shape:
        raise ValueError("paired gain requires equal-length arrays")
    safe = np.maximum(values_baseline, 1e-12)
    return float(np.median(values_new / safe))


def percentile(values: np.ndarray, q: float) -> float:
    """Percentile helper that tolerates empty input (returns NaN)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return float("nan")
    return float(np.percentile(values, q))
