"""Per-subcarrier SNR profiles for single and joint transmissions.

These helpers generate and manipulate the per-subcarrier SNR vectors used
throughout the link-level experiments (Figs. 15 and 16 directly plot them;
Figs. 17 and 18 feed them into the error models).
"""

from __future__ import annotations

import numpy as np

from repro.channel.awgn import db_to_linear, linear_to_db
from repro.channel.multipath import DEFAULT_PROFILE, MultipathChannel, MultipathProfile
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.rng import require_rng

__all__ = [
    "subcarrier_snr_profile",
    "average_snr_db",
    "flatness_db",
    "snr_regime",
    "SNR_REGIMES",
]

#: SNR regime boundaries used in §8.2: low (<6 dB), medium (6-12 dB), high (>12 dB).
SNR_REGIMES = {
    "low": (float("-inf"), 6.0),
    "medium": (6.0, 12.0),
    "high": (12.0, float("inf")),
}


def subcarrier_snr_profile(
    average_snr_db_value: float,
    rng: np.random.Generator | None = None,
    profile: MultipathProfile = DEFAULT_PROFILE,
    params: OFDMParams = DEFAULT_PARAMS,
    channel: MultipathChannel | None = None,
) -> np.ndarray:
    """Per-subcarrier SNR (dB) of one link realisation with a target average.

    A multipath channel realisation is drawn (or supplied), normalised to
    unit average power, and evaluated on the occupied subcarriers; the
    requested average SNR scales the whole profile.
    """
    if channel is None:
        channel = MultipathChannel.random(
            profile, require_rng(rng, "subcarrier_snr_profile")
        ).normalized()
    response = channel.frequency_response(params.n_fft)
    occupied = params.occupied_bins()
    gains = np.abs(response[occupied]) ** 2
    gains = gains / np.mean(gains)
    return np.asarray(linear_to_db(gains * db_to_linear(average_snr_db_value)))


def average_snr_db(per_subcarrier_snr_db: np.ndarray) -> float:
    """Average SNR (dB of the mean linear SNR) across subcarriers."""
    snrs = np.asarray(per_subcarrier_snr_db, dtype=np.float64)
    return float(linear_to_db(np.mean(db_to_linear(snrs))))


def flatness_db(per_subcarrier_snr_db: np.ndarray) -> float:
    """Standard deviation of the per-subcarrier SNR in dB.

    The paper's Fig. 16 argues SourceSync's profile is *flatter* than either
    sender's; this scalar summarises that flatness (smaller = flatter).
    """
    return float(np.std(np.asarray(per_subcarrier_snr_db, dtype=np.float64)))


def snr_regime(average_snr: float) -> str:
    """Classify an average SNR into the paper's low/medium/high regimes."""
    for name, (low, high) in SNR_REGIMES.items():
        if low <= average_snr < high:
            return name
    return "high"
