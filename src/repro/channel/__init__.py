"""Wireless channel substrate: multipath fading, noise, oscillators, delays."""

from repro.channel.awgn import (
    add_noise_for_snr,
    awgn,
    db_to_linear,
    linear_to_db,
    measure_snr_db,
    noise_power_for_snr,
)
from repro.channel.composite import Link, Transmission, combine_at_receiver, link_for_snr
from repro.channel.dynamics import (
    GilbertElliott,
    LinkDynamics,
    LinkStateTrajectory,
    LossRateGrid,
    link_order,
    materialise_trajectory,
    trajectory_from_states,
    trajectory_from_uniforms,
)
from repro.channel.multipath import (
    DEFAULT_PROFILE,
    WIGLAN_PROFILE,
    MultipathChannel,
    MultipathProfile,
)
from repro.channel.oscillator import Oscillator, apply_cfo, cfo_from_ppm, relative_cfo_hz
from repro.channel.propagation import (
    PathLossModel,
    fractional_delay,
    propagation_delay_s,
    propagation_delay_samples,
)

__all__ = [
    "awgn",
    "add_noise_for_snr",
    "noise_power_for_snr",
    "measure_snr_db",
    "db_to_linear",
    "linear_to_db",
    "Link",
    "Transmission",
    "combine_at_receiver",
    "link_for_snr",
    "GilbertElliott",
    "LinkDynamics",
    "LinkStateTrajectory",
    "LossRateGrid",
    "link_order",
    "materialise_trajectory",
    "trajectory_from_states",
    "trajectory_from_uniforms",
    "MultipathChannel",
    "MultipathProfile",
    "DEFAULT_PROFILE",
    "WIGLAN_PROFILE",
    "Oscillator",
    "apply_cfo",
    "cfo_from_ppm",
    "relative_cfo_hz",
    "PathLossModel",
    "propagation_delay_s",
    "propagation_delay_samples",
    "fractional_delay",
]
