"""Additive white Gaussian noise and SNR helpers.

Batch API
---------
:func:`awgn` accepts a shape tuple, and :func:`awgn_ensemble` draws noise
for a whole ``(n_packets, n_samples)`` ensemble in one generator call while
reproducing the *exact* draw order of ``n_packets`` sequential :func:`awgn`
calls (real part then imaginary part per packet), so batched and per-packet
Monte-Carlo runs consume the RNG stream identically and produce
bit-identical noise under a fixed seed.  :func:`add_noise_for_snr` is
batch-aware along the same lines: given a 2-D input it references the SNR
to each row's signal power and draws per-row noise in per-packet order.
"""

from __future__ import annotations

import numpy as np
from repro.rng import require_rng

__all__ = [
    "awgn",
    "awgn_ensemble",
    "noise_power_for_snr",
    "add_noise_for_snr",
    "measure_snr_db",
    "db_to_linear",
    "linear_to_db",
]


def db_to_linear(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=np.float64) / 10.0)


def linear_to_db(value: float | np.ndarray, floor: float = 1e-15) -> float | np.ndarray:
    """Convert a linear power ratio to decibels (clamped away from zero)."""
    return 10.0 * np.log10(np.maximum(np.asarray(value, dtype=np.float64), floor))


def awgn(
    n_samples: int | tuple[int, ...],
    noise_power: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Complex AWGN samples with the given total (complex) power per sample.

    ``n_samples`` may be a shape tuple; note that a multi-dimensional draw
    consumes the RNG stream in a different order than sequential per-packet
    draws — use :func:`awgn_ensemble` when draw-order compatibility with
    per-packet simulation matters.
    """
    if noise_power < 0:
        raise ValueError("noise_power must be non-negative")
    rng = require_rng(rng, "awgn")
    scale = np.sqrt(noise_power / 2.0)
    return scale * (rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples))


def awgn_ensemble(
    n_packets: int,
    n_samples: int,
    noise_power: float | np.ndarray,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Complex AWGN for a packet ensemble, drawn in per-packet order.

    One ``rng.normal(size=(n_packets, 2, n_samples))`` call produces, in C
    order, exactly the sequence of draws that ``n_packets`` successive
    :func:`awgn` calls would make (each packet draws its real samples, then
    its imaginary samples), so a batched ensemble is bit-identical to the
    per-packet loop under the same generator state.

    ``noise_power`` may be a scalar or one value per packet.
    """
    noise_power = np.asarray(noise_power, dtype=np.float64)
    if np.any(noise_power < 0):
        raise ValueError("noise_power must be non-negative")
    rng = require_rng(rng, "awgn_ensemble")
    scale = np.sqrt(noise_power / 2.0)
    draws = rng.normal(size=(n_packets, 2, n_samples))
    noise = draws[:, 0, :] + 1j * draws[:, 1, :]
    if scale.ndim:
        return scale[:, None] * noise
    return scale * noise


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power that yields the requested SNR for a given signal power."""
    if signal_power < 0:
        raise ValueError("signal_power must be non-negative")
    return signal_power / float(db_to_linear(snr_db))


def add_noise_for_snr(
    samples: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | None = None,
    signal_power: float | None = None,
) -> np.ndarray:
    """Add AWGN so the result has the requested SNR.

    Parameters
    ----------
    samples:
        Signal samples (may include silent gaps; pass ``signal_power`` to
        reference the SNR to the active part of the waveform instead of the
        empirical mean power).  A 2-D ``(n_packets, n_samples)`` input is
        treated as a packet ensemble: the SNR is referenced to each row's
        own signal power and the noise is drawn in per-packet order
        (:func:`awgn_ensemble`), making the batched call bit-identical to a
        per-packet loop under the same generator state.
    snr_db:
        Target signal-to-noise ratio in dB.
    signal_power:
        Reference signal power; defaults to the mean power of ``samples``
        (per row for a 2-D input).  May be per-packet for 2-D inputs.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim == 2:
        if signal_power is None:
            power = np.mean(np.abs(samples) ** 2, axis=1)
        else:
            power = np.broadcast_to(
                np.asarray(signal_power, dtype=np.float64), (samples.shape[0],)
            )
        if np.any(power < 0):
            raise ValueError("signal_power must be non-negative")
        noise_power = power / db_to_linear(snr_db)
        return samples + awgn_ensemble(samples.shape[0], samples.shape[1], noise_power, rng)
    if signal_power is None:
        signal_power = float(np.mean(np.abs(samples) ** 2))
    noise_power = noise_power_for_snr(signal_power, snr_db)
    return samples + awgn(samples.size, noise_power, rng)


def measure_snr_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR of ``noisy`` relative to the clean ``signal``."""
    signal = np.asarray(signal, dtype=np.complex128)
    noisy = np.asarray(noisy, dtype=np.complex128)
    if signal.shape != noisy.shape:
        raise ValueError("signal and noisy must have the same shape")
    noise = noisy - signal
    sig_power = float(np.mean(np.abs(signal) ** 2))
    noise_power = float(np.mean(np.abs(noise) ** 2))
    return float(linear_to_db(sig_power / max(noise_power, 1e-30)))
