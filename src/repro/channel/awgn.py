"""Additive white Gaussian noise and SNR helpers."""

from __future__ import annotations

import numpy as np

__all__ = [
    "awgn",
    "noise_power_for_snr",
    "add_noise_for_snr",
    "measure_snr_db",
    "db_to_linear",
    "linear_to_db",
]


def db_to_linear(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=np.float64) / 10.0)


def linear_to_db(value: float | np.ndarray, floor: float = 1e-15) -> float | np.ndarray:
    """Convert a linear power ratio to decibels (clamped away from zero)."""
    return 10.0 * np.log10(np.maximum(np.asarray(value, dtype=np.float64), floor))


def awgn(
    n_samples: int,
    noise_power: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Complex AWGN samples with the given total (complex) power per sample."""
    if noise_power < 0:
        raise ValueError("noise_power must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    scale = np.sqrt(noise_power / 2.0)
    return scale * (rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples))


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power that yields the requested SNR for a given signal power."""
    if signal_power < 0:
        raise ValueError("signal_power must be non-negative")
    return signal_power / float(db_to_linear(snr_db))


def add_noise_for_snr(
    samples: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | None = None,
    signal_power: float | None = None,
) -> np.ndarray:
    """Add AWGN so the result has the requested SNR.

    Parameters
    ----------
    samples:
        Signal samples (may include silent gaps; pass ``signal_power`` to
        reference the SNR to the active part of the waveform instead of the
        empirical mean power).
    snr_db:
        Target signal-to-noise ratio in dB.
    signal_power:
        Reference signal power; defaults to the mean power of ``samples``.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if signal_power is None:
        signal_power = float(np.mean(np.abs(samples) ** 2))
    noise_power = noise_power_for_snr(signal_power, snr_db)
    return samples + awgn(samples.size, noise_power, rng)


def measure_snr_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR of ``noisy`` relative to the clean ``signal``."""
    signal = np.asarray(signal, dtype=np.complex128)
    noisy = np.asarray(noisy, dtype=np.complex128)
    if signal.shape != noisy.shape:
        raise ValueError("signal and noisy must have the same shape")
    noise = noisy - signal
    sig_power = float(np.mean(np.abs(signal) ** 2))
    noise_power = float(np.mean(np.abs(noise) ** 2))
    return float(linear_to_db(sig_power / max(noise_power, 1e-30)))
