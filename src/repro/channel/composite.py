"""Per-link channel emulation and multi-sender signal combination.

This module is the glue between individual channel impairments and the
SourceSync experiments: a :class:`Link` bundles everything that happens to a
signal between one sender and one receiver (path-loss gain, multipath,
carrier-frequency offset, propagation delay), and :func:`combine_at_receiver`
sums the contributions of several concurrent senders at a receiver — the
"composite channel" of §5 of the paper — and adds thermal noise.

For Monte-Carlo ensembles, :func:`link_ensemble_for_snr` draws all link
realisations of a batch with one generator call and
:func:`propagate_ensemble` carries a whole ``(n_packets, n_samples)``
ensemble through per-packet links with one batched noise draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import awgn, awgn_ensemble, db_to_linear
from repro.channel.multipath import (
    DEFAULT_PROFILE,
    MultipathChannel,
    MultipathEnsemble,
    MultipathProfile,
    rayleigh_taps_batch,
)
from repro.channel.oscillator import apply_cfo
from repro.channel.propagation import fractional_delay
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.rng import require_rng

__all__ = [
    "Link",
    "Transmission",
    "combine_at_receiver",
    "combine_ensemble_at_receiver",
    "link_for_snr",
    "link_ensemble_for_snr",
    "propagate_ensemble",
    "propagate_rows",
]


@dataclass
class Link:
    """Everything the medium does to one sender's signal on its way to one receiver.

    Attributes
    ----------
    channel:
        Small-scale multipath channel realisation (block fading).
    gain:
        Scalar amplitude gain from path loss / shadowing.
    delay_samples:
        One-way propagation delay in (possibly fractional) samples.
    cfo_hz:
        Carrier-frequency offset of the sender relative to the receiver.
    initial_phase:
        Carrier phase offset at simulation time zero.
    sample_rate_hz:
        Baseband sample rate used to convert the CFO into per-sample rotation.
    """

    channel: MultipathChannel
    gain: float = 1.0
    delay_samples: float = 0.0
    cfo_hz: float = 0.0
    initial_phase: float = 0.0
    sample_rate_hz: float = 20e6

    def received_power(self) -> float:
        """Average received power for a unit-power transmitted signal."""
        return float(self.gain**2 * self.channel.average_power())

    def snr_db(self, noise_power: float) -> float:
        """Average SNR this link delivers over the given noise power."""
        return float(10.0 * np.log10(max(self.received_power() / max(noise_power, 1e-30), 1e-30)))

    def propagate(self, samples: np.ndarray, start_sample: float = 0.0) -> tuple[np.ndarray, float]:
        """Apply the link to a transmitted waveform.

        Parameters
        ----------
        samples:
            Transmitted baseband samples.
        start_sample:
            Simulation time (in samples) at which the sender begins
            transmitting; may be fractional (the symbol-level synchronizer
            schedules co-sender transmissions at sub-sample resolution).

        Returns
        -------
        (waveform, start)
            ``waveform`` is the contribution of this sender as observed at
            the receiver's antenna, starting at integer sample ``start`` of
            the simulation timeline (the fractional part of delay + start is
            realised inside the waveform via a frequency-domain delay).
        """
        samples = np.asarray(samples, dtype=np.complex128)
        total_delay = float(start_sample) + float(self.delay_samples)
        integer_delay = int(np.floor(total_delay))
        fractional = total_delay - integer_delay

        shaped = self.channel.apply(samples * self.gain)
        if fractional > 1e-9:
            shaped = fractional_delay(shaped, fractional)
        # CFO rotation referenced to the receiver's absolute timeline so that
        # concurrent senders rotate relative to each other exactly as their
        # oscillators dictate.
        rotated = apply_cfo(
            shaped,
            self.cfo_hz,
            self.sample_rate_hz,
            initial_phase=self.initial_phase,
            start_sample=integer_delay,
        )
        return rotated, float(integer_delay)


@dataclass
class Transmission:
    """One sender's contribution to a received waveform."""

    link: Link
    samples: np.ndarray = field(repr=False)
    start_sample: float = 0.0


def combine_at_receiver(
    transmissions: list[Transmission],
    noise_power: float = 0.0,
    rng: np.random.Generator | None = None,
    total_length: int | None = None,
    leading_silence: int = 0,
) -> np.ndarray:
    """Superimpose concurrent transmissions at a receiver and add noise.

    This realises the composite channel of §5: each sender's waveform is
    independently delayed, faded and rotated by its own link, then all
    contributions are summed sample-by-sample on the receiver's timeline.

    Parameters
    ----------
    transmissions:
        The concurrent (or sequential) transmissions to combine.
    noise_power:
        Complex noise power per sample added on top.
    total_length:
        Length of the returned waveform; defaults to just covering the last
        contribution.
    leading_silence:
        Extra noise-only samples prepended before time zero of the timeline.
    """
    contributions: list[tuple[int, np.ndarray]] = []
    end = 0
    for tx in transmissions:
        waveform, start = tx.link.propagate(tx.samples, tx.start_sample)
        start_idx = int(start) + leading_silence
        contributions.append((start_idx, waveform))
        end = max(end, start_idx + waveform.size)
    length = total_length if total_length is not None else end
    length = max(length, end)
    received = np.zeros(length, dtype=np.complex128)
    for start_idx, waveform in contributions:
        received[start_idx : start_idx + waveform.size] += waveform
    if noise_power > 0:
        received += awgn(length, noise_power, require_rng(rng, "combine_at_receiver"))
    return received


def propagate_rows(
    links: list[Link],
    samples: np.ndarray,
    start_samples: np.ndarray | list[float] | float = 0.0,
) -> list[tuple[np.ndarray, float]]:
    """Apply link ``i`` to row ``i`` with the per-row stages batched.

    The batched counterpart of calling :meth:`Link.propagate` once per row:
    the channel convolutions run per row (a single C call each), while the
    fractional-delay FFT pair — the expensive stage — is batched across all
    rows that the scalar path would transform at the same FFT size, and the
    CFO rotation is one stacked complex exponential.  Grouping by the
    scalar path's own FFT size keeps each row bit-identical to
    :meth:`Link.propagate`.

    ``samples`` is ``(n_rows, n_samples)`` (equal-length rows); returns the
    scalar method's ``(waveform, integer_start)`` pair per row.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim != 2 or samples.shape[0] != len(links):
        raise ValueError("samples must have shape (n_links, n_samples)")
    n_rows = samples.shape[0]
    starts = np.broadcast_to(
        np.asarray(start_samples, dtype=np.float64), (n_rows,)
    )

    shaped: list[np.ndarray] = []
    integer_delays = np.zeros(n_rows, dtype=np.int64)
    fractionals = np.zeros(n_rows, dtype=np.float64)
    for i, link in enumerate(links):
        total_delay = float(starts[i]) + float(link.delay_samples)
        integer_delays[i] = int(np.floor(total_delay))
        fractionals[i] = total_delay - integer_delays[i]
        shaped.append(link.channel.apply(samples[i] * link.gain))

    # Fractional delays, grouped by the FFT size the scalar path would pick.
    groups: dict[tuple[int, int], list[int]] = {}
    for i in range(n_rows):
        if fractionals[i] <= 1e-9:
            continue
        total = shaped[i].size + int(np.ceil(fractionals[i]))
        n_fft = int(2 ** np.ceil(np.log2(max(total, 2))))
        groups.setdefault((n_fft, shaped[i].size), []).append(i)
    delayed: list[np.ndarray] = list(shaped)
    for (n_fft, _size), rows in groups.items():
        block = np.stack([shaped[i] for i in rows])
        spectrum = np.fft.fft(block, n_fft, axis=-1)
        freqs = np.fft.fftfreq(n_fft)
        shift = np.exp(-2j * np.pi * freqs[None, :] * fractionals[rows][:, None])
        out = np.fft.ifft(spectrum * shift, axis=-1)
        for row_pos, i in enumerate(rows):
            total = shaped[i].size + int(np.ceil(fractionals[i]))
            delayed[i] = out[row_pos, :total]

    # CFO rotation referenced to each row's absolute receiver timeline.
    lengths = np.array([wave.size for wave in delayed], dtype=np.int64)
    max_len = int(lengths.max(initial=0))
    cfo = np.array([link.cfo_hz for link in links])
    phase0 = np.array([link.initial_phase for link in links])
    rate = np.array([link.sample_rate_hz for link in links])
    n = integer_delays[:, None] + np.arange(max_len)[None, :]
    phase = 2.0 * np.pi * cfo[:, None] * n / rate[:, None] + phase0[:, None]
    rotation = np.exp(1j * phase)
    return [
        (delayed[i] * rotation[i, : lengths[i]], float(integer_delays[i]))
        for i in range(n_rows)
    ]


def combine_ensemble_at_receiver(
    trials: list[tuple[list[Transmission], int | None]],
    noise_power: float | list[float],
    rngs: np.random.Generator | list[np.random.Generator],
    leading_silence: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Composite-channel superposition for an ensemble of independent trials.

    The multi-sender counterpart of :func:`propagate_ensemble`: each trial
    is one ``(transmissions, total_length)`` pair — the concurrent senders
    of one joint frame — and every trial's contributions are superimposed
    on its own receiver timeline exactly as :func:`combine_at_receiver`
    would.  Per-trial noise is drawn from that trial's own generator, in
    trial order and at the trial's own (unpadded) length, so an ensemble of
    N trials consumes each generator's stream identically to N sequential
    :func:`combine_at_receiver` calls.

    Returns ``(rows, lengths)``: a zero-padded ``(n_trials, max_len)``
    array of received waveforms plus each trial's true length.  The padding
    carries no energy and no noise, mirroring what a sequential caller
    would see for each trial.
    """
    n_trials = len(trials)
    if not isinstance(rngs, list):
        rngs = [rngs] * n_trials
    if len(rngs) != n_trials:
        raise ValueError("need one generator per trial")
    powers = (
        list(noise_power) if isinstance(noise_power, (list, tuple)) else [noise_power] * n_trials
    )
    # Propagate every transmission of every trial, batching the per-row
    # stages across equal-length waveforms (headers with headers, training
    # slots with training slots) — bit-identical to per-call propagation.
    by_length: dict[int, list[tuple[int, int]]] = {}
    for t, (transmissions, _) in enumerate(trials):
        for k, tx in enumerate(transmissions):
            by_length.setdefault(np.asarray(tx.samples).shape[-1], []).append((t, k))
    propagated: dict[tuple[int, int], tuple[np.ndarray, float]] = {}
    for _, members in by_length.items():
        links = [trials[t][0][k].link for t, k in members]
        rows = np.stack([trials[t][0][k].samples for t, k in members])
        starts_rows = [trials[t][0][k].start_sample for t, k in members]
        for (t, k), result in zip(members, propagate_rows(links, rows, starts_rows)):
            propagated[(t, k)] = result

    staged: list[list[tuple[int, np.ndarray]]] = []
    lengths = np.zeros(n_trials, dtype=np.int64)
    for t, (transmissions, total_length) in enumerate(trials):
        contributions: list[tuple[int, np.ndarray]] = []
        end = 0
        for k in range(len(transmissions)):
            waveform, start = propagated[(t, k)]
            start_idx = int(start) + leading_silence
            contributions.append((start_idx, waveform))
            end = max(end, start_idx + waveform.size)
        staged.append(contributions)
        lengths[t] = max(total_length if total_length is not None else end, end)
    rows = np.zeros((n_trials, int(lengths.max(initial=0))), dtype=np.complex128)
    for t, contributions in enumerate(staged):
        for start_idx, waveform in contributions:
            rows[t, start_idx : start_idx + waveform.size] += waveform
        if powers[t] > 0:
            rows[t, : lengths[t]] += awgn(int(lengths[t]), powers[t], rngs[t])
    return rows, lengths


def link_for_snr(
    snr_db: float,
    noise_power: float = 1.0,
    profile: MultipathProfile = DEFAULT_PROFILE,
    rng: np.random.Generator | None = None,
    delay_samples: float = 0.0,
    cfo_hz: float = 0.0,
    params: OFDMParams = DEFAULT_PARAMS,
) -> Link:
    """Construct a random multipath link delivering a target average SNR.

    The multipath realisation is normalised to unit power and the link gain
    is set so that a unit-power transmitted waveform arrives with the
    requested average SNR over the given noise power.
    """
    rng = require_rng(rng, "link_for_snr")
    channel = MultipathChannel.random(profile, rng).normalized()
    gain = float(np.sqrt(db_to_linear(snr_db) * noise_power))
    initial_phase = float(rng.uniform(0.0, 2.0 * np.pi))
    return Link(
        channel=channel,
        gain=gain,
        delay_samples=delay_samples,
        cfo_hz=cfo_hz,
        initial_phase=initial_phase,
        sample_rate_hz=params.bandwidth_hz,
    )


def link_ensemble_for_snr(
    snr_db: float,
    n_links: int,
    noise_power: float = 1.0,
    profile: MultipathProfile = DEFAULT_PROFILE,
    rng: np.random.Generator | None = None,
    delay_samples: float = 0.0,
    cfo_hz: float = 0.0,
    params: OFDMParams = DEFAULT_PARAMS,
) -> list[Link]:
    """Draw an ensemble of independent random links at a target average SNR.

    All tap realisations come from one :func:`rayleigh_taps_batch` call and
    all initial phases from one uniform draw, so drawing an ensemble of N
    links costs two generator calls instead of 2N.  (The stream order
    differs from N sequential :func:`link_for_snr` calls — taps first, then
    phases — which matters only if the caller interleaves other draws.)
    """
    rng = require_rng(rng, "link_ensemble_for_snr")
    ensemble = MultipathEnsemble(rayleigh_taps_batch(profile, n_links, rng)).normalized()
    phases = rng.uniform(0.0, 2.0 * np.pi, size=n_links)
    gain = float(np.sqrt(db_to_linear(snr_db) * noise_power))
    return [
        Link(
            channel=ensemble.channel(i),
            gain=gain,
            delay_samples=delay_samples,
            cfo_hz=cfo_hz,
            initial_phase=float(phases[i]),
            sample_rate_hz=params.bandwidth_hz,
        )
        for i in range(n_links)
    ]


def propagate_ensemble(
    links: list[Link],
    samples: np.ndarray,
    noise_power: float = 0.0,
    rng: np.random.Generator | None = None,
    leading_silence: int = 0,
    total_length: int | None = None,
) -> np.ndarray:
    """Send packet ``i`` of an ensemble through link ``i`` and add noise.

    The Monte-Carlo counterpart of :func:`combine_at_receiver`: instead of
    superimposing many senders at one receiver, each row of ``samples`` is
    an independent packet observed through its own link realisation (the
    typical link-level BER/PER ensemble).  Per-link propagation loops over
    rows (each is a handful of C-speed vector ops and stays bit-identical
    to :meth:`Link.propagate`), while the noise for the whole ensemble is
    one batched draw in per-packet order (:func:`awgn_ensemble`).

    Returns a ``(n_packets, length)`` array of received waveforms, where
    ``length`` is ``total_length`` grown, if necessary, to cover the last
    contribution — the same clamping convention as
    :func:`combine_at_receiver`.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim != 2 or samples.shape[0] != len(links):
        raise ValueError("samples must have shape (n_links, n_samples)")
    waveforms: list[tuple[int, np.ndarray]] = []
    end = 0
    for link, row in zip(links, samples):
        waveform, start = link.propagate(row)
        start_idx = int(start) + leading_silence
        waveforms.append((start_idx, waveform))
        end = max(end, start_idx + waveform.size)
    length = max(total_length if total_length is not None else end, end)
    received = np.zeros((samples.shape[0], length), dtype=np.complex128)
    for i, (start_idx, waveform) in enumerate(waveforms):
        received[i, start_idx : start_idx + waveform.size] = waveform
    if noise_power > 0:
        received += awgn_ensemble(
            samples.shape[0], length, noise_power, require_rng(rng, "propagate_ensemble")
        )
    return received
