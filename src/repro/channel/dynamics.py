"""Bursty link dynamics: Gilbert–Elliott fault injection over the mesh.

Every testbed link is a *static* draw from one measured distribution; this
module adds the time axis.  A :class:`LinkDynamics` spec attaches two
fault models to a transfer:

* a per-link two-state **Gilbert–Elliott** process
  (:class:`GilbertElliott`): each directed link flips between a *good*
  and a *bad* state with fixed transition probabilities per transmission
  slot, and each state scales the link's delivery probability by its own
  multiplier — time-correlated loss bursts, the failure mode static link
  draws can never produce;
* a static **link-speed × loss-rate grid** (:class:`LossRateGrid`), the
  LinkGuardian-style ``effective_lossRate_linkSpeed`` model: an extra
  loss rate interpolated from the lane's transmission rate, applied on
  top of the state multipliers.

Determinism contract
--------------------
State trajectories are *materialised up front* from the owning lane's
generator: one ``rng.random((horizon_slots, n_links))`` draw in the
canonical all-pairs link order (:func:`link_order`), evolved by a pure
scan into per-slot multipliers (:func:`trajectory_from_uniforms`).  The
draw sits in the lane's sequential stream position — after priming,
before the first transfer draw — so the lockstep mesh engine
(:mod:`repro.routing.ensemble`) stays bit-identical to the sequential
path: dynamics only *modulates* delivery probabilities, it never changes
how many uniforms a phase consumes or in which order.  Stacked cross-lane
evolution (:func:`evolve_states` over a leading lane axis) is
comparison-only, so it is bit-identical to evolving each lane alone.

A transfer's *slot clock* is its transmission counter: the ``k``-th
transmission of a lane reads the trajectory at slot ``k`` (modulo the
horizon, which wraps periodically), which both the sequential simulators
and the lockstep engine track identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.rng import require_rng

__all__ = [
    "GilbertElliott",
    "LossRateGrid",
    "LinkDynamics",
    "LinkStateTrajectory",
    "link_order",
    "trajectory_from_uniforms",
    "trajectory_from_states",
    "materialise_trajectory",
]


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov loss-burst process of one directed link.

    Per transmission slot a link in the *good* state turns bad with
    probability ``p_good_to_bad`` and a link in the *bad* state recovers
    with probability ``p_bad_to_good``; each state scales the link's
    delivery probability by its multiplier.  The mean bad-burst length is
    ``1 / p_bad_to_good`` slots and the stationary bad fraction is
    ``p / (p + r)`` — the classic Gilbert–Elliott parametrisation.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    good_multiplier: float = 1.0
    bad_multiplier: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_good_to_bad <= 1.0 or not 0.0 < self.p_bad_to_good <= 1.0:
            raise ValueError(
                "transition probabilities must satisfy 0 <= p_good_to_bad <= 1 "
                "and 0 < p_bad_to_good <= 1 (bad bursts must be able to end)"
            )
        if self.good_multiplier < 0.0 or self.bad_multiplier < 0.0:
            raise ValueError("state multipliers must be non-negative")

    @classmethod
    def from_burst(
        cls,
        burst_slots: float,
        bad_fraction: float,
        good_multiplier: float = 1.0,
        bad_multiplier: float = 0.25,
    ) -> "GilbertElliott":
        """Build a process from its mean burst length and stationary bad fraction.

        ``burst_slots`` is the mean bad-state dwell time (``1 / r``) and
        ``bad_fraction`` the stationary probability of the bad state
        (``p / (p + r)``) — the two knobs the loss/burst grid of the
        ``fig20_link_dynamics`` experiment sweeps directly.
        """
        if burst_slots < 1.0:
            raise ValueError("burst_slots must be >= 1 (a burst lasts at least one slot)")
        if not 0.0 < bad_fraction < 1.0:
            raise ValueError("bad_fraction must be in (0, 1)")
        r = 1.0 / burst_slots
        p = r * bad_fraction / (1.0 - bad_fraction)
        if p > 1.0:
            raise ValueError(
                f"bad_fraction={bad_fraction} with burst_slots={burst_slots} needs "
                "p_good_to_bad > 1; lengthen the burst or lower the fraction"
            )
        return cls(p, r, good_multiplier, bad_multiplier)

    def stationary_bad_fraction(self) -> float:
        """Stationary probability of the bad state, ``p / (p + r)``."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return 0.0
        return self.p_good_to_bad / total

    def mean_burst_slots(self) -> float:
        """Mean bad-state dwell time in slots, ``1 / p_bad_to_good``."""
        return 1.0 / self.p_bad_to_good

    def evolve_states(self, uniforms: np.ndarray) -> np.ndarray:
        """Evolve bad/good states from pre-drawn uniforms (``True`` = bad).

        ``uniforms`` has shape ``(..., n_slots, n_links)``; leading axes
        (e.g. a lane axis) evolve independently, so stacking lanes and
        evolving once is bit-identical to evolving each lane alone — the
        operations are pure comparisons.  Slot 0 samples the stationary
        distribution (the chain starts in equilibrium); slot ``t`` applies
        the transition probabilities to slot ``t - 1``.
        """
        u = np.asarray(uniforms, dtype=np.float64)
        if u.ndim < 2:
            raise ValueError("uniforms must have shape (..., n_slots, n_links)")
        states = np.empty(u.shape, dtype=bool)
        states[..., 0, :] = u[..., 0, :] < self.stationary_bad_fraction()
        for t in range(1, u.shape[-2]):
            previous = states[..., t - 1, :]
            draw = u[..., t, :]
            states[..., t, :] = np.where(
                previous, draw >= self.p_bad_to_good, draw < self.p_good_to_bad
            )
        return states


@dataclass(frozen=True)
class LossRateGrid:
    """Static link-speed × loss-rate table (LinkGuardian's grid model).

    ``loss_rate_for`` interpolates the extra loss rate at a lane's
    transmission rate (clamped at the table's ends) — the
    ``effective_lossRate_linkSpeed`` sweep shape: faster links see higher
    effective loss.  The grid is RNG-free; it contributes a constant
    ``1 - loss`` factor to every multiplier of a lane's trajectory.
    """

    speeds_mbps: tuple[float, ...]
    loss_rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.speeds_mbps or len(self.speeds_mbps) != len(self.loss_rates):
            raise ValueError("speeds_mbps and loss_rates must be equal-length and non-empty")
        if any(b <= a for a, b in zip(self.speeds_mbps, self.speeds_mbps[1:])):
            raise ValueError("speeds_mbps must be strictly increasing")
        if any(not 0.0 <= loss < 1.0 for loss in self.loss_rates):
            raise ValueError("loss rates must be in [0, 1)")

    def loss_rate_for(self, speed_mbps: float) -> float:
        """Extra loss rate at ``speed_mbps`` (linear interpolation, clamped)."""
        return float(
            np.interp(
                speed_mbps,
                np.asarray(self.speeds_mbps, dtype=np.float64),
                np.asarray(self.loss_rates, dtype=np.float64),
            )
        )


@dataclass(frozen=True)
class LinkDynamics:
    """Fault-injection spec attached to a transfer (or lane).

    ``horizon_slots`` bounds the materialised trajectory; transfers longer
    than the horizon wrap periodically (slot ``k`` reads
    ``k % horizon_slots``).  With ``gilbert_elliott=None`` the trajectory
    consumes **no** generator draws (the grid alone is deterministic), so
    a grid-only spec leaves every existing stream untouched.
    """

    gilbert_elliott: GilbertElliott | None = None
    grid: LossRateGrid | None = None
    horizon_slots: int = 512

    def __post_init__(self) -> None:
        if self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")
        if self.gilbert_elliott is None and self.grid is None:
            raise ValueError("LinkDynamics needs a Gilbert-Elliott process or a grid (or both)")

    def draw_state_uniforms(self, rng: np.random.Generator, n_links: int) -> np.ndarray | None:
        """The trajectory's single uniform block — ``None`` when grid-only.

        One ``rng.random((horizon_slots, n_links))`` call, links in the
        canonical :func:`link_order`: the whole RNG consumption of a
        lane's dynamics, in one draw, exactly like the engine's merged
        forwarding draws.
        """
        if self.gilbert_elliott is None:
            return None
        return rng.random((self.horizon_slots, n_links))


def link_order(node_ids: Sequence[int]) -> list[tuple[int, int]]:
    """Canonical directed-link order: nested ``(a, b)`` loops, ``a != b``.

    Matches the testbed's canonical all-pairs priming order, so the
    trajectory's uniform columns have a stable, documented meaning
    independent of which links a transfer actually exercises.
    """
    return [(a, b) for a in node_ids for b in node_ids if a != b]


@dataclass(frozen=True, eq=False)
class LinkStateTrajectory:
    """Materialised per-slot delivery-probability multipliers of one lane.

    ``multipliers[slot, i, j]`` scales the delivery probability of
    directed link ``i → j`` (dense node-index axes; self links stay 1) at
    transmission slot ``slot``; slots wrap at ``horizon_slots``.  All
    accessors are pure gathers plus an elementwise ``max`` for joint
    senders — both execution paths (sequential and lockstep) call the
    same methods, so modulated probabilities are bit-identical by
    construction.
    """

    horizon_slots: int
    node_index: Mapping[int, int]
    multipliers: np.ndarray

    def pair_multiplier(self, slot: int, src: int, dst: int) -> float:
        """Multiplier of link ``src → dst`` at transmission slot ``slot``."""
        block = self.multipliers[slot % self.horizon_slots]
        return float(block[self.node_index[src], self.node_index[dst]])

    def rows(self, start_slot: int, n_slots: int, src: int, receivers: Sequence[int]) -> np.ndarray:
        """Multiplier block for consecutive slots of one sender.

        Returns ``(n_slots, len(receivers))``: row ``k`` holds the
        ``src → receiver`` multipliers at slot ``start_slot + k`` — the
        broadcast-phase shape (packet ``k`` of a wave transmits at slot
        ``start_slot + k``).
        """
        slots = (start_slot + np.arange(n_slots)) % self.horizon_slots
        cols = [self.node_index[node] for node in receivers]
        return self.multipliers[slots][:, self.node_index[src], cols]

    def receiver_multipliers(
        self, slot: int, senders: Sequence[int], receivers: Sequence[int]
    ) -> np.ndarray:
        """Per-receiver multipliers of one (possibly joint) transmission.

        A joint transmission rides the *best* participating sender's link
        state towards each receiver (element-wise ``max``): sender
        diversity hedges bursts, which is exactly the robustness question
        the link-dynamics experiment quantifies.
        """
        block = self.multipliers[slot % self.horizon_slots]
        rows = [self.node_index[node] for node in senders]
        cols = [self.node_index[node] for node in receivers]
        if len(rows) == 1:
            return block[rows[0], cols]
        return block[np.ix_(rows, cols)].max(axis=0)


def trajectory_from_uniforms(
    dynamics: LinkDynamics,
    node_ids: Sequence[int],
    rate_mbps: float,
    uniforms: np.ndarray | None,
) -> LinkStateTrajectory:
    """Build a lane's trajectory from its pre-drawn (or evolved) uniforms.

    ``uniforms`` is the block :meth:`LinkDynamics.draw_state_uniforms`
    returned for this lane — or, on the stacked lockstep path, the lane's
    slice of a cross-lane :meth:`GilbertElliott.evolve_states` batch
    passed through unchanged (pass the evolved boolean states via
    :func:`trajectory_from_states` instead in that case).
    """
    states = None
    if dynamics.gilbert_elliott is not None:
        if uniforms is None:
            raise ValueError("a Gilbert-Elliott spec needs its uniform block")
        states = dynamics.gilbert_elliott.evolve_states(uniforms)
    return trajectory_from_states(dynamics, node_ids, rate_mbps, states)


def trajectory_from_states(
    dynamics: LinkDynamics,
    node_ids: Sequence[int],
    rate_mbps: float,
    states: np.ndarray | None,
) -> LinkStateTrajectory:
    """Assemble the dense multiplier cube from evolved boolean states.

    ``states`` has shape ``(horizon_slots, n_links)`` in canonical
    :func:`link_order` (``None`` for grid-only specs).  The grid factor is
    a scalar per lane (every link transmits at the lane's rate), applied
    after the state multipliers — multiplication order is fixed so the
    sequential and stacked paths produce identical floats.
    """
    n_nodes = len(node_ids)
    index = {node: k for k, node in enumerate(node_ids)}
    cube = np.ones((dynamics.horizon_slots, n_nodes, n_nodes), dtype=np.float64)
    if states is not None:
        process = dynamics.gilbert_elliott
        flat = np.where(states, process.bad_multiplier, process.good_multiplier)
        for column, (a, b) in enumerate(link_order(node_ids)):
            cube[:, index[a], index[b]] = flat[:, column]
    if dynamics.grid is not None:
        cube = cube * (1.0 - dynamics.grid.loss_rate_for(rate_mbps))
    return LinkStateTrajectory(
        horizon_slots=dynamics.horizon_slots, node_index=index, multipliers=cube
    )


def materialise_trajectory(
    dynamics: LinkDynamics,
    node_ids: Sequence[int],
    rate_mbps: float,
    rng: np.random.Generator | None,
) -> LinkStateTrajectory:
    """Draw and evolve one lane's trajectory in its sequential stream position.

    The single uniform draw comes from ``rng`` (the *lane's* generator —
    state trajectories are keyed off the lane exactly like forwarding
    draws); grid-only specs draw nothing.
    """
    uniforms = None
    if dynamics.gilbert_elliott is not None:
        rng = require_rng(rng, "materialise_trajectory")
        uniforms = dynamics.draw_state_uniforms(rng, len(link_order(node_ids)))
    return trajectory_from_uniforms(dynamics, node_ids, rate_mbps, uniforms)
