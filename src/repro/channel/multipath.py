"""Multipath channel models.

The indoor channels of the paper's testbed are frequency selective: the
signal bounces off walls and cabinets and arrives as several delayed copies
(Fig. 3 / Fig. 14 of the paper).  We model this with a classic tapped delay
line whose tap powers follow an exponential power-delay profile and whose
tap gains are independent complex Gaussians (Rayleigh fading), which is the
standard indoor NLOS model; a Ricean K-factor adds a line-of-sight
component when needed.

Two stock profiles are provided:

* :data:`DEFAULT_PROFILE` — an indoor channel with ~60 ns RMS delay spread
  sampled at the 20 MHz baseband rate (a handful of significant taps), used
  by the link-level simulations;
* :data:`WIGLAN_PROFILE` — the same physical delay spread expressed at the
  128 MHz sampling rate of the paper's WiGLAN platform, where it spans
  roughly 15 significant taps, matching Fig. 14 of the paper.

Monte-Carlo ensembles should draw all realisations at once with
:func:`rayleigh_taps_batch` / :class:`MultipathEnsemble` — one generator
call for the whole batch, with the same draw order (and therefore the same
taps under a fixed seed) as a loop of per-realisation draws for Rayleigh
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.rng import require_rng

__all__ = [
    "MultipathProfile",
    "MultipathChannel",
    "MultipathEnsemble",
    "rayleigh_taps",
    "rayleigh_taps_batch",
    "DEFAULT_PROFILE",
    "WIGLAN_PROFILE",
]


@dataclass(frozen=True)
class MultipathProfile:
    """Statistical description of a tapped-delay-line channel.

    Attributes
    ----------
    n_taps:
        Number of sample-spaced taps.
    rms_delay_spread_samples:
        RMS delay spread of the exponential power-delay profile, in samples.
    k_factor_db:
        Ricean K factor of the first tap in dB; ``-inf`` means pure Rayleigh.
    """

    n_taps: int = 4
    rms_delay_spread_samples: float = 1.2
    k_factor_db: float = float("-inf")

    def tap_powers(self) -> np.ndarray:
        """Normalised (sum = 1) average power of each tap."""
        if self.n_taps < 1:
            raise ValueError("n_taps must be at least 1")
        if self.n_taps == 1:
            return np.array([1.0])
        decay = max(self.rms_delay_spread_samples, 1e-6)
        powers = np.exp(-np.arange(self.n_taps) / decay)
        return powers / powers.sum()


#: Default indoor profile at the 20 MHz baseband rate (~60 ns RMS spread).
DEFAULT_PROFILE = MultipathProfile()

#: The same physical channel expressed at the 128 MHz sampling rate of the
#: paper's WiGLAN radio, giving ~15 significant taps as in Fig. 14.
WIGLAN_PROFILE = MultipathProfile(n_taps=15, rms_delay_spread_samples=3.0)


def rayleigh_taps(
    profile: MultipathProfile,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one realisation of complex tap gains for a profile.

    The first tap optionally has a Ricean (line-of-sight) component whose
    relative power is set by the profile's K factor.

    Thin wrapper over :func:`rayleigh_taps_batch` with one realisation (the
    batched draw consumes the RNG stream in exactly the same order).
    """
    return rayleigh_taps_batch(profile, 1, rng)[0]


def rayleigh_taps_batch(
    profile: MultipathProfile,
    n_realizations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw an ensemble of tap-gain realisations in one generator call.

    Returns a ``(n_realizations, n_taps)`` array.  The Gaussian draw uses
    shape ``(n_realizations, 2, n_taps)``, whose C order reproduces exactly
    the sequence of per-realisation draws (real taps then imaginary taps),
    so for Rayleigh profiles a batched ensemble is bit-identical to a loop
    of :func:`rayleigh_taps` calls under the same generator state.  Ricean
    profiles draw all line-of-sight phases *after* the Gaussians, which is
    statistically equivalent but consumes the stream in a different order
    than the per-realisation loop.
    """
    powers = profile.tap_powers()
    draws = rng.normal(size=(n_realizations, 2, profile.n_taps))
    scattered = (draws[:, 0, :] + 1j * draws[:, 1, :]) / np.sqrt(2.0)
    taps = scattered * np.sqrt(powers)
    if np.isfinite(profile.k_factor_db):
        k = 10.0 ** (profile.k_factor_db / 10.0)
        p0 = powers[0]
        phases = rng.uniform(0, 2 * np.pi, size=n_realizations)
        los = np.sqrt(p0 * k / (k + 1.0)) * np.exp(1j * phases)
        taps[:, 0] = los + taps[:, 0] * np.sqrt(1.0 / (k + 1.0))
    return taps


class MultipathChannel:
    """A static (block-fading) multipath channel realisation.

    The channel is constant over a packet — the same assumption the paper
    makes for a single sender-receiver pair ("single sender-receiver
    channels ... have a constant attenuation throughout a packet", §1).

    Parameters
    ----------
    taps:
        Complex tap gains; tap ``k`` delays the signal by ``k`` samples.
    gain:
        Extra scalar amplitude gain applied on top of the taps (used to
        impose a target average SNR or path loss).
    """

    def __init__(self, taps: np.ndarray, gain: float = 1.0):
        taps = np.asarray(taps, dtype=np.complex128)
        if taps.ndim != 1 or taps.size == 0:
            raise ValueError("taps must be a non-empty 1-D array")
        self.taps = taps * gain

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        profile: MultipathProfile = DEFAULT_PROFILE,
        rng: np.random.Generator | None = None,
        gain: float = 1.0,
    ) -> "MultipathChannel":
        """Draw a random channel realisation from a profile."""
        rng = require_rng(rng, "MultipathChannel.random")
        return cls(rayleigh_taps(profile, rng), gain=gain)

    @classmethod
    def flat(cls, gain: complex = 1.0) -> "MultipathChannel":
        """A single-tap (frequency-flat) channel."""
        return cls(np.array([gain], dtype=np.complex128))

    # ------------------------------------------------------------------
    @property
    def n_taps(self) -> int:
        """Number of taps."""
        return int(self.taps.size)

    def average_power(self) -> float:
        """Total average power gain of the channel."""
        return float(np.sum(np.abs(self.taps) ** 2))

    def normalized(self) -> "MultipathChannel":
        """Return a copy scaled to unit average power."""
        power = self.average_power()
        if power <= 0:
            raise ValueError("cannot normalise a zero channel")
        return MultipathChannel(self.taps / np.sqrt(power))

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve a sample stream with the channel impulse response.

        The output has the same length as the input plus ``n_taps - 1``
        trailing samples (full convolution), so inter-symbol interference
        into whatever follows the packet is preserved.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        return np.convolve(samples, self.taps)

    def frequency_response(self, n_fft: int) -> np.ndarray:
        """Channel frequency response on an ``n_fft``-point grid."""
        return np.fft.fft(self.taps, n_fft)

    def rms_delay_spread_samples(self) -> float:
        """RMS delay spread of this realisation in samples."""
        power = np.abs(self.taps) ** 2
        total = power.sum()
        if total <= 0:
            return 0.0
        delays = np.arange(self.n_taps)
        mean = (delays * power).sum() / total
        second = ((delays - mean) ** 2 * power).sum() / total
        return float(np.sqrt(second))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultipathChannel(n_taps={self.n_taps}, power={self.average_power():.3f})"


class MultipathEnsemble:
    """A batch of static multipath realisations, one per packet.

    Holds a ``(n_channels, n_taps)`` tap matrix so a whole Monte-Carlo
    ensemble is drawn with one generator call
    (:func:`rayleigh_taps_batch`) and its frequency responses / delay
    statistics are computed with batched numpy operations.  Per-packet
    convolution (:meth:`apply`) intentionally loops ``np.convolve`` over
    rows: each convolution is a single C call, and reusing the scalar
    kernel keeps the ensemble output bit-identical to per-packet
    :meth:`MultipathChannel.apply` calls.
    """

    def __init__(self, taps: np.ndarray, gain: float | np.ndarray = 1.0):
        taps = np.asarray(taps, dtype=np.complex128)
        if taps.ndim != 2 or taps.shape[1] == 0:
            raise ValueError("taps must be a non-empty (n_channels, n_taps) array")
        gain = np.asarray(gain, dtype=np.float64)
        self.taps = taps * (gain[:, None] if gain.ndim else gain)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        profile: MultipathProfile = DEFAULT_PROFILE,
        n_channels: int = 1,
        rng: np.random.Generator | None = None,
        gain: float | np.ndarray = 1.0,
    ) -> "MultipathEnsemble":
        """Draw an ensemble of random channel realisations from a profile."""
        rng = require_rng(rng, "MultipathEnsemble.random")
        return cls(rayleigh_taps_batch(profile, n_channels, rng), gain=gain)

    # ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        """Number of channel realisations in the ensemble."""
        return int(self.taps.shape[0])

    @property
    def n_taps(self) -> int:
        """Number of taps per realisation."""
        return int(self.taps.shape[1])

    def average_power(self) -> np.ndarray:
        """Total average power gain per realisation, shape ``(n_channels,)``."""
        return np.sum(np.abs(self.taps) ** 2, axis=1)

    def normalized(self) -> "MultipathEnsemble":
        """Return a copy with every realisation scaled to unit average power."""
        power = self.average_power()
        if np.any(power <= 0):
            raise ValueError("cannot normalise a zero channel")
        return MultipathEnsemble(self.taps / np.sqrt(power)[:, None])

    def channel(self, index: int) -> MultipathChannel:
        """Single-packet view of one realisation."""
        return MultipathChannel(self.taps[index])

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve each row of ``samples`` with its own impulse response.

        ``samples`` has shape ``(n_channels, n_samples)``; the output has
        ``n_taps - 1`` extra trailing samples per row (full convolution),
        matching :meth:`MultipathChannel.apply` bit-for-bit per row.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 2 or samples.shape[0] != self.n_channels:
            raise ValueError("samples must have shape (n_channels, n_samples)")
        out = np.empty(
            (self.n_channels, samples.shape[1] + self.n_taps - 1), dtype=np.complex128
        )
        for i in range(self.n_channels):
            out[i] = np.convolve(samples[i], self.taps[i])
        return out

    def frequency_response(self, n_fft: int) -> np.ndarray:
        """Per-realisation frequency response, shape ``(n_channels, n_fft)``."""
        return np.fft.fft(self.taps, n_fft, axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultipathEnsemble(n_channels={self.n_channels}, n_taps={self.n_taps})"
