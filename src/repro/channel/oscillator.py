"""Oscillator imperfections: carrier-frequency and sampling-frequency offsets.

Every radio derives its carrier and sampling clock from its own crystal, and
crystals of different nodes never run at exactly the same frequency (§5 of
the paper, citing Meyr et al.).  The offset between a sender and a receiver
makes the per-sender channel rotate during a packet — the effect the Joint
Channel Estimator must track, and the reason the Smart Combiner is needed at
all.  This module models those impairments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.rng import require_rng

__all__ = ["Oscillator", "apply_cfo", "cfo_from_ppm", "relative_cfo_hz"]


def cfo_from_ppm(ppm: float, carrier_hz: float = 5.24e9) -> float:
    """Carrier frequency offset in Hz for a crystal error in parts-per-million.

    802.11a operates near 5.2 GHz; a typical +-20 ppm crystal therefore
    produces offsets of up to ~100 kHz.
    """
    return ppm * 1e-6 * carrier_hz


@dataclass(frozen=True)
class Oscillator:
    """A node's oscillator, characterised by its error in ppm.

    Attributes
    ----------
    ppm:
        Frequency error of this node's crystal relative to nominal.
    carrier_hz:
        Nominal carrier frequency.
    """

    ppm: float
    carrier_hz: float = 5.24e9

    @classmethod
    def random(
        cls,
        rng: np.random.Generator | None = None,
        max_ppm: float = 20.0,
        carrier_hz: float = 5.24e9,
    ) -> "Oscillator":
        """Draw a random oscillator within +-``max_ppm``."""
        rng = require_rng(rng, "Oscillator.random")
        return cls(ppm=float(rng.uniform(-max_ppm, max_ppm)), carrier_hz=carrier_hz)

    @property
    def offset_hz(self) -> float:
        """Absolute carrier offset of this oscillator from nominal, in Hz."""
        return cfo_from_ppm(self.ppm, self.carrier_hz)

    def cfo_to(self, other: "Oscillator") -> float:
        """Carrier frequency offset of this node relative to another, in Hz."""
        return self.offset_hz - other.offset_hz

    def sampling_offset_ppm(self) -> float:
        """Sampling clock error; the same crystal drives both clocks."""
        return self.ppm


def relative_cfo_hz(sender: Oscillator, receiver: Oscillator) -> float:
    """CFO experienced by ``receiver`` for a transmission from ``sender``."""
    return sender.cfo_to(receiver)


def apply_cfo(
    samples: np.ndarray,
    cfo_hz: float,
    sample_rate_hz: float,
    initial_phase: float = 0.0,
    start_sample: int = 0,
) -> np.ndarray:
    """Rotate a sample stream by a carrier frequency offset.

    Parameters
    ----------
    samples:
        Baseband samples as seen by the receiver.
    cfo_hz:
        Frequency offset (sender relative to receiver) in Hz.
    sample_rate_hz:
        Baseband sample rate.
    initial_phase:
        Carrier phase at sample index ``start_sample``.
    start_sample:
        Absolute index of the first sample, so that concatenated segments
        rotate continuously.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    n = np.arange(start_sample, start_sample + samples.size)
    phase = 2.0 * np.pi * cfo_hz * n / sample_rate_hz + initial_phase
    return samples * np.exp(1j * phase)
