"""Propagation: path loss, shadowing and time-of-flight delays.

The testbed experiments of the paper depend on link SNRs and loss rates that
vary widely across node placements (Fig. 11 shows an office floor with
walls, metal cabinets, LOS and NLOS paths).  We model the large-scale
behaviour with the standard log-distance path-loss model plus log-normal
shadowing, and convert distances to propagation delays for the symbol-level
synchronizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.params import SPEED_OF_LIGHT
from repro.rng import require_rng

__all__ = ["PathLossModel", "propagation_delay_s", "propagation_delay_samples", "fractional_delay"]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with log-normal shadowing.

    ``PL(d) = PL(d0) + 10 * n * log10(d / d0) + X_sigma``

    Attributes
    ----------
    exponent:
        Path-loss exponent ``n``; 3.0 is typical for an office with walls.
    reference_loss_db:
        Loss at the reference distance ``d0`` (1 m) in dB.
    shadowing_sigma_db:
        Standard deviation of the log-normal shadowing term.
    tx_power_dbm:
        Transmit power (FCC-limited, the paper notes a single sender cannot
        simply raise its power, which is why combining senders helps).
    noise_floor_dbm:
        Receiver noise floor for a 20 MHz channel.
    """

    exponent: float = 3.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 6.0
    tx_power_dbm: float = 15.0
    noise_floor_dbm: float = -90.0

    def path_loss_db(
        self,
        distance_m: float,
        rng: np.random.Generator | None = None,
        shadowing: bool = True,
    ) -> float:
        """Path loss in dB at the given distance, optionally with shadowing.

        ``rng`` is required whenever a shadowing draw is made (i.e. unless
        ``shadowing=False`` or ``shadowing_sigma_db == 0``).
        """
        distance_m = max(float(distance_m), 0.1)
        loss = self.reference_loss_db + 10.0 * self.exponent * np.log10(distance_m)
        if shadowing and self.shadowing_sigma_db > 0:
            rng = require_rng(rng, "PathLossModel.path_loss_db")
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return float(loss)

    def snr_db(
        self,
        distance_m: float,
        rng: np.random.Generator | None = None,
        shadowing: bool = True,
    ) -> float:
        """Average received SNR in dB at the given distance."""
        loss = self.path_loss_db(distance_m, rng=rng, shadowing=shadowing)
        return self.tx_power_dbm - loss - self.noise_floor_dbm

    def amplitude_gain(self, distance_m: float, rng: np.random.Generator | None = None) -> float:
        """Linear amplitude gain corresponding to the path loss."""
        loss_db = self.path_loss_db(distance_m, rng=rng)
        return float(10.0 ** (-loss_db / 20.0))


def propagation_delay_s(distance_m: float) -> float:
    """Time of flight in seconds for a distance in metres."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return distance_m / SPEED_OF_LIGHT


def propagation_delay_samples(distance_m: float, sample_rate_hz: float) -> float:
    """Time of flight expressed in (fractional) baseband samples."""
    return propagation_delay_s(distance_m) * sample_rate_hz


def fractional_delay(samples: np.ndarray, delay_samples: float, pad: int = 0) -> np.ndarray:
    """Delay a sample stream by a possibly fractional number of samples.

    Implemented in the frequency domain so sub-sample delays — the quantity
    the symbol-level synchronizer must resolve to tens of nanoseconds — are
    represented exactly.  The output is ``pad`` samples longer than the
    input plus the integer part of the delay, with leading (near-)zeros.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if delay_samples < 0:
        raise ValueError("delay must be non-negative; advance the other signals instead")
    total = samples.size + int(np.ceil(delay_samples)) + pad
    n_fft = int(2 ** np.ceil(np.log2(max(total, 2))))
    spectrum = np.fft.fft(samples, n_fft)
    freqs = np.fft.fftfreq(n_fft)
    shifted = spectrum * np.exp(-2j * np.pi * freqs * delay_samples)
    out = np.fft.ifft(shifted)[:total]
    return out
