"""SourceSync core: the paper's contribution.

Sub-packages:

* :mod:`repro.core.sync` — Symbol Level Synchronizer (§4)
* :mod:`repro.core.channel_est` — Joint Channel Estimator (§5)
* :mod:`repro.core.combining` — Smart Combiner (§6)

Top-level modules tie those together into senders, a joint receiver and an
end-to-end simulated session:

* :mod:`repro.core.frame` — joint frame format and timing (§4.4)
* :mod:`repro.core.sender` — lead sender / co-sender waveform construction
* :mod:`repro.core.receiver` — joint receiver
* :mod:`repro.core.session` — full joint-transmission simulation
* :mod:`repro.core.ensemble` — lockstep batched execution of session ensembles
* :mod:`repro.core.config` — configuration knobs
"""

from repro.core.config import SourceSyncConfig
from repro.core.frame import JointFrameLayout, SyncHeader, make_joint_frame_config
from repro.core.receiver import JointReceiveResult, JointReceiver
from repro.core.sender import CoSender, LeadSender
from repro.core.session import (
    HeaderExchangeOutcome,
    JointFrameOutcome,
    JointTopology,
    NodeProfile,
    SourceSyncSession,
    SyncTrialResult,
)
from repro.core.combining import SmartCombiner
from repro.core.ensemble import (
    JointFrameJob,
    converge_tracking_batch,
    measure_delays_batch,
    run_header_exchanges_batch,
    run_joint_frames_batch,
    run_sync_trials_batch,
)

__all__ = [
    "JointFrameJob",
    "converge_tracking_batch",
    "measure_delays_batch",
    "run_header_exchanges_batch",
    "run_joint_frames_batch",
    "run_sync_trials_batch",
    "SourceSyncConfig",
    "JointFrameLayout",
    "SyncHeader",
    "make_joint_frame_config",
    "JointReceiver",
    "JointReceiveResult",
    "LeadSender",
    "CoSender",
    "SourceSyncSession",
    "JointTopology",
    "NodeProfile",
    "JointFrameOutcome",
    "HeaderExchangeOutcome",
    "SyncTrialResult",
    "SmartCombiner",
]
