"""Joint Channel Estimator (JCE): per-sender channels, CFO, phase tracking (§5)."""

from repro.core.channel_est.cfo import CfoEstimate, measure_cfo, precorrect_cfo
from repro.core.channel_est.joint_estimator import (
    JointChannelEstimate,
    composite_channel,
    estimate_sender_channel,
    sender_active,
)
from repro.core.channel_est.phase_tracking import (
    PerSenderPhaseTracker,
    pilot_owner,
    pilot_scale_pattern,
)

__all__ = [
    "CfoEstimate",
    "measure_cfo",
    "precorrect_cfo",
    "JointChannelEstimate",
    "composite_channel",
    "estimate_sender_channel",
    "sender_active",
    "PerSenderPhaseTracker",
    "pilot_owner",
    "pilot_scale_pattern",
]
