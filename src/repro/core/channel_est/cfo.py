"""Per-sender carrier-frequency-offset estimation and pre-correction (§5).

Each sender's oscillator differs from the receiver's, so the composite
channel ``H_i(t) = H_{i,1} e^{j 2 pi df_1 t} + H_{i,2} e^{j 2 pi df_2 t}``
keeps rotating within a packet.  SourceSync measures each sender's offset
once (it is stable over long periods), communicates it back, and the sender
pre-corrects by multiplying its transmitted samples by
``e^{-j 2 pi df t}``.  Residual error is handled by per-sender phase
tracking (:mod:`repro.core.channel_est.phase_tracking`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.composite import Link
from repro.phy.detection import detect_packet_autocorrelation, estimate_coarse_cfo
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import preamble

__all__ = ["CfoEstimate", "measure_cfo", "precorrect_cfo"]


@dataclass(frozen=True)
class CfoEstimate:
    """A measured carrier-frequency offset between two nodes."""

    valid: bool
    cfo_hz: float
    true_cfo_hz: float

    @property
    def error_hz(self) -> float:
        """Estimation error in Hz."""
        return self.cfo_hz - self.true_cfo_hz


def measure_cfo(
    link: Link,
    rng: np.random.Generator,
    noise_power: float = 1.0,
    params: OFDMParams = DEFAULT_PARAMS,
    n_probes: int = 4,
) -> CfoEstimate:
    """Measure the CFO of a sender relative to a receiver from probe preambles.

    The measurement averages the standard short-training-field
    autocorrelation estimate over ``n_probes`` probes, mirroring how
    SourceSync computes the offset "at the same time as the initial
    pair-wise propagation delay estimation" (§5).
    """
    if n_probes < 1:
        raise ValueError("n_probes must be at least 1")
    estimates = []
    waveform = preamble(params)
    for _ in range(n_probes):
        contribution, start = link.propagate(waveform, start_sample=0.0)
        lead_in = 60
        total = lead_in + int(start) + contribution.size + 20
        received = np.zeros(total, dtype=np.complex128)
        offset = lead_in + int(start)
        received[offset : offset + contribution.size] += contribution
        received += awgn(total, noise_power, rng)
        detection = detect_packet_autocorrelation(received, params)
        if not detection.detected:
            continue
        try:
            estimates.append(estimate_coarse_cfo(received, detection.start_index, params))
        except ValueError:
            continue
    if not estimates:
        return CfoEstimate(False, 0.0, link.cfo_hz)
    return CfoEstimate(True, float(np.mean(estimates)), link.cfo_hz)


def precorrect_cfo(
    samples: np.ndarray,
    cfo_hz: float,
    sample_rate_hz: float,
) -> np.ndarray:
    """Pre-rotate a waveform so a known CFO cancels at the receiver.

    The sender multiplies its transmitted symbol at time ``t`` by
    ``e^{-j 2 pi df t}`` (§5); time is measured from the first transmitted
    sample of this waveform.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    n = np.arange(samples.size)
    return samples * np.exp(-2j * np.pi * cfo_hz * n / sample_rate_hz)
