"""Joint Channel Estimator: per-sender channels from a joint frame (§5).

The joint frame gives the receiver a clean look at every sender's channel:
the lead sender's long training field arrives during a period when the
co-senders are still silent, and each co-sender then transmits its own pair
of channel-estimation symbols in a reserved slot while everyone else is
silent (§4.4, Fig. 7).  The receiver estimates each individual channel from
its slot, and models the composite channel as the phase-rotated sum of the
individual channels, tracking each sender's residual rotation from the
time-shared pilots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.equalizer import ChannelEstimate, estimate_channel_ltf, estimate_noise_from_ltf
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["JointChannelEstimate", "estimate_sender_channel", "composite_channel", "sender_active"]


def estimate_sender_channel(
    training_samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_backoff: int = 0,
) -> ChannelEstimate:
    """Estimate one sender's channel from its channel-estimation slot.

    Parameters
    ----------
    training_samples:
        The 2-CP + two-repetition training waveform received in this
        sender's slot (same format as the 802.11 LTF).
    window_backoff:
        How many samples before the nominal FFT position to place the
        window (kept inside the guard so late arrivals do not spill).
    """
    training_samples = np.asarray(training_samples, dtype=np.complex128)
    needed = 2 * params.cp_samples + 2 * params.n_fft
    if training_samples.size < needed:
        raise ValueError(
            f"training slot must contain at least {needed} samples, got {training_samples.size}"
        )
    start = 2 * params.cp_samples - window_backoff
    if start < 0:
        raise ValueError("window_backoff larger than the training guard interval")
    reps = np.empty((2, params.n_fft), dtype=np.complex128)
    for rep in range(2):
        chunk = training_samples[start + rep * params.n_fft : start + (rep + 1) * params.n_fft]
        reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
    estimate = estimate_channel_ltf(reps, params)
    estimate.noise_var = estimate_noise_from_ltf(reps, params)
    return estimate


def sender_active(
    training_samples: np.ndarray,
    noise_power: float,
    threshold_db: float = 3.0,
) -> bool:
    """Decide whether a co-sender actually joined the transmission.

    "A receiver can determine whether an intended co-sender participates in
    a transmission based on the presence of energy in the time slots
    corresponding to the channel estimation symbols of that co-sender" (§6).
    """
    training_samples = np.asarray(training_samples, dtype=np.complex128)
    if training_samples.size == 0:
        return False
    energy = float(np.mean(np.abs(training_samples) ** 2))
    return energy > noise_power * (10.0 ** (threshold_db / 10.0))


@dataclass
class JointChannelEstimate:
    """Per-sender channel estimates for one joint frame.

    Attributes
    ----------
    lead:
        Channel of the lead sender (from its preamble LTF).
    cosenders:
        Channels of the co-senders, in codeword order; entries for
        co-senders that did not join are ``None``.
    noise_var:
        Receiver noise variance estimate.
    """

    lead: ChannelEstimate
    cosenders: list[ChannelEstimate | None]
    noise_var: float
    params: OFDMParams = DEFAULT_PARAMS

    @property
    def n_active_senders(self) -> int:
        """Number of senders whose energy is present in the joint frame."""
        return 1 + sum(1 for ch in self.cosenders if ch is not None)

    def active_channels(self) -> list[ChannelEstimate]:
        """Channels of the senders that actually transmitted (lead first)."""
        channels = [self.lead]
        channels.extend(ch for ch in self.cosenders if ch is not None)
        return channels

    def active_codewords(self) -> list[int]:
        """Codeword indices corresponding to :meth:`active_channels`."""
        codewords = [0]
        codewords.extend(i + 1 for i, ch in enumerate(self.cosenders) if ch is not None)
        return codewords

    def composite(self, phases: np.ndarray | None = None) -> np.ndarray:
        """Composite channel: the phase-rotated sum of individual channels.

        ``phases`` holds one residual phase per active sender (lead first),
        typically from :class:`~repro.core.channel_est.phase_tracking.PerSenderPhaseTracker`.
        """
        channels = self.active_channels()
        if phases is None:
            phases = np.zeros(len(channels))
        phases = np.asarray(phases, dtype=np.float64)
        if phases.size != len(channels):
            raise ValueError("phases must have one entry per active sender")
        total = np.zeros(self.params.n_fft, dtype=np.complex128)
        for phase, channel in zip(phases, channels):
            total += channel.response * np.exp(1j * phase)
        return total

    def per_subcarrier_snr_db(self, bins: np.ndarray | None = None) -> np.ndarray:
        """Post-combining per-subcarrier SNR (|sum of channels|-based).

        Uses the Alamouti-style power combination ``sum_i |H_i|^2`` which is
        what the Smart Combiner delivers, so this is the per-subcarrier SNR
        profile plotted in Fig. 16.
        """
        bins = self.params.occupied_bins() if bins is None else np.asarray(bins, dtype=int)
        power = np.zeros(bins.size, dtype=np.float64)
        for channel in self.active_channels():
            power += np.abs(channel.on_bins(bins)) ** 2
        return 10.0 * np.log10(np.maximum(power / max(self.noise_var, 1e-15), 1e-15))


def composite_channel(
    sender_channels: list[ChannelEstimate],
    phases: np.ndarray | None = None,
) -> np.ndarray:
    """Sum per-sender channels after applying per-sender residual phases."""
    if not sender_channels:
        raise ValueError("at least one sender channel is required")
    if phases is None:
        phases = np.zeros(len(sender_channels))
    phases = np.asarray(phases, dtype=np.float64)
    if phases.size != len(sender_channels):
        raise ValueError("phases must have one entry per sender")
    total = np.zeros_like(sender_channels[0].response)
    for phase, channel in zip(phases, sender_channels):
        total += channel.response * np.exp(1j * phase)
    return total
