"""Per-sender residual phase tracking with time-shared pilots (§5).

Even after CFO pre-correction, each sender retains a small residual
frequency error that accumulates into large phase errors over a packet.  A
standard OFDM receiver tracks the *single* transmitter's residual offset
from the pilot subcarriers of every data symbol; that algorithm cannot be
applied directly to a joint frame because each sender has its own residual
offset.

SourceSync therefore time-shares the pilots: the lead sender transmits the
pilot subcarriers only in the data symbols it "owns" (and is silent on the
pilots otherwise), co-sender ``i`` owns a different set of symbols, and the
receiver maintains one residual-phase estimate per sender, updating it
whenever that sender owns the pilots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.equalizer import ChannelEstimate
from repro.phy.ofdm import PILOT_VALUES, pilot_polarity
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["pilot_owner", "pilot_scale_pattern", "PerSenderPhaseTracker"]


def pilot_owner(symbol_index: int, n_senders: int) -> int:
    """Which sender (0 = lead) owns the pilots of a given data symbol.

    The paper's example gives odd symbols to the lead and even symbols to the
    co-sender for two senders; the general rule used here is round-robin
    over the sender index.
    """
    if n_senders < 1:
        raise ValueError("n_senders must be at least 1")
    return symbol_index % n_senders


def pilot_scale_pattern(n_symbols: int, sender_index: int, n_senders: int) -> np.ndarray:
    """Per-symbol pilot amplitude for one sender (1 where it owns the pilots)."""
    indices = np.arange(n_symbols)
    return (indices % n_senders == sender_index % n_senders).astype(np.float64)


@dataclass
class PerSenderPhaseTracker:
    """Tracks one residual phase trajectory per sender across data symbols.

    Attributes
    ----------
    n_senders:
        Number of senders in the joint frame (lead + co-senders).
    params:
        OFDM numerology (pilot positions).
    smoothing:
        Exponential smoothing factor applied to phase *increments*; 1.0
        trusts each new pilot observation fully.
    """

    n_senders: int
    params: OFDMParams = DEFAULT_PARAMS
    smoothing: float = 1.0
    _phases: np.ndarray = field(init=False, repr=False)
    _history: list[np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_senders < 1:
            raise ValueError("n_senders must be at least 1")
        self._phases = np.zeros(self.n_senders, dtype=np.float64)
        self._history = []

    # ------------------------------------------------------------------
    def update(
        self,
        received_symbol_freq: np.ndarray,
        sender_channels: list[ChannelEstimate],
        symbol_index: int,
    ) -> np.ndarray:
        """Consume one data symbol and return the current per-sender phases.

        Only the sender owning this symbol's pilots gets its phase updated;
        the others keep their previous estimate (they will be updated on
        their own symbols).
        """
        if len(sender_channels) != self.n_senders:
            raise ValueError("sender_channels must have one entry per sender")
        owner = pilot_owner(symbol_index, self.n_senders)
        received_symbol_freq = np.asarray(received_symbol_freq, dtype=np.complex128)
        pilot_bins = self.params.pilot_bins()
        expected = (
            sender_channels[owner].on_bins(pilot_bins)
            * PILOT_VALUES
            * pilot_polarity(symbol_index)
        )
        observed = received_symbol_freq[pilot_bins]
        correlation = np.sum(observed * np.conj(expected))
        if np.abs(correlation) > 1e-15:
            measured = float(np.angle(correlation))
            previous = self._phases[owner]
            # Unwrap the measurement relative to the running estimate so a
            # steadily growing phase does not alias at +-pi.
            delta = np.angle(np.exp(1j * (measured - previous)))
            self._phases[owner] = previous + self.smoothing * delta
        self._history.append(self._phases.copy())
        return self._phases.copy()

    # ------------------------------------------------------------------
    @property
    def phases(self) -> np.ndarray:
        """Current per-sender residual phases (radians)."""
        return self._phases.copy()

    def rotated_channels(
        self, sender_channels: list[ChannelEstimate]
    ) -> list[np.ndarray]:
        """Apply the current per-sender phases to the per-sender channels.

        The receiver applies each sender's residual phase to that sender's
        channel estimate *before* summing them into the composite channel
        (§5), which is exactly what this helper returns (full FFT-bin
        vectors).
        """
        if len(sender_channels) != self.n_senders:
            raise ValueError("sender_channels must have one entry per sender")
        return [
            ch.response * np.exp(1j * self._phases[i])
            for i, ch in enumerate(sender_channels)
        ]

    def history(self) -> np.ndarray:
        """Phase trajectory, shape ``(n_updates, n_senders)``."""
        if not self._history:
            return np.zeros((0, self.n_senders))
        return np.asarray(self._history)
