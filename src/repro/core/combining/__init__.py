"""Smart Combiner: distributed space-time block coding (§6)."""

from repro.core.combining.alamouti import (
    alamouti_decode,
    alamouti_effective_gain,
    alamouti_encode_branch,
    pad_to_even_symbols,
)
from repro.core.combining.quasi_orthogonal import (
    qostbc_decode,
    qostbc_encode_branch,
    qostbc_equivalent_matrix,
)
from repro.core.combining.stbc import SmartCombiner

__all__ = [
    "alamouti_encode_branch",
    "alamouti_decode",
    "alamouti_effective_gain",
    "pad_to_even_symbols",
    "qostbc_encode_branch",
    "qostbc_decode",
    "qostbc_equivalent_matrix",
    "SmartCombiner",
]
