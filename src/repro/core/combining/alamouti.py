"""Alamouti space-time block code, applied per OFDM subcarrier (§6).

SourceSync's Smart Combiner prevents signals from concurrent senders from
combining destructively by coding data *across pairs of OFDM symbols*
(time) within each subcarrier, using the Alamouti code for two senders.
The two "antennas" of the classical formulation are here two physically
separate senders, which is possible only because the Symbol Level
Synchronizer aligns their transmissions and the Joint Channel Estimator
tracks their individual (rotating) channels.

Branch convention (per subcarrier, over two consecutive OFDM symbols):

==========  =================  =================
branch      symbol slot ``2t``  symbol slot ``2t+1``
==========  =================  =================
A (lead)    ``x1``              ``x2``
B (co)      ``-conj(x2)``       ``conj(x1)``
==========  =================  =================

With per-branch channels ``hA`` and ``hB`` the receiver observes
``y1 = hA*x1 - hB*conj(x2)`` and ``y2 = hA*x2 + hB*conj(x1)`` and recovers
both symbols with maximum-ratio combining gain ``|hA|^2 + |hB|^2`` — never a
destructive fade unless *both* channels fade simultaneously.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "alamouti_encode_branch",
    "alamouti_decode",
    "alamouti_effective_gain",
    "pad_to_even_symbols",
]


def pad_to_even_symbols(data_symbols: np.ndarray) -> np.ndarray:
    """Pad a ``(n_symbols, n_subcarriers)`` block to an even symbol count.

    The Alamouti code operates on pairs of OFDM symbols; a frame with an odd
    number of data symbols gets one zero symbol appended (the receiver knows
    the true count from the frame configuration and discards the pad).
    """
    data_symbols = np.atleast_2d(np.asarray(data_symbols, dtype=np.complex128))
    if data_symbols.shape[0] % 2 == 0:
        return data_symbols
    pad = np.zeros((1, data_symbols.shape[1]), dtype=np.complex128)
    return np.concatenate([data_symbols, pad], axis=0)


def alamouti_encode_branch(data_symbols: np.ndarray, branch: int) -> np.ndarray:
    """Encode a data-symbol block onto one Alamouti branch.

    Parameters
    ----------
    data_symbols:
        Array of shape ``(n_symbols, n_subcarriers)`` with ``n_symbols``
        even; these are the information-bearing constellation points shared
        by all senders.
    branch:
        0 for the lead-sender branch (transmit the symbols unchanged),
        1 for the co-sender branch (transmit the space-time conjugate pair).

    Returns
    -------
    numpy.ndarray
        The symbols this branch actually transmits, same shape as the input.
    """
    data_symbols = np.asarray(data_symbols, dtype=np.complex128)
    if data_symbols.ndim != 2:
        raise ValueError("data_symbols must be 2-D (symbols x subcarriers)")
    if data_symbols.shape[0] % 2 != 0:
        raise ValueError("Alamouti encoding requires an even number of OFDM symbols")
    if branch == 0:
        return data_symbols.copy()
    if branch != 1:
        raise ValueError("branch must be 0 or 1")
    out = np.empty_like(data_symbols)
    x1 = data_symbols[0::2]
    x2 = data_symbols[1::2]
    out[0::2] = -np.conj(x2)
    out[1::2] = np.conj(x1)
    return out


def alamouti_decode(
    received: np.ndarray,
    channel_a: np.ndarray,
    channel_b: np.ndarray,
    return_gain: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Decode Alamouti-coded symbols with per-symbol channel knowledge.

    Parameters
    ----------
    received:
        Received (already FFT'd, non-equalised) data-subcarrier values,
        shape ``(n_symbols, n_subcarriers)`` with ``n_symbols`` even.
    channel_a, channel_b:
        Channels of branch A and branch B.  Either shape
        ``(n_subcarriers,)`` for a static channel or
        ``(n_symbols, n_subcarriers)`` when the Joint Channel Estimator
        tracks per-symbol rotation (§5).  A missing sender is represented by
        an all-zero channel.
    return_gain:
        When True, also return the per-pair combining gain
        ``|hA|^2 + |hB|^2`` (used to scale noise for soft demapping).

    Returns
    -------
    numpy.ndarray
        Estimated data symbols, same shape as ``received``.
    """
    received = np.asarray(received, dtype=np.complex128)
    if received.ndim != 2 or received.shape[0] % 2 != 0:
        raise ValueError("received must be 2-D with an even number of symbols")
    n_symbols, n_sc = received.shape

    def expand(channel: np.ndarray) -> np.ndarray:
        channel = np.asarray(channel, dtype=np.complex128)
        if channel.ndim == 1:
            return np.broadcast_to(channel, (n_symbols, n_sc))
        if channel.shape != (n_symbols, n_sc):
            raise ValueError("per-symbol channel must match the received shape")
        return channel

    ha = expand(channel_a)
    hb = expand(channel_b)

    y1 = received[0::2]
    y2 = received[1::2]
    # Use the channel of the first slot of each pair; the estimator keeps the
    # per-symbol values, and averaging over the pair is equivalent to first
    # order.
    ha_pair = 0.5 * (ha[0::2] + ha[1::2])
    hb_pair = 0.5 * (hb[0::2] + hb[1::2])

    gain = np.abs(ha_pair) ** 2 + np.abs(hb_pair) ** 2
    gain_safe = np.maximum(gain, 1e-15)
    x1 = (np.conj(ha_pair) * y1 + hb_pair * np.conj(y2)) / gain_safe
    x2 = (np.conj(ha_pair) * y2 - hb_pair * np.conj(y1)) / gain_safe

    decoded = np.empty_like(received)
    decoded[0::2] = x1
    decoded[1::2] = x2
    if return_gain:
        pair_gain = np.repeat(gain, 2, axis=0).reshape(n_symbols, n_sc)
        return decoded, pair_gain
    return decoded


def alamouti_effective_gain(channel_a: np.ndarray, channel_b: np.ndarray) -> np.ndarray:
    """Post-combining channel power gain ``|hA|^2 + |hB|^2`` per subcarrier.

    This is the quantity behind both SourceSync gains: the *power gain*
    (two unit-power channels give gain 2, i.e. +3 dB) and the *diversity
    gain* (the sum is far less likely to fade than either term), cf. §8.2.
    """
    channel_a = np.asarray(channel_a, dtype=np.complex128)
    channel_b = np.asarray(channel_b, dtype=np.complex128)
    return np.abs(channel_a) ** 2 + np.abs(channel_b) ** 2
