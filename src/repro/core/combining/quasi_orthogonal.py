"""Jafarkhani quasi-orthogonal space-time block code (QOSTBC) for four branches.

For more than two concurrent senders the paper uses "a quasi-orthogonal
space-time block code [16] that is a simple extension of the Alamouti
coding scheme" (§6).  This module implements the classic ABBA construction:
four information symbols are sent over four symbol slots by four branches,
arranged as two Alamouti blocks::

         slot 1   slot 2   slot 3   slot 4
    B1:   x1       x2       x3       x4
    B2:  -x2*      x1*     -x4*      x3*
    B3:   x3       x4       x1       x2
    B4:  -x4*      x3*     -x2*      x1*

Writing the received block with slots 2 and 4 conjugated, the system is
linear in ``z = [x1, x2*, x3, x4*]`` with a channel matrix whose columns are
pairwise orthogonal except for the (1,3) and (2,4) pairs.  Maximum-
likelihood detection therefore decouples into two independent pair searches
— ``(x1, x3)`` and ``(x2, x4)`` — which is what :func:`qostbc_decode`
performs when given a constellation; without one it falls back to a
least-squares (zero-forcing) solve of the 4x4 system.
"""

from __future__ import annotations

import numpy as np

__all__ = ["qostbc_encode_branch", "qostbc_decode", "qostbc_equivalent_matrix", "N_BRANCHES", "N_SLOTS"]

N_BRANCHES = 4
N_SLOTS = 4


def _check_block(data_symbols: np.ndarray) -> np.ndarray:
    data_symbols = np.asarray(data_symbols, dtype=np.complex128)
    if data_symbols.ndim != 2:
        raise ValueError("data_symbols must be 2-D (symbols x subcarriers)")
    if data_symbols.shape[0] % N_SLOTS != 0:
        raise ValueError("QOSTBC requires the symbol count to be a multiple of 4")
    return data_symbols


def qostbc_encode_branch(data_symbols: np.ndarray, branch: int) -> np.ndarray:
    """Encode a data-symbol block onto one of the four QOSTBC branches.

    ``data_symbols`` has shape ``(n_symbols, n_subcarriers)`` with the symbol
    count a multiple of four; each group of four consecutive OFDM symbols is
    one QOSTBC block.
    """
    data = _check_block(data_symbols)
    if not 0 <= branch < N_BRANCHES:
        raise ValueError(f"branch must be in 0..{N_BRANCHES - 1}")
    x1, x2, x3, x4 = (data[i::N_SLOTS] for i in range(N_SLOTS))
    out = np.empty_like(data)
    if branch == 0:
        rows = (x1, x2, x3, x4)
    elif branch == 1:
        rows = (-np.conj(x2), np.conj(x1), -np.conj(x4), np.conj(x3))
    elif branch == 2:
        rows = (x3, x4, x1, x2)
    else:
        rows = (-np.conj(x4), np.conj(x3), -np.conj(x2), np.conj(x1))
    for slot, row in enumerate(rows):
        out[slot::N_SLOTS] = row
    return out


def qostbc_equivalent_matrix(h: np.ndarray) -> np.ndarray:
    """Equivalent linear channel matrix ``M`` for one subcarrier.

    With ``h = [h1, h2, h3, h4]`` the branch channels, the received block
    (with slots 2 and 4 conjugated) equals ``M @ [x1, x2*, x3, x4*]``.
    """
    h1, h2, h3, h4 = h
    return np.array(
        [
            [h1, -h2, h3, -h4],
            [np.conj(h2), np.conj(h1), np.conj(h4), np.conj(h3)],
            [h3, -h4, h1, -h2],
            [np.conj(h4), np.conj(h3), np.conj(h2), np.conj(h1)],
        ],
        dtype=np.complex128,
    )


def _received_to_linear(y_block: np.ndarray) -> np.ndarray:
    """Conjugate slots 2 and 4 so the block is linear in ``z``."""
    out = y_block.copy()
    out[1] = np.conj(out[1])
    out[3] = np.conj(out[3])
    return out


def qostbc_decode(
    received: np.ndarray,
    channels: np.ndarray,
    constellation: np.ndarray | None = None,
) -> np.ndarray:
    """Decode QOSTBC blocks.

    Parameters
    ----------
    received:
        Received data-subcarrier values, shape ``(n_symbols, n_sc)`` with the
        symbol count a multiple of 4.
    channels:
        Branch channels, shape ``(4, n_sc)`` (assumed static over a block).
        Missing senders are represented by all-zero rows.
    constellation:
        Constellation points; when given, pairwise maximum-likelihood
        detection over the interfering pairs ``(x1, x3)`` and ``(x2, x4)``
        is performed.  When omitted a least-squares solve is returned, which
        is what the soft-output joint receiver uses.

    Returns
    -------
    numpy.ndarray
        Estimated data symbols, shape ``(n_symbols, n_sc)``.
    """
    received = np.asarray(received, dtype=np.complex128)
    channels = np.asarray(channels, dtype=np.complex128)
    if received.ndim != 2 or received.shape[0] % N_SLOTS != 0:
        raise ValueError("received must be 2-D with a multiple of 4 symbols")
    if channels.shape != (N_BRANCHES, received.shape[1]):
        raise ValueError("channels must have shape (4, n_subcarriers)")
    n_symbols, n_sc = received.shape
    decoded = np.empty_like(received)

    points = None if constellation is None else np.asarray(constellation, dtype=np.complex128)
    if points is not None:
        pair_a = np.repeat(points, points.size)
        pair_b = np.tile(points, points.size)

    for block in range(n_symbols // N_SLOTS):
        y = received[block * N_SLOTS : (block + 1) * N_SLOTS]
        base = block * N_SLOTS
        for sc in range(n_sc):
            m = qostbc_equivalent_matrix(channels[:, sc])
            y_lin = _received_to_linear(y[:, sc])
            if points is None:
                z, *_ = np.linalg.lstsq(m, y_lin, rcond=None)
                decoded[base + 0, sc] = z[0]
                decoded[base + 1, sc] = np.conj(z[1])
                decoded[base + 2, sc] = z[2]
                decoded[base + 3, sc] = np.conj(z[3])
                continue
            # Pairwise ML: columns (0, 2) carry (x1, x3); columns (1, 3)
            # carry (x2*, x4*); the two groups are mutually orthogonal.
            c0, c1, c2, c3 = m.T
            resid13 = y_lin[:, None] - np.outer(c0, pair_a) - np.outer(c2, pair_b)
            best13 = int(np.argmin(np.sum(np.abs(resid13) ** 2, axis=0)))
            resid24 = (
                y_lin[:, None]
                - np.outer(c1, np.conj(pair_a))
                - np.outer(c3, np.conj(pair_b))
            )
            best24 = int(np.argmin(np.sum(np.abs(resid24) ** 2, axis=0)))
            decoded[base + 0, sc] = pair_a[best13]
            decoded[base + 2, sc] = pair_b[best13]
            decoded[base + 1, sc] = pair_a[best24]
            decoded[base + 3, sc] = pair_b[best24]
    return decoded
