"""Smart Combiner: distributed space-time coding across senders (§6).

The Smart Combiner assigns every participating sender a *codeword* from a
replicated Alamouti codebook: the lead sender uses codeword 1, co-sender
``i`` uses codeword ``i+1`` (§6).  Codewords alternate between the two
Alamouti branches, so with any number of senders the receiver sees an
ordinary Alamouti code whose two branch channels are the *sums* of the
individual channels of the senders on each branch.  This gives three
properties the paper relies on:

* signals never cancel across a whole frame — a destructive combination in
  one symbol of a pair becomes constructive in the other;
* encoding/decoding stays as simple as Alamouti regardless of sender count;
* the receiver can decode even if only a subset of the intended senders
  actually joins the transmission (a missing sender just removes its term
  from the branch-channel sum).

The genuine 4-branch quasi-orthogonal code is also available
(``scheme="qostbc"``) for the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combining.alamouti import (
    alamouti_decode,
    alamouti_encode_branch,
    pad_to_even_symbols,
)
from repro.core.combining.quasi_orthogonal import (
    N_BRANCHES as QOSTBC_BRANCHES,
    qostbc_decode,
    qostbc_encode_branch,
)

__all__ = ["SmartCombiner", "CombinerScheme"]


#: Supported space-time coding schemes.
CombinerScheme = str
_SCHEMES = ("alamouti", "replicated_alamouti", "qostbc", "naive")


@dataclass(frozen=True)
class SmartCombiner:
    """Distributed space-time encoder/decoder shared by all senders.

    Parameters
    ----------
    scheme:
        ``"replicated_alamouti"`` (default, the paper's scheme),
        ``"alamouti"`` (strictly two senders), ``"qostbc"`` (up to four
        senders, genuine quasi-orthogonal code) or ``"naive"`` (every sender
        transmits the same symbols — the strawman of §6 used for the
        ablation benchmark).
    """

    scheme: CombinerScheme = "replicated_alamouti"

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {_SCHEMES}")

    # ------------------------------------------------------------------
    # Codeword assignment
    # ------------------------------------------------------------------
    def branch_for_codeword(self, codeword_index: int) -> int:
        """Physical code branch used by a given codeword index.

        Codeword 0 belongs to the lead sender; co-sender ``i`` uses codeword
        ``i + 1`` (§6, §7.2).
        """
        if codeword_index < 0:
            raise ValueError("codeword_index must be non-negative")
        if self.scheme in ("alamouti", "replicated_alamouti"):
            return codeword_index % 2
        if self.scheme == "qostbc":
            return codeword_index % QOSTBC_BRANCHES
        return 0  # naive: everyone sends the same thing

    @property
    def block_symbols(self) -> int:
        """Number of OFDM symbols per space-time block."""
        return 4 if self.scheme == "qostbc" else 2

    def pad_symbols(self, data_symbols: np.ndarray) -> np.ndarray:
        """Pad a data-symbol block to a multiple of the space-time block size."""
        data_symbols = np.atleast_2d(np.asarray(data_symbols, dtype=np.complex128))
        block = self.block_symbols
        remainder = data_symbols.shape[0] % block
        if remainder == 0:
            return data_symbols
        pad = np.zeros((block - remainder, data_symbols.shape[1]), dtype=np.complex128)
        return np.concatenate([data_symbols, pad], axis=0)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, data_symbols: np.ndarray, codeword_index: int) -> np.ndarray:
        """Symbols a sender with the given codeword actually transmits.

        ``data_symbols`` is the common payload mapping shared by every sender
        (all senders must transmit the same data at the same rate, §7.1);
        the returned array has the same shape.
        """
        data_symbols = self.pad_symbols(data_symbols)
        branch = self.branch_for_codeword(codeword_index)
        if self.scheme == "naive":
            return data_symbols.copy()
        if self.scheme in ("alamouti", "replicated_alamouti"):
            padded = pad_to_even_symbols(data_symbols)
            return alamouti_encode_branch(padded, branch)
        return qostbc_encode_branch(data_symbols, branch)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def combine_branch_channels(
        self, sender_channels: list[np.ndarray], codeword_indices: list[int] | None = None
    ) -> np.ndarray:
        """Per-branch effective channels given each sender's channel.

        ``sender_channels`` holds one array per *participating* sender, in
        codeword order unless ``codeword_indices`` says otherwise; each array
        is ``(n_subcarriers,)`` or ``(n_symbols, n_subcarriers)``.  The
        result has shape ``(n_branches, ...)``.
        """
        if not sender_channels:
            raise ValueError("at least one sender channel is required")
        if codeword_indices is None:
            codeword_indices = list(range(len(sender_channels)))
        if len(codeword_indices) != len(sender_channels):
            raise ValueError("codeword_indices must match sender_channels")
        n_branches = 1 if self.scheme == "naive" else (
            QOSTBC_BRANCHES if self.scheme == "qostbc" else 2
        )
        reference = np.asarray(sender_channels[0], dtype=np.complex128)
        branches = np.zeros((n_branches,) + reference.shape, dtype=np.complex128)
        for channel, codeword in zip(sender_channels, codeword_indices):
            branch = self.branch_for_codeword(codeword)
            branches[branch] = branches[branch] + np.asarray(channel, dtype=np.complex128)
        return branches

    def decode(
        self,
        received: np.ndarray,
        sender_channels: list[np.ndarray],
        codeword_indices: list[int] | None = None,
        constellation: np.ndarray | None = None,
        return_gain: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Recover the common data symbols from the joint reception.

        Parameters
        ----------
        received:
            Raw (non-equalised) data-subcarrier values,
            shape ``(n_symbols, n_subcarriers)``.
        sender_channels:
            Per-sender channel estimates (possibly per-symbol, reflecting the
            Joint Channel Estimator's residual-offset tracking).
        codeword_indices:
            Codeword assigned to each entry of ``sender_channels``.
        constellation:
            Only used by the ``qostbc`` scheme for pairwise ML detection.
        return_gain:
            Also return the per-symbol effective channel gain, used by the
            joint receiver to scale noise for soft demapping.
        """
        received = np.atleast_2d(np.asarray(received, dtype=np.complex128))
        branches = self.combine_branch_channels(sender_channels, codeword_indices)
        if self.scheme == "naive":
            combined = branches[0]
            if combined.ndim == 1:
                combined = np.broadcast_to(combined, received.shape)
            gain = np.abs(combined) ** 2
            safe = np.where(np.abs(combined) < 1e-12, 1e-12, combined)
            decoded = received / safe
            return (decoded, gain) if return_gain else decoded
        if self.scheme in ("alamouti", "replicated_alamouti"):
            result = alamouti_decode(received, branches[0], branches[1], return_gain=return_gain)
            return result
        static_branches = branches if branches.ndim == 2 else branches.mean(axis=1)
        decoded = qostbc_decode(received, static_branches, constellation)
        if not return_gain:
            return decoded
        gain = np.sum(np.abs(static_branches) ** 2, axis=0)
        gain_full = np.broadcast_to(gain, received.shape)
        return decoded, gain_full

    def effective_gain(self, sender_channels: list[np.ndarray], codeword_indices: list[int] | None = None) -> np.ndarray:
        """Post-combining channel power per subcarrier.

        For the Alamouti-family schemes this is ``|hA|^2 + |hB|^2`` where the
        branch channels are sums of the individual sender channels; it is the
        quantity plotted per subcarrier in Fig. 16 of the paper.
        """
        branches = self.combine_branch_channels(sender_channels, codeword_indices)
        return np.sum(np.abs(branches) ** 2, axis=0)
