"""SourceSync configuration knobs shared by senders, receivers and sessions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.combining.stbc import CombinerScheme
from repro.core.sync.compensation import SIFS_US
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["SourceSyncConfig"]


@dataclass(frozen=True)
class SourceSyncConfig:
    """Top-level configuration of a SourceSync deployment.

    Attributes
    ----------
    params:
        OFDM numerology of the radio.
    sifs_us:
        SIFS duration the lead sender leaves after the synchronization
        header (10 us in 802.11g/n, §4.3).
    combiner_scheme:
        Space-time coding scheme used by the Smart Combiner.
    pilot_sharing:
        Whether pilots are time-shared between senders for per-sender phase
        tracking (§5); disabling it is only useful for ablation studies.
    window_backoff_samples:
        How far (in samples) the joint receiver backs its FFT windows into
        the cyclic prefix to protect against residual timing error.
    probe_count:
        Number of probe/response exchanges averaged per delay measurement.
    tracking_gain:
        Gain of the ACK-feedback wait-time tracking loop (§4.5).
    """

    params: OFDMParams = DEFAULT_PARAMS
    sifs_us: float = SIFS_US
    combiner_scheme: CombinerScheme = "replicated_alamouti"
    pilot_sharing: bool = True
    window_backoff_samples: int = 3
    probe_count: int = 2
    tracking_gain: float = 0.5

    def __post_init__(self) -> None:
        if self.sifs_us <= 0:
            raise ValueError("sifs_us must be positive")
        if self.window_backoff_samples < 0:
            raise ValueError("window_backoff_samples must be non-negative")
        if self.window_backoff_samples >= self.params.cp_samples:
            raise ValueError("window_backoff_samples must be smaller than the CP")
        if self.probe_count < 1:
            raise ValueError("probe_count must be at least 1")
        if not 0.0 < self.tracking_gain <= 1.0:
            raise ValueError("tracking_gain must be in (0, 1]")
