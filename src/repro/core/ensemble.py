"""Lockstep ensemble execution of joint-frame exchanges (the batched core path).

The sender-diversity experiments (Figs. 12, 13, 15) are Monte-Carlo loops
over *independent* :class:`~repro.core.session.SourceSyncSession` trials —
independent topologies, independent RNG streams — whose per-trial work is a
long chain of small waveform operations: probe receptions, header
exchanges, joint frames.  Running each trial to completion one after the
other spends most of its wall-clock on Python call overhead rather than
array math.

This module advances many sessions *in lockstep* instead: every stage of an
exchange (probe noise, packet detection, CFO estimation, LTF channel
estimation, phase-slope fitting, header measurement, data decoding) is
executed for the whole ensemble as stacked array operations, mirroring how
line-rate packet processors batch per-packet control flow into per-ensemble
data flow.

Determinism contract
--------------------
Every RNG draw is made from the owning session's generator in exactly the
order the sequential code would make it: stages that consume randomness are
looped per session (draws are cheap), stages that only compute are batched
(compute is where the time goes).  A lockstep run over sessions
``[s1, ..., sn]`` therefore produces the same results as running each
session's sequential loop to completion, up to floating-point
last-ulp differences from SIMD kernel selection on batched arrays (the same
caveat as :meth:`repro.phy.receiver.Receiver.receive_batch`); decoded bits,
CRC outcomes and detection decisions are identical in practice and asserted
so by ``tests/core/test_joint_batch.py``.

Entry points
------------
* :func:`measure_delays_batch` — the probe/response measurement phase of
  §4.2c for an ensemble of sessions;
* :func:`converge_tracking_batch` — the §4.5 wait-time convergence loop in
  lockstep;
* :func:`run_header_exchanges_batch` — header-only joint exchanges (the
  Fig. 12 measurement primitive), optionally repeated per session;
* :func:`run_sync_trials_batch` — schedule-only synchronization trials;
* :func:`run_joint_frames_batch` — full joint frames decoded with one
  block-parallel Viterbi pass across the whole ensemble (the Fig. 13 core).

Usage
-----
Sessions are prepared exactly as for the sequential API — each with its own
generator — and handed to the batch entry points as a list; results come
back per session, in order::

    sessions = [SourceSyncSession(topo, config, rng=rng)
                for topo, rng in zip(topologies, rngs)]
    measure_delays_batch(sessions)                  # probe phase, all at once
    converge_tracking_batch(sessions, rounds=4)     # §4.5 warm-up in lockstep
    jobs = [[JointFrameJob(payload, rate_mbps=6.0, data_cp_samples=cp)
             for cp in cp_sweep] for _ in sessions]
    outcomes = run_joint_frames_batch(sessions, jobs)
    # outcomes[s][r] == sessions[s].run_joint_frame(...) for job r, bit-for-bit

Heterogeneous ensembles are fine: ``jobs_per_session`` rows may have
different lengths (sessions simply drop out of later waves), which is how
Fig. 13 decodes several topologies per measurement chain in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.composite import (
    Link,
    Transmission,
    combine_ensemble_at_receiver,
    propagate_rows,
)
from repro.core.channel_est.cfo import CfoEstimate
from repro.core.frame import JointFrameLayout, make_joint_frame_config
from repro.engine import Lane, LockstepScheduler
from repro.core.sender import CoSender
from repro.core.session import (
    HeaderExchangeOutcome,
    JointFrameOutcome,
    SourceSyncSession,
    SyncTrialResult,
)
from repro.core.sync.compensation import DelayBudget, compute_wait_time
from repro.core.sync.detection_delay import phase_slope_windowed_batch
from repro.core.sync.probe import ProbeLegResult, PropagationDelayEstimate, _acquisition_backoff
from repro.core.sync.tracking import WaitTimeTracker
from repro.phy.detection import (
    detect_packet_autocorrelation_batch,
    estimate_coarse_cfo_rows,
)
from repro.phy.equalizer import estimate_channel_ltf
from repro.phy.params import OFDMParams

__all__ = [
    "measure_delays_batch",
    "converge_tracking_batch",
    "run_header_exchanges_batch",
    "run_sync_trials_batch",
    "run_joint_frames_batch",
    "JointFrameJob",
]


# ----------------------------------------------------------------------
# Batched probe-leg primitive
# ----------------------------------------------------------------------
@dataclass
class _LegJob:
    """One probe reception to execute inside a lockstep sub-wave.

    All jobs of one sub-wave must draw from *distinct* generators so that
    batching them cannot reorder any generator's stream.
    """

    link: Link
    rng: np.random.Generator
    noise_power: float
    params: OFDMParams
    waveform: np.ndarray
    frontend: object | None = None  #: RadioFrontend, or None to skip the latency draw
    leading_silence: int = 80
    tail: int = 40
    # filled by the lockstep executor
    received: np.ndarray | None = field(default=None, repr=False)
    length: int = 0


def _propagate_and_noise(
    jobs: list[_LegJob], noises: list[np.ndarray] | None = None
) -> np.ndarray:
    """Propagate every job's waveform and add its noise, padded to one array.

    Without ``noises``, the draws happen job-by-job in input order from each
    job's own generator — identical to the sequential probe loops.  With
    ``noises``, pre-drawn vectors (the optimistic draw-ahead path) are added
    instead.  The padded ``(n_jobs, max_len)`` array is what the batched
    detection and estimation stages consume; zero padding carries no energy
    and cannot change a row's detection outcome.
    """
    propagated = propagate_rows(
        [job.link for job in jobs], np.stack([job.waveform for job in jobs])
    )
    contributions = []
    for job, (contribution, integer_start) in zip(jobs, propagated):
        offset = job.leading_silence + int(integer_start)
        job.length = offset + contribution.size + job.tail
        contributions.append((offset, contribution))
    max_len = max(job.length for job in jobs)
    rows = np.zeros((len(jobs), max_len), dtype=np.complex128)
    for row, (job, (offset, contribution)) in enumerate(zip(jobs, contributions)):
        rows[row, offset : offset + contribution.size] += contribution
        noise = (
            noises[row] if noises is not None else awgn(job.length, job.noise_power, job.rng)
        )
        rows[row, : job.length] += noise
        job.received = rows[row]
    return rows


def _ltf_windows(
    rows: np.ndarray,
    window_starts: np.ndarray,
    cfo_hz: np.ndarray,
    params: OFDMParams,
) -> np.ndarray:
    """Gather, CFO-correct and FFT the two LTF windows of every row.

    Returns frequency-domain symbols of shape ``(n_rows, 2, n_fft)``.  The
    CFO correction multiplies by the rotation at each sample's *absolute*
    row index, matching a sequential whole-stream correction followed by
    window extraction.
    """
    n = window_starts[:, None] + np.arange(2 * params.n_fft)[None, :]
    chunks = rows[np.arange(rows.shape[0])[:, None], n]
    rotation = np.exp(-2j * np.pi * cfo_hz[:, None] * n * params.sample_period_s)
    corrected = chunks * rotation
    reps = corrected.reshape(rows.shape[0], 2, params.n_fft)
    return np.fft.fft(reps, axis=-1) / np.sqrt(params.n_fft)


def _probe_legs_estimate(
    jobs: list[_LegJob],
    rows: np.ndarray,
    detections: list,
    detect_instants: np.ndarray,
) -> list[ProbeLegResult]:
    """Batched probe estimation given detection outcomes and latency draws."""
    params = jobs[0].params
    snr_db = np.array([job.link.snr_db(job.noise_power) for job in jobs])
    lengths = np.array([job.length for job in jobs], dtype=np.int64)
    detected = np.array([d.detected for d in detections])
    start_indices = np.array([d.start_index for d in detections], dtype=np.int64)
    cfo_hz = estimate_coarse_cfo_rows(rows, np.maximum(start_indices, 0), lengths, detected, params)

    backoff = _acquisition_backoff(params)
    stf_len = (params.n_fft // 4) * 10
    assumed_starts = np.round(detect_instants).astype(np.int64)
    ltf_starts = assumed_starts + stf_len + 2 * params.cp_samples - backoff
    fits = detected & (ltf_starts + 2 * params.n_fft <= lengths) & (ltf_starts >= 0)

    results: list[ProbeLegResult | None] = [None] * len(jobs)
    true_delays = np.array(
        [
            detect_instants[row] - (job.leading_silence + job.link.delay_samples)
            for row, job in enumerate(jobs)
        ]
    )
    rows_idx = np.nonzero(fits)[0]
    estimated = np.zeros(len(jobs))
    if rows_idx.size:
        ltf_syms = _ltf_windows(
            rows[rows_idx], ltf_starts[rows_idx], cfo_hz[rows_idx], params
        )
        responses = estimate_channel_ltf(ltf_syms, params).response
        slopes, _ = phase_slope_windowed_batch(responses, params)
        delays = slopes * params.n_fft / (2.0 * np.pi)
        estimated[rows_idx] = (
            delays
            + backoff
            + (detect_instants[rows_idx] - assumed_starts[rows_idx])
        )
    for row, job in enumerate(jobs):
        if not detected[row]:
            results[row] = ProbeLegResult(False, 0.0, 0.0, float(snr_db[row]))
        elif not fits[row]:
            results[row] = ProbeLegResult(False, float(true_delays[row]), 0.0, float(snr_db[row]))
        else:
            results[row] = ProbeLegResult(
                True, float(true_delays[row]), float(estimated[row]), float(snr_db[row])
            )
    return results  # type: ignore[return-value]


def _probe_legs_lockstep(jobs: list[_LegJob]) -> list[ProbeLegResult]:
    """Execute one sub-wave of probe receptions with batched computation.

    The RNG contract of the module docstring holds: per job, the noise draw
    precedes the (conditional) front-end latency draw, and jobs never share
    a generator within one call.
    """
    if not jobs:
        return []
    params = jobs[0].params
    rows = _propagate_and_noise(jobs)
    detections = detect_packet_autocorrelation_batch(rows, params)

    snr_db = np.array([job.link.snr_db(job.noise_power) for job in jobs])
    detect_instants = np.zeros(len(jobs))
    for row, (job, detection) in enumerate(zip(jobs, detections)):
        if detection.detected and job.frontend is not None:
            extra = job.frontend.detection_delay_samples(snr_db[row], job.rng)
            detect_instants[row] = detection.detect_index + extra
    return _probe_legs_estimate(jobs, rows, detections, detect_instants)


def _cfo_probes_lockstep(jobs: list[_LegJob]) -> list[float | None]:
    """One lockstep wave of CFO probes (no front-end draw, no slope estimate).

    Returns one CFO estimate per job, or ``None`` where the probe was not
    detected / the estimation window did not fit — the cases the sequential
    :func:`repro.core.channel_est.cfo.measure_cfo` loop skips.
    """
    if not jobs:
        return []
    params = jobs[0].params
    rows = _propagate_and_noise(jobs)
    detections = detect_packet_autocorrelation_batch(rows, params)
    lengths = np.array([job.length for job in jobs], dtype=np.int64)
    detected = np.array([d.detected for d in detections])
    starts = np.array([max(d.start_index, 0) for d in detections], dtype=np.int64)
    lag = params.n_fft // 4
    usable = detected & (starts + lag * 8 + lag <= lengths)
    cfo = estimate_coarse_cfo_rows(rows, starts, lengths, detected, params)
    return [float(cfo[row]) if usable[row] else None for row in range(len(jobs))]


# ----------------------------------------------------------------------
# Measurement phase (§4.2c, §5) in lockstep
# ----------------------------------------------------------------------
def _check_common_structure(sessions: list[SourceSyncSession]) -> None:
    if not sessions:
        raise ValueError("need at least one session")
    reference = sessions[0].topology
    ref_config = sessions[0].config
    for session in sessions[1:]:
        topo = session.topology
        if topo.params is not reference.params and topo.params != reference.params:
            raise ValueError("lockstep sessions must share OFDM parameters")
        if topo.n_cosenders != reference.n_cosenders:
            raise ValueError("lockstep sessions must have the same co-sender count")
        # The lanes share one frame layout and one receiver configuration,
        # so every config knob that shapes them must agree.
        if session.config != ref_config:
            raise ValueError("lockstep sessions must share SourceSyncConfig")


def measure_delays_batch(
    sessions: list[SourceSyncSession], use_true_delays: bool = False
) -> None:
    """Run the probe/response measurement phase for an ensemble of sessions.

    Lockstep counterpart of :meth:`SourceSyncSession.measure_delays`: probe
    legs at the same position of every session's measurement sequence are
    detected and estimated as one batch, while each session's generator is
    consumed in exactly its sequential order.
    """
    _check_common_structure(sessions)
    if use_true_delays:
        for session in sessions:
            session.measure_delays(use_true_delays=True)
        return

    n_probes = {session.config.probe_count for session in sessions}
    if len(n_probes) != 1:
        raise ValueError("lockstep sessions must share probe_count")
    n_probes = n_probes.pop()
    n_cosenders = sessions[0].topology.n_cosenders

    from repro.core.sync.probe import probe_waveform

    for i in range(n_cosenders):
        pair_specs = [
            # (forward link, reverse link, responder frontend, initiator frontend)
            lambda topo, i=i: (
                topo.links_lead_cosender[i],
                topo.links_cosender_lead[i],
                topo.cosenders[i].frontend,
                topo.lead.frontend,
            ),
            lambda topo: (
                topo.link_lead_rx,
                topo.link_rx_lead,
                topo.receiver.frontend,
                topo.lead.frontend,
            ),
            lambda topo, i=i: (
                topo.links_cosender_rx[i],
                topo.links_rx_cosender[i],
                topo.receiver.frontend,
                topo.cosenders[i].frontend,
            ),
        ]
        measurements: list[list[PropagationDelayEstimate]] = []
        for spec in pair_specs:
            estimates_per_session: list[list[float]] = [[] for _ in sessions]
            last_legs: list[tuple[ProbeLegResult | None, ProbeLegResult | None]] = [
                (None, None) for _ in sessions
            ]
            for _ in range(n_probes):
                fwd_jobs = []
                for session in sessions:
                    forward, _, responder, _ = spec(session.topology)
                    fwd_jobs.append(
                        _LegJob(
                            link=forward,
                            rng=session.rng,
                            noise_power=session.topology.noise_power,
                            params=session.topology.params,
                            waveform=probe_waveform(session.topology.params),
                            frontend=responder,
                        )
                    )
                fwd = _probe_legs_lockstep(fwd_jobs)
                rev_jobs = []
                for session in sessions:
                    _, reverse, _, initiator = spec(session.topology)
                    rev_jobs.append(
                        _LegJob(
                            link=reverse,
                            rng=session.rng,
                            noise_power=session.topology.noise_power,
                            params=session.topology.params,
                            waveform=probe_waveform(session.topology.params),
                            frontend=initiator,
                        )
                    )
                rev = _probe_legs_lockstep(rev_jobs)
                for s, session in enumerate(sessions):
                    forward, reverse, _, _ = spec(session.topology)
                    last_legs[s] = (fwd[s], rev[s])
                    if not (fwd[s].detected and rev[s].detected):
                        continue
                    round_trip_minus_known = (
                        forward.delay_samples
                        + fwd[s].true_detection_delay
                        + reverse.delay_samples
                        + rev[s].true_detection_delay
                    )
                    two_way = (
                        round_trip_minus_known
                        - fwd[s].estimated_detection_delay
                        - rev[s].estimated_detection_delay
                    )
                    estimates_per_session[s].append(two_way / 2.0)
            per_session: list[PropagationDelayEstimate] = []
            for s, session in enumerate(sessions):
                forward, reverse, _, _ = spec(session.topology)
                true_one_way = 0.5 * (forward.delay_samples + reverse.delay_samples)
                if estimates_per_session[s]:
                    per_session.append(
                        PropagationDelayEstimate(
                            True,
                            float(np.mean(estimates_per_session[s])),
                            float(true_one_way),
                            last_legs[s][0],
                            last_legs[s][1],
                        )
                    )
                else:
                    per_session.append(
                        PropagationDelayEstimate(
                            False, 0.0, true_one_way, last_legs[s][0], last_legs[s][1]
                        )
                    )
            measurements.append(per_session)

        # CFO probes: n_probes=4 waves (the measure_cfo default), averaged.
        cfo_estimates: list[list[float]] = [[] for _ in sessions]
        from repro.phy.preamble import preamble

        for _ in range(4):
            jobs = [
                _LegJob(
                    link=session.topology.links_lead_cosender[i],
                    rng=session.rng,
                    noise_power=session.topology.noise_power,
                    params=session.topology.params,
                    waveform=preamble(session.topology.params),
                    frontend=None,
                    leading_silence=60,
                    tail=20,
                )
                for session in sessions
            ]
            for s, estimate in enumerate(_cfo_probes_lockstep(jobs)):
                if estimate is not None:
                    cfo_estimates[s].append(estimate)

        lead_co, lead_rx, co_rx = measurements
        for s, session in enumerate(sessions):
            topo = session.topology
            state = session._states[i]
            cfo = (
                CfoEstimate(True, float(np.mean(cfo_estimates[s])), topo.links_lead_cosender[i].cfo_hz)
                if cfo_estimates[s]
                else CfoEstimate(False, 0.0, topo.links_lead_cosender[i].cfo_hz)
            )
            state.lead_to_cosender_samples = (
                lead_co[s].one_way_delay_samples
                if lead_co[s].valid
                else topo.links_lead_cosender[i].delay_samples
            )
            state.lead_to_receiver_samples = (
                lead_rx[s].one_way_delay_samples
                if lead_rx[s].valid
                else topo.link_lead_rx.delay_samples
            )
            state.cosender_to_receiver_samples = (
                co_rx[s].one_way_delay_samples
                if co_rx[s].valid
                else topo.links_cosender_rx[i].delay_samples
            )
            state.cfo_to_lead_hz = -cfo.cfo_hz if cfo.valid else 0.0
            state.tracker = WaitTimeTracker(
                wait_time_samples=state.lead_to_receiver_samples
                - state.cosender_to_receiver_samples,
                gain=session.config.tracking_gain,
            )
    for session in sessions:
        session._delays_measured = True


def _ensure_measured_batch(sessions: list[SourceSyncSession]) -> None:
    pending = [session for session in sessions if not session._delays_measured]
    if pending:
        measure_delays_batch(pending)


# ----------------------------------------------------------------------
# Lockstep scheduling (the §4.3 wait-time computation per exchange)
# ----------------------------------------------------------------------
def _schedule_lockstep(
    lanes: list[tuple[SourceSyncSession, JointFrameLayout, np.ndarray]],
    compensate: bool | list[bool],
) -> tuple[list[list[float]], list[list[bool]]]:
    """Batched :meth:`SourceSyncSession._schedule_cosenders` over lanes.

    ``lanes`` holds ``(session, layout, header_waveform)`` triples; each
    session must appear at most once (distinct generators per sub-wave).
    Probe legs are processed one co-sender index at a time so that, within
    every lane, the noise draw of co-sender ``i+1`` follows the front-end
    draw of co-sender ``i`` exactly as in the sequential loop.
    """
    n_cosenders = lanes[0][0].topology.n_cosenders
    compensate_flags = (
        [compensate] * len(lanes) if isinstance(compensate, bool) else list(compensate)
    )
    starts: list[list[float]] = [[] for _ in lanes]
    feasible: list[list[bool]] = [[] for _ in lanes]
    for i in range(n_cosenders):
        jobs = [
            _LegJob(
                link=session.topology.links_lead_cosender[i],
                rng=session.rng,
                noise_power=session.topology.noise_power,
                params=session.topology.params,
                waveform=header_waveform,
                frontend=session.topology.cosenders[i].frontend,
            )
            for session, layout, header_waveform in lanes
        ]
        legs = _probe_legs_lockstep(jobs)
        for lane, (session, layout, _) in enumerate(lanes):
            start, lane_feasible = _schedule_from_leg(
                session, layout, i, legs[lane], compensate_flags[lane]
            )
            starts[lane].append(start)
            feasible[lane].append(lane_feasible)
    return starts, feasible


def _schedule_from_leg(
    session: SourceSyncSession,
    layout: JointFrameLayout,
    i: int,
    leg: ProbeLegResult,
    compensate: bool,
) -> tuple[float, bool]:
    """Co-sender ``i``'s transmit start from its header-reception leg (§4.3)."""
    state = session._states[i]
    frontend = session.topology.cosenders[i].frontend
    link = session.topology.links_lead_cosender[i]
    sifs = float(layout.sifs_samples)
    header_len = float(layout.sync_header_samples)
    slot_offset = float(i * layout.ltf_samples)
    if not leg.detected:
        return float("nan"), False
    est_detect_delay = leg.estimated_detection_delay if compensate else 0.0
    wait_time = (
        state.tracker.wait_time_samples
        if (state.tracker is not None and compensate)
        else 0.0
    )
    if compensate:
        budget = DelayBudget(
            lead_to_cosender=state.lead_to_cosender_samples,
            detection_delay=est_detect_delay,
            turnaround=frontend.measure_turnaround_samples(),
            lead_to_receiver=state.cosender_to_receiver_samples + wait_time,
            cosender_to_receiver=state.cosender_to_receiver_samples,
        )
        schedule = compute_wait_time(budget, sifs, extra_slot_offset=slot_offset)
        local_wait = schedule.local_wait_after_detection
        schedule_feasible = schedule.feasible
        actual_start = (
            link.delay_samples
            + leg.true_detection_delay
            + header_len
            + frontend.turnaround_samples
            + max(local_wait, 0.0)
        )
    else:
        target_offset = sifs + slot_offset
        schedule_feasible = True
        actual_start = (
            link.delay_samples
            + leg.true_detection_delay
            + header_len
            + frontend.turnaround_samples
            + max(target_offset - frontend.turnaround_samples, 0.0)
        )
    return float(actual_start), bool(schedule_feasible)


def _header_layout(session: SourceSyncSession) -> JointFrameLayout:
    return JointFrameLayout(
        params=session.topology.params,
        n_cosenders=session.topology.n_cosenders,
        n_data_symbols=1,
        sifs_us=session.config.sifs_us,
    )


def _draw_header(session: SourceSyncSession, layout: JointFrameLayout, rate_mbps: float = 6.0):
    header = session.lead.make_header(
        packet_id=int(session.rng.integers(0, 1 << 16)),
        rate_mbps=rate_mbps,
        data_cp_samples=layout.effective_data_cp,
        n_cosenders=layout.n_cosenders,
    )
    return header, session.lead.header_waveform(header, layout)


def _cosender_transmissions(
    session: SourceSyncSession,
    layout: JointFrameLayout,
    starts: list[float],
    training_only: bool = True,
    payload: bytes | None = None,
    frame_config=None,
    active: list[int] | None = None,
) -> list[Transmission]:
    topo = session.topology
    indices = range(topo.n_cosenders) if active is None else active
    transmissions = []
    for i in indices:
        if not np.isfinite(starts[i]):
            continue
        cosender = CoSender(
            cosender_index=i,
            config=session.config,
            node_id=topo.cosenders[i].node_id,
            # CFO pre-correction is applied even in the unsynchronized
            # baseline (the timing comparison isolates timing, not
            # frequency handling) — same as the sequential path.
            cfo_precorrection_hz=session._states[i].cfo_to_lead_hz,
        )
        if training_only:
            samples = cosender.training_waveform(layout)
        else:
            samples = cosender.build_waveform(payload, layout, frame_config)
        transmissions.append(
            Transmission(link=topo.links_cosender_rx[i], samples=samples, start_sample=starts[i])
        )
    return transmissions


# ----------------------------------------------------------------------
# Public lockstep entry points
# ----------------------------------------------------------------------
def run_sync_trials_batch(
    sessions: list[SourceSyncSession],
    repeats: int = 1,
    compensate: bool = True,
) -> list[list[SyncTrialResult]]:
    """Schedule-only synchronization trials for an ensemble, in lockstep.

    Returns ``results[session][repeat]`` matching ``repeats`` sequential
    :meth:`SourceSyncSession.run_sync_trial` calls per session.
    """
    _check_common_structure(sessions)
    _ensure_measured_batch(sessions)
    results: list[list[SyncTrialResult]] = [[] for _ in sessions]
    for _ in range(repeats):
        lanes = []
        for session in sessions:
            layout = _header_layout(session)
            _, header_waveform = _draw_header(session, layout)
            lanes.append((session, layout, header_waveform))
        starts, feasible = _schedule_lockstep(lanes, compensate)
        for s, session in enumerate(sessions):
            layout = lanes[s][1]
            misalignment = session._true_misalignments(layout, starts[s])
            snr_db = session.topology.link_lead_rx.snr_db(session.topology.noise_power)
            results[s].append(SyncTrialResult(misalignment, tuple(feasible[s]), snr_db))
    return results


def run_header_exchanges_batch(
    sessions: list[SourceSyncSession],
    repeats: int = 1,
    compensate: bool = True,
    apply_tracking_feedback: bool = False,
    genie_timing: bool = False,
) -> list[list[HeaderExchangeOutcome]]:
    """Header-only joint exchanges for an ensemble of sessions, in lockstep.

    ``repeats`` exchanges per session are executed as waves across sessions;
    receiver-side measurement (detection, CFO, per-sender channels,
    misalignment) is deferred and batched across *all* waves at the end,
    which is where the Fig. 12 measurement loop spends its time.

    ``apply_tracking_feedback`` requires ``repeats == 1``: feedback makes
    exchange ``r+1`` of a session depend on the measurement of exchange
    ``r``, which is exactly the sequencing lockstep removes.
    """
    if apply_tracking_feedback and repeats != 1:
        raise ValueError("tracking feedback requires repeats == 1 (sequential dependence)")
    _check_common_structure(sessions)
    _ensure_measured_batch(sessions)
    leading_silence = 60
    n_cosenders = sessions[0].topology.n_cosenders

    # ------------------------------------------------------------------
    # Optimistic draw-ahead: every RNG draw of every repeat happens now,
    # per session in exact sequential order, *assuming* (a) every header
    # probe is detected and (b) the combined waveform fits the standard
    # total length.  Both assumptions are verified after the batched
    # computation; a session that violates either is rolled back to its
    # generator snapshot and replayed through the scalar path, so outputs
    # are always those of the sequential loop.
    # ------------------------------------------------------------------
    layouts = [_header_layout(session) for session in sessions]
    snapshots = [
        {**session.rng.bit_generator.state} for session in sessions
    ]
    pids: list[list[int]] = []
    probe_noises: list[list[list[np.ndarray]]] = []
    extras: list[list[list[float]]] = []
    combine_noises: list[list[np.ndarray | None]] = []
    totals: list[int] = []
    for s, session in enumerate(sessions):
        topo = session.topology
        layout = layouts[s]
        header_len = layout.sync_header_samples
        total_needed = (
            leading_silence
            + int(np.ceil(topo.link_lead_rx.delay_samples))
            + layout.data_offset
            + 40
        )
        totals.append(total_needed)
        session_pids: list[int] = []
        session_noises: list[list[np.ndarray]] = []
        session_extras: list[list[float]] = []
        session_combine: list[np.ndarray | None] = []
        for _ in range(repeats):
            session_pids.append(int(session.rng.integers(0, 1 << 16)))
            rep_noises: list[np.ndarray] = []
            rep_extras: list[float] = []
            for i in range(n_cosenders):
                link = topo.links_lead_cosender[i]
                length = _probe_received_length(link, header_len)
                rep_noises.append(awgn(length, topo.noise_power, session.rng))
                snr_db = link.snr_db(topo.noise_power)
                rep_extras.append(
                    topo.cosenders[i].frontend.detection_delay_samples(snr_db, session.rng)
                )
            session_noises.append(rep_noises)
            session_extras.append(rep_extras)
            session_combine.append(
                awgn(total_needed, topo.noise_power, session.rng)
                if topo.noise_power > 0
                else None
            )
        pids.append(session_pids)
        probe_noises.append(session_noises)
        extras.append(session_extras)
        combine_noises.append(session_combine)

    # ------------------------------------------------------------------
    # Batched computation over every (session, repeat, cosender) probe row.
    # ------------------------------------------------------------------
    header_waveforms = [
        [
            sessions[s].lead.header_waveform(
                sessions[s].lead.make_header(
                    packet_id=pid,
                    rate_mbps=6.0,
                    data_cp_samples=layouts[s].effective_data_cp,
                    n_cosenders=layouts[s].n_cosenders,
                ),
                layouts[s],
            )
            for pid in pids[s]
        ]
        for s in range(len(sessions))
    ]
    jobs: list[_LegJob] = []
    job_key: list[tuple[int, int, int]] = []
    noises_flat: list[np.ndarray] = []
    for s, session in enumerate(sessions):
        topo = session.topology
        for r in range(repeats):
            for i in range(n_cosenders):
                jobs.append(
                    _LegJob(
                        link=topo.links_lead_cosender[i],
                        rng=session.rng,
                        noise_power=topo.noise_power,
                        params=topo.params,
                        waveform=header_waveforms[s][r],
                        frontend=topo.cosenders[i].frontend,
                    )
                )
                job_key.append((s, r, i))
                noises_flat.append(probe_noises[s][r][i])
    bad: set[int] = set()
    legs_by_key: dict[tuple[int, int, int], ProbeLegResult] = {}
    if jobs:
        rows = _propagate_and_noise(jobs, noises_flat)
        for job, noise in zip(jobs, noises_flat):
            if job.length != noise.size:
                raise AssertionError("draw-ahead noise length desynchronised")
        detections = detect_packet_autocorrelation_batch(rows, jobs[0].params)
        for (s, r, i), detection in zip(job_key, detections):
            if not detection.detected:
                bad.add(s)
        detect_instants = np.array(
            [
                detections[k].detect_index + extras[s][r][i]
                if detections[k].detected
                else 0.0
                for k, (s, r, i) in enumerate(job_key)
            ]
        )
        legs = _probe_legs_estimate(jobs, rows, detections, detect_instants)
        for key, leg in zip(job_key, legs):
            legs_by_key[key] = leg

    # Schedules, transmissions and combined waveforms for intact sessions.
    lane_order: list[tuple[int, int]] = []
    lane_starts: dict[tuple[int, int], list[float]] = {}
    lane_feasible: dict[tuple[int, int], list[bool]] = {}
    for s, session in enumerate(sessions):
        if s in bad:
            continue
        for r in range(repeats):
            starts = []
            feasible = []
            for i in range(n_cosenders):
                start, ok = _schedule_from_leg(
                    session, layouts[s], i, legs_by_key[(s, r, i)], compensate
                )
                starts.append(start)
                feasible.append(ok)
            lane_starts[(s, r)] = starts
            lane_feasible[(s, r)] = feasible
            lane_order.append((s, r))

    # Propagate lead + co-sender contributions (grouped, batched) and check
    # the combined waveform fits the pre-drawn noise length.
    lane_contributions: dict[tuple[int, int], list[tuple[int, np.ndarray]]] = {}
    grouped: dict[int, list[tuple[tuple[int, int], Transmission]]] = {}
    for s, r in lane_order:
        session = sessions[s]
        topo = session.topology
        transmissions = [
            Transmission(
                link=topo.link_lead_rx, samples=header_waveforms[s][r], start_sample=0.0
            )
        ]
        transmissions.extend(
            _cosender_transmissions(session, layouts[s], lane_starts[(s, r)])
        )
        for tx in transmissions:
            grouped.setdefault(np.asarray(tx.samples).shape[-1], []).append(((s, r), tx))
    for _, members in grouped.items():
        links = [tx.link for _, tx in members]
        waveforms = np.stack([tx.samples for _, tx in members])
        starts_rows = [tx.start_sample for _, tx in members]
        for (key, _), (waveform, start) in zip(members, propagate_rows(links, waveforms, starts_rows)):
            lane_contributions.setdefault(key, []).append(
                (int(start) + leading_silence, waveform)
            )
    for s, r in lane_order:
        end = max(
            (start_idx + waveform.size for start_idx, waveform in lane_contributions[(s, r)]),
            default=0,
        )
        if end > totals[s]:
            bad.add(s)

    # ------------------------------------------------------------------
    # Roll back violated sessions and replay them through the scalar path.
    # ------------------------------------------------------------------
    results: list[list[HeaderExchangeOutcome | None]] = [[None] * repeats for _ in sessions]
    for s in bad:
        sessions[s].rng.bit_generator.state = snapshots[s]
        for r in range(repeats):
            results[s][r] = sessions[s].run_header_exchange(
                compensate=compensate,
                apply_tracking_feedback=apply_tracking_feedback,
                genie_timing=genie_timing,
            )

    ok_lanes = [(s, r) for s, r in lane_order if s not in bad]
    if ok_lanes:
        max_len = max(totals[s] for s, _ in ok_lanes)
        padded = np.zeros((len(ok_lanes), max_len), dtype=np.complex128)
        lengths = np.zeros(len(ok_lanes), dtype=np.int64)
        start_hints: list[int | None] = []
        for row, (s, r) in enumerate(ok_lanes):
            for start_idx, waveform in lane_contributions[(s, r)]:
                padded[row, start_idx : start_idx + waveform.size] += waveform
            noise = combine_noises[s][r]
            if noise is not None:
                padded[row, : totals[s]] += noise
            lengths[row] = totals[s]
            start_hints.append(
                leading_silence
                + int(round(sessions[s].topology.link_lead_rx.delay_samples))
                if genie_timing
                else None
            )
        measured = sessions[0].receiver.measure_header_batch(
            padded, lengths, layouts[ok_lanes[0][0]], start_hints
        )
        for (s, r), (channels, misalignment, _) in zip(ok_lanes, measured):
            session = sessions[s]
            starts = lane_starts[(s, r)]
            true_misalignment = session._true_misalignments(layouts[s], starts)
            if apply_tracking_feedback and misalignment is not None:
                reported = iter(misalignment.misalignments_samples)
                for i in range(session.topology.n_cosenders):
                    if not np.isfinite(starts[i]):
                        continue
                    state = session._states[i]
                    if state.tracker is None:
                        continue
                    try:
                        state.tracker.update(next(reported))
                    except StopIteration:
                        break
            snr_db = session.topology.link_lead_rx.snr_db(session.topology.noise_power)
            results[s][r] = HeaderExchangeOutcome(
                measured_misalignment=misalignment,
                true_misalignment_samples=true_misalignment,
                schedules_feasible=tuple(lane_feasible[(s, r)]),
                snr_db=snr_db,
                channels=channels,
            )
    return results  # type: ignore[return-value]


def _probe_received_length(link: Link, waveform_len: int, leading_silence: int = 80, tail: int = 40) -> int:
    """Length of a probe's received stream, computed without propagating.

    Mirrors :meth:`Link.propagate` geometry: full channel convolution plus
    one sample when the total delay has a fractional part — so the
    draw-ahead path can pre-draw the exact noise vector the sequential
    path would.
    """
    total_delay = float(link.delay_samples)
    fractional = total_delay - int(np.floor(total_delay))
    size = waveform_len + link.channel.taps.size - 1
    if fractional > 1e-9:
        size += int(np.ceil(fractional))
    return leading_silence + int(np.floor(total_delay)) + size + tail


def converge_tracking_batch(
    sessions: list[SourceSyncSession], rounds: int = 4, compensate: bool = True
) -> None:
    """Run the §4.5 wait-time convergence loop for an ensemble, in lockstep."""
    for _ in range(max(rounds, 0)):
        run_header_exchanges_batch(
            sessions, repeats=1, compensate=compensate, apply_tracking_feedback=True
        )


@dataclass(frozen=True)
class JointFrameJob:
    """One joint frame to transmit inside :func:`run_joint_frames_batch`."""

    payload: bytes
    rate_mbps: float = 6.0
    data_cp_samples: int | None = None
    compensate: bool = True
    genie_timing: bool = False
    active_cosenders: tuple[int, ...] | None = None


class _JointFrameContext:
    """Receive jobs accumulated across waves for one deferred decode pass.

    Every wave appends its combined receiver rows here; the expensive
    receive chain (data FFTs, demapping, Viterbi) then runs once over the
    whole ensemble via ``receiver.receive_many`` — which performs no draws,
    so deferring it cannot perturb any lane's stream.
    """

    def __init__(self) -> None:
        self.receive_jobs: list[tuple] = []
        self.lane_meta: list[tuple] = []


class _JointFrameLane(Lane):
    """One session's joint-frame stream inside :func:`run_joint_frames_batch`.

    Frame ``r`` of every live session forms wave ``r``; the whole wave —
    header draws, lockstep cosender scheduling, ensemble combining at the
    receiver — runs as one stacked pass in session order.  The batch API
    predates ``after=`` chaining and never validated generator sharing, so
    chain enforcement stays off.
    """

    stacked = True
    enforce_generator_chains = False

    def __init__(
        self,
        session: SourceSyncSession,
        s: int,
        jobs: list[JointFrameJob],
        ctx: _JointFrameContext,
    ) -> None:
        self.session = session
        self.rng = session.rng
        self.after = None
        self.s = s
        self.jobs = jobs
        self.ctx = ctx
        self.wave_index = 0

    @property
    def finished(self) -> bool:
        """Whether every one of this session's frames has been transmitted."""
        return self.wave_index >= len(self.jobs)

    @classmethod
    def advance_lanes(cls, lanes: list["_JointFrameLane"]) -> None:
        """Transmit one joint frame per live session as a single stacked wave."""
        ctx = lanes[0].ctx
        built = []
        for wrapper in lanes:
            session = wrapper.session
            job = wrapper.jobs[wrapper.wave_index]
            frame_config = make_joint_frame_config(
                len(job.payload), job.rate_mbps, session.topology.params, job.data_cp_samples
            )
            layout = JointFrameLayout(
                params=session.topology.params,
                n_cosenders=session.topology.n_cosenders,
                n_data_symbols=session._padded_symbol_count(frame_config),
                data_cp_samples=job.data_cp_samples,
                sifs_us=session.config.sifs_us,
            )
            header, header_waveform = _draw_header(session, layout, job.rate_mbps)
            lead_waveform = session.lead.build_waveform(
                job.payload, header, layout, frame_config
            )
            built.append((wrapper, job, frame_config, layout, header_waveform, lead_waveform))
        schedule_lanes = [
            (entry[0].session, entry[3], entry[4]) for entry in built
        ]
        all_starts, all_feasible = _schedule_lockstep(
            schedule_lanes, [entry[1].compensate for entry in built]
        )
        leading_silence = 60
        wave_trials: list[tuple[list[Transmission], int | None]] = []
        wave_info = []
        for lane, (wrapper, job, frame_config, layout, header_waveform, lead_waveform) in enumerate(
            built
        ):
            topo = wrapper.session.topology
            starts = all_starts[lane]
            active = (
                list(range(topo.n_cosenders))
                if job.active_cosenders is None
                else sorted(job.active_cosenders)
            )
            transmissions = [
                Transmission(link=topo.link_lead_rx, samples=lead_waveform, start_sample=0.0)
            ]
            transmissions.extend(
                _cosender_transmissions(
                    wrapper.session,
                    layout,
                    starts,
                    training_only=False,
                    payload=job.payload,
                    frame_config=frame_config,
                    active=active,
                )
            )
            wave_trials.append((transmissions, None))
            start_index = (
                leading_silence + int(round(topo.link_lead_rx.delay_samples))
                if job.genie_timing
                else None
            )
            wave_info.append((wrapper, layout, frame_config, starts, all_feasible[lane], start_index))
        wave_rows, wave_lengths = combine_ensemble_at_receiver(
            wave_trials,
            [entry[0].session.topology.noise_power for entry in built],
            [entry[0].session.rng for entry in built],
            leading_silence=leading_silence,
        )
        for (wrapper, layout, frame_config, starts, feasible, start_index), row, length in zip(
            wave_info, wave_rows, wave_lengths
        ):
            ctx.receive_jobs.append((row[:length], int(length), layout, frame_config, start_index))
            ctx.lane_meta.append(
                (wrapper.s, wrapper.wave_index, layout, frame_config, starts, feasible)
            )
            wrapper.wave_index += 1


def run_joint_frames_batch(
    sessions: list[SourceSyncSession],
    jobs_per_session: list[list[JointFrameJob]],
) -> list[list[JointFrameOutcome]]:
    """Full joint frames for an ensemble, decoded in one batched pass.

    ``jobs_per_session[s]`` lists the frames session ``s`` transmits, in
    order; frame ``r`` of every session forms wave ``r``.  Frames are
    independent (no per-frame tracking feedback — the batched counterpart
    of ``run_joint_frame(..., apply_tracking_feedback=False)``), so the
    expensive receive chain (data FFTs, demapping, Viterbi) runs once over
    the whole ensemble; equal coded lengths share one block-parallel
    Viterbi call.
    """
    if len(jobs_per_session) != len(sessions):
        raise ValueError("need one job list per session")
    _check_common_structure(sessions)
    _ensure_measured_batch(sessions)

    ctx = _JointFrameContext()
    LockstepScheduler().run(
        [
            _JointFrameLane(session, s, jobs_per_session[s], ctx)
            for s, session in enumerate(sessions)
        ]
    )

    receiver = sessions[0].receiver
    received_results = receiver.receive_many(ctx.receive_jobs)

    results: list[list[JointFrameOutcome | None]] = [
        [None] * len(jobs) for jobs in jobs_per_session
    ]
    for (s, wave, layout, frame_config, starts, feasible), result in zip(
        ctx.lane_meta, received_results
    ):
        session = sessions[s]
        misalignment = session._true_misalignments(layout, starts)
        results[s][wave] = JointFrameOutcome(
            result=result,
            true_misalignment_samples=misalignment,
            schedules_feasible=tuple(feasible),
            layout=layout,
            frame_config=frame_config,
        )
    return results  # type: ignore[return-value]
