"""Joint frame format and timing (§4.4, Figs. 6 and 7).

A joint frame, as seen by the receiver, consists of:

1. the lead sender's synchronization header — a standard preamble (STF +
   LTF) followed by one header OFDM symbol carrying the lead sender
   identifier, the joint-frame flag, the packet identifier, the announced
   cyclic prefix for the data section and the transmission rate;
2. a SIFS-long silence during which co-senders turn their radios around;
3. one two-symbol channel-estimation slot per co-sender (LTF-format);
4. the jointly transmitted data symbols, using the announced CP.

All senders must agree on these offsets to the sample; this module is the
single source of truth for them, used by the lead sender, co-senders and
the joint receiver alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sync.compensation import SIFS_US, sifs_samples
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.rates import Rate, rate_for_mbps
from repro.phy.transmitter import FrameConfig

__all__ = ["SyncHeader", "JointFrameLayout", "make_joint_frame_config"]

#: Number of OFDM symbols used for the header fields after the preamble.
HEADER_SYMBOLS = 1


@dataclass(frozen=True)
class SyncHeader:
    """Contents of the synchronization header (§4.4).

    The header is transmitted by the lead sender only.  In the simulation
    its fields travel alongside the waveform (the airtime of the header
    symbol is accounted for); a production implementation would BPSK-encode
    them in the header OFDM symbol like the 802.11 SIGNAL field.
    """

    lead_sender_id: int
    packet_id: int
    is_joint_frame: bool
    rate_mbps: float
    data_cp_samples: int
    n_cosenders: int

    @staticmethod
    def packet_identifier(src_addr: int, dst_addr: int, ip_id: int) -> int:
        """16-bit packet identifier: hash of source, destination and IP id."""
        value = (src_addr * 0x9E3779B1 + dst_addr * 0x85EBCA77 + ip_id * 0xC2B2AE3D) & 0xFFFFFFFF
        return (value ^ (value >> 16)) & 0xFFFF


@dataclass(frozen=True)
class JointFrameLayout:
    """Sample-level layout of a joint frame.

    All offsets are relative to the first sample of the lead sender's STF
    *at the lead sender's antenna*; the receiver observes the same layout
    shifted by the lead-to-receiver propagation delay.
    """

    params: OFDMParams = DEFAULT_PARAMS
    n_cosenders: int = 1
    n_data_symbols: int = 1
    data_cp_samples: int | None = None
    sifs_us: float = SIFS_US

    def __post_init__(self) -> None:
        if self.n_cosenders < 0:
            raise ValueError("n_cosenders must be non-negative")
        if self.n_data_symbols < 1:
            raise ValueError("n_data_symbols must be at least 1")

    # -- section lengths ------------------------------------------------
    @property
    def stf_samples(self) -> int:
        """Short training field length."""
        return (self.params.n_fft // 4) * 10

    @property
    def ltf_samples(self) -> int:
        """Long training field / channel-estimation slot length."""
        return 2 * self.params.cp_samples + 2 * self.params.n_fft

    @property
    def header_symbol_samples(self) -> int:
        """Length of the header OFDM symbols."""
        return HEADER_SYMBOLS * self.params.symbol_samples

    @property
    def sync_header_samples(self) -> int:
        """Length of the full synchronization header (preamble + header)."""
        return self.stf_samples + self.ltf_samples + self.header_symbol_samples

    @property
    def sifs_samples(self) -> int:
        """SIFS gap in samples."""
        return int(round(sifs_samples(self.params.bandwidth_hz, self.sifs_us)))

    @property
    def effective_data_cp(self) -> int:
        """Cyclic prefix used for the data section (possibly increased, §4.6)."""
        return self.params.cp_samples if self.data_cp_samples is None else int(self.data_cp_samples)

    @property
    def data_symbol_samples(self) -> int:
        """Samples per data OFDM symbol with the announced CP."""
        return self.params.n_fft + self.effective_data_cp

    @property
    def data_params(self) -> OFDMParams:
        """Numerology used for the data section."""
        return self.params.with_cp(self.effective_data_cp)

    # -- section offsets -------------------------------------------------
    @property
    def global_reference_offset(self) -> int:
        """The global time reference: header end plus SIFS (§4.3)."""
        return self.sync_header_samples + self.sifs_samples

    def cosender_training_offset(self, cosender_index: int) -> int:
        """Offset of co-sender ``i``'s channel-estimation slot (0-based)."""
        if not 0 <= cosender_index < max(self.n_cosenders, 1):
            raise ValueError("cosender_index out of range")
        return self.global_reference_offset + cosender_index * self.ltf_samples

    @property
    def data_offset(self) -> int:
        """Offset of the first data sample."""
        return self.global_reference_offset + self.n_cosenders * self.ltf_samples

    @property
    def total_samples(self) -> int:
        """Total joint frame length in samples."""
        return self.data_offset + self.n_data_symbols * self.data_symbol_samples

    # -- overhead accounting ----------------------------------------------
    def overhead_fraction(self) -> float:
        """Fraction of airtime that is synchronization overhead (§4.4).

        The overhead of SourceSync relative to a standard frame is the SIFS
        gap plus the per-co-sender channel-estimation slots; the preamble and
        header are present in an ordinary transmission too.
        """
        extra = self.sifs_samples + self.n_cosenders * self.ltf_samples
        useful = self.n_data_symbols * self.data_symbol_samples
        return extra / max(useful + extra, 1)

    def airtime_us(self) -> float:
        """Total frame airtime in microseconds."""
        return self.total_samples * self.params.sample_period_s * 1e6


def make_joint_frame_config(
    payload_len: int,
    rate: Rate | float,
    params: OFDMParams = DEFAULT_PARAMS,
    data_cp_samples: int | None = None,
) -> FrameConfig:
    """Frame configuration shared by all senders of a joint frame.

    Every sender must produce the identical coded-bit stream (same scrambler
    seed, same rate, same padding), so this factory is the single place that
    derives the :class:`~repro.phy.transmitter.FrameConfig` for a joint
    transmission.  The data section may use an increased cyclic prefix.
    """
    rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
    data_params = params if data_cp_samples is None else params.with_cp(data_cp_samples)
    return FrameConfig(rate=rate_obj, n_payload_bytes=payload_len, params=data_params)
