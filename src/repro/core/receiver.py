"""Joint receiver: decodes a joint frame from multiple synchronized senders (§5, §6).

The receive path mirrors a standard OFDM receiver but differs in the three
places the paper calls out:

* it estimates one channel per sender — the lead sender's from the
  preamble LTF and each co-sender's from its channel-estimation slot
  (:mod:`repro.core.channel_est.joint_estimator`);
* it tracks one residual phase per sender using the time-shared pilots
  (:mod:`repro.core.channel_est.phase_tracking`) and applies the rotations
  to the individual channels before combining them;
* it decodes the space-time-coded data symbols with the Smart Combiner
  (:mod:`repro.core.combining`), obtaining the ``sum_i |H_i|^2`` combining
  gain per subcarrier.

It also produces the misalignment report (§4.5) that the receiver piggybacks
on its ACK so co-senders can track delay changes without new probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.channel_est.joint_estimator import (
    JointChannelEstimate,
    estimate_sender_channel,
    sender_active,
)
from repro.core.channel_est.phase_tracking import PerSenderPhaseTracker, pilot_owner
from repro.core.combining.stbc import SmartCombiner
from repro.core.config import SourceSyncConfig
from repro.core.frame import JointFrameLayout
from repro.core.sync.detection_delay import estimate_detection_delay
from repro.core.sync.tracking import MisalignmentReport, measure_misalignment
from repro.phy import bits as bitutils
from repro.phy.coding.convolutional import get_code
from repro.phy.coding.interleaver import interleaver_permutation
from repro.phy.coding.puncturing import depuncture
from repro.phy.detection import detect_packet_autocorrelation
from repro.phy.equalizer import ChannelEstimate, estimate_channel_ltf, estimate_noise_from_ltf
from repro.phy.modulation import get_modulation
from repro.phy.receiver import apply_cfo_correction
from repro.phy.detection import estimate_coarse_cfo
from repro.phy.transmitter import FrameConfig

__all__ = ["JointReceiveResult", "JointReceiver"]

_CODE = get_code()


@dataclass
class JointReceiveResult:
    """Outcome of attempting to decode one joint frame."""

    detected: bool
    crc_ok: bool
    payload: bytes
    start_index: int = -1
    channels: JointChannelEstimate | None = None
    misalignment: MisalignmentReport | None = None
    snr_db: float = float("nan")
    per_subcarrier_snr_db: np.ndarray | None = field(default=None, repr=False)
    cfo_hz: float = 0.0
    equalized_symbols: np.ndarray | None = field(default=None, repr=False)

    @property
    def success(self) -> bool:
        """True when the frame was detected and passed its CRC."""
        return self.detected and self.crc_ok


class JointReceiver:
    """Decodes joint frames built by :class:`repro.core.sender.LeadSender` and co-senders."""

    def __init__(self, config: SourceSyncConfig = SourceSyncConfig()):
        self.config = config
        self.combiner = SmartCombiner(config.combiner_scheme)

    # ------------------------------------------------------------------
    # Timing acquisition
    # ------------------------------------------------------------------
    def acquire(self, samples: np.ndarray, layout: JointFrameLayout) -> tuple[bool, int]:
        """Detect the joint frame and estimate its start to the nearest sample.

        Coarse detection uses the standard STF autocorrelator; the coarse
        index is then corrected with the channel-phase-slope estimate of the
        detection delay (§4.2a) measured on the lead sender's LTF — the same
        estimator co-senders use — rather than a matched filter.
        """
        params = layout.params
        detection = detect_packet_autocorrelation(samples, params)
        if not detection.detected:
            return False, -1
        coarse = detection.start_index
        # Back the acquisition LTF windows off by the full double guard so
        # they stay inside the (periodic) training field even when the
        # detector fired tens of samples late.
        backoff = 2 * params.cp_samples
        ltf_start = coarse + layout.stf_samples + 2 * params.cp_samples - backoff
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = samples[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            if chunk.size < params.n_fft:
                return False, -1
            reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        channel = estimate_channel_ltf(reps, params)
        offset = estimate_detection_delay(channel, params).delay_samples + backoff
        start = int(round(coarse - offset))
        return True, max(start, 0)

    # ------------------------------------------------------------------
    # Header-only processing (synchronization measurements, §4.5 / §8.1)
    # ------------------------------------------------------------------
    def measure_header(
        self,
        samples: np.ndarray,
        layout: JointFrameLayout,
        start_index: int | None = None,
        correct_cfo: bool = True,
    ) -> tuple[JointChannelEstimate | None, MisalignmentReport | None, int]:
        """Estimate per-sender channels and misalignment from the frame header.

        This is the processing a receiver performs on every joint frame to
        produce the misalignment feedback of §4.5; it needs only the
        synchronization header and the co-sender training slots, not the
        data section, and is therefore also the building block of the
        high-accuracy repeated-header estimator of §8.1.1.

        Returns ``(channels, misalignment, start_index)``; the first two are
        ``None`` when the frame is not detected.
        """
        params = layout.params
        samples = np.asarray(samples, dtype=np.complex128)
        backoff = self.config.window_backoff_samples
        if start_index is None:
            detected, start = self.acquire(samples, layout)
            if not detected:
                return None, None, -1
        else:
            start = int(start_index)
        needed = layout.data_offset
        if start + needed > samples.size:
            return None, None, start
        frame = samples[start : start + needed]
        if correct_cfo:
            try:
                cfo_hz = estimate_coarse_cfo(samples, start, params)
            except ValueError:
                cfo_hz = 0.0
            frame = apply_cfo_correction(frame, cfo_hz, params.sample_period_s)

        ltf_start = layout.stf_samples + 2 * params.cp_samples - backoff
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = frame[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        lead_channel = estimate_channel_ltf(reps, params)
        noise_var = estimate_noise_from_ltf(reps, params)
        lead_channel.noise_var = noise_var

        cosender_channels: list[ChannelEstimate | None] = []
        for k in range(layout.n_cosenders):
            slot_start = layout.cosender_training_offset(k)
            slot = frame[slot_start : slot_start + layout.ltf_samples]
            if not sender_active(slot, noise_var):
                cosender_channels.append(None)
                continue
            channel = estimate_sender_channel(slot, params, window_backoff=backoff)
            channel.noise_var = noise_var
            cosender_channels.append(channel)

        joint_estimate = JointChannelEstimate(
            lead=lead_channel, cosenders=cosender_channels, noise_var=noise_var, params=params
        )
        misalignment = measure_misalignment(
            lead_channel, [ch for ch in cosender_channels if ch is not None], params
        )
        return joint_estimate, misalignment, start

    # ------------------------------------------------------------------
    # Main receive path
    # ------------------------------------------------------------------
    def receive(
        self,
        samples: np.ndarray,
        layout: JointFrameLayout,
        frame_config: FrameConfig,
        start_index: int | None = None,
        correct_cfo: bool = True,
    ) -> JointReceiveResult:
        """Decode one joint frame.

        Parameters
        ----------
        samples:
            Received baseband samples containing the joint frame.
        layout:
            The joint frame layout announced in the synchronization header.
        frame_config:
            Rate / payload-length configuration shared by all senders.
        start_index:
            Optional externally supplied frame start (genie timing); when
            omitted the receiver acquires timing itself.
        correct_cfo:
            Whether to apply the standard receiver-side CFO correction
            referenced to the lead sender's preamble.
        """
        params = layout.params
        samples = np.asarray(samples, dtype=np.complex128)
        backoff = self.config.window_backoff_samples

        if start_index is None:
            detected, start = self.acquire(samples, layout)
            if not detected:
                return JointReceiveResult(False, False, b"")
        else:
            start = int(start_index)
        if start + layout.total_samples > samples.size:
            return JointReceiveResult(False, False, b"", start_index=start)

        frame = samples[start : start + layout.total_samples]
        cfo_hz = 0.0
        if correct_cfo:
            try:
                cfo_hz = estimate_coarse_cfo(samples, start, params)
            except ValueError:
                cfo_hz = 0.0
            frame = apply_cfo_correction(frame, cfo_hz, params.sample_period_s)

        # --- lead sender channel from its preamble LTF
        ltf_start = layout.stf_samples + 2 * params.cp_samples - backoff
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = frame[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        lead_channel = estimate_channel_ltf(reps, params)
        noise_var = estimate_noise_from_ltf(reps, params)
        lead_channel.noise_var = noise_var

        # --- co-sender channels from their training slots
        cosender_channels: list[ChannelEstimate | None] = []
        for k in range(layout.n_cosenders):
            slot_start = layout.cosender_training_offset(k)
            slot = frame[slot_start : slot_start + layout.ltf_samples]
            if not sender_active(slot, noise_var):
                cosender_channels.append(None)
                continue
            channel = estimate_sender_channel(slot, params, window_backoff=backoff)
            channel.noise_var = noise_var
            cosender_channels.append(channel)

        joint_estimate = JointChannelEstimate(
            lead=lead_channel,
            cosenders=cosender_channels,
            noise_var=noise_var,
            params=params,
        )
        active_channels = joint_estimate.active_channels()
        active_codewords = joint_estimate.active_codewords()
        n_intended = 1 + layout.n_cosenders

        # --- data section
        data_params = layout.data_params
        n_symbols_tx = self.combiner.pad_symbols(
            np.zeros((frame_config.n_data_symbols, params.n_data_subcarriers))
        ).shape[0]
        data_bins = params.data_bins()
        raw_symbols = np.empty((n_symbols_tx, data_bins.size), dtype=np.complex128)
        tracker = PerSenderPhaseTracker(n_senders=n_intended, params=params)
        per_symbol_channels = [
            np.empty((n_symbols_tx, data_bins.size), dtype=np.complex128)
            for _ in active_channels
        ]
        active_mask = [True] + [ch is not None for ch in cosender_channels]
        intended_channels = [lead_channel] + [
            ch if ch is not None else ChannelEstimate(np.zeros(params.n_fft, np.complex128), noise_var)
            for ch in cosender_channels
        ]

        # One gather + one batched FFT for every data symbol window; only the
        # pilot phase tracker stays sequential (each update unwraps relative
        # to the previous phase of the owning sender).
        windows = (
            layout.data_offset
            + np.arange(n_symbols_tx)[:, None] * layout.data_symbol_samples
            + data_params.cp_samples
            - backoff
            + np.arange(params.n_fft)[None, :]
        )
        freq_all = np.fft.fft(frame[windows], axis=-1) / np.sqrt(params.n_fft)
        phase_track = np.empty((n_symbols_tx, n_intended), dtype=np.float64)
        for t in range(n_symbols_tx):
            if self.config.pilot_sharing:
                owner = pilot_owner(t, n_intended)
                if active_mask[owner]:
                    tracker.update(freq_all[t], intended_channels, t)
            else:
                tracker.update(freq_all[t], intended_channels, t)
            phase_track[t] = tracker.phases
        raw_symbols[:] = freq_all[:, data_bins]
        active_idx = 0
        for sender, channel in enumerate(intended_channels):
            if not active_mask[sender]:
                continue
            rotation = np.exp(1j * phase_track[:, sender])
            per_symbol_channels[active_idx][:] = (
                channel.on_bins(data_bins)[None, :] * rotation[:, None]
            )
            active_idx += 1

        decoded_symbols, gain = self.combiner.decode(
            raw_symbols,
            per_symbol_channels,
            codeword_indices=active_codewords,
            constellation=get_modulation(frame_config.rate.modulation).points,
            return_gain=True,
        )

        # --- bit-domain processing (identical to the single-sender chain);
        # all data symbols are soft-demapped in one vectorised call and
        # deinterleaved with a single permutation of the (n_symbols, n_cbps)
        # block instead of a per-symbol Python loop.
        modulation = get_modulation(frame_config.rate.modulation)
        n_cbps = frame_config.coded_bits_per_symbol
        n_sym = frame_config.n_data_symbols
        noise_eff = np.broadcast_to(
            noise_var / np.maximum(gain[:n_sym], 1e-12), decoded_symbols[:n_sym].shape
        )
        soft = modulation.demodulate_soft(
            decoded_symbols[:n_sym].reshape(-1), noise_eff.reshape(-1)
        ).reshape(n_sym, n_cbps)
        perm = interleaver_permutation(n_cbps, frame_config.rate.bits_per_symbol)
        llrs = soft[:, perm].reshape(-1)

        original_len = _CODE.coded_length(frame_config.n_info_bits + frame_config.n_pad_bits)
        soft_full = depuncture(llrs, frame_config.rate.code_rate, original_len)
        decoded_bits = _CODE.decode(soft_full, terminated=True)
        descrambled = bitutils.descramble(decoded_bits, frame_config.scrambler_seed)
        info_bits = descrambled[: frame_config.n_info_bits]
        frame_bytes = bitutils.bits_to_bytes(info_bits)
        payload, crc_ok = bitutils.check_crc(frame_bytes)

        # --- feedback and quality metrics
        misalignment = measure_misalignment(
            lead_channel, [ch for ch in cosender_channels if ch is not None], params
        )
        per_sc_snr = joint_estimate.per_subcarrier_snr_db()
        snr_db = float(10.0 * np.log10(max(np.mean(10.0 ** (per_sc_snr / 10.0)), 1e-15)))

        return JointReceiveResult(
            detected=True,
            crc_ok=crc_ok,
            payload=payload if crc_ok else frame_bytes[:-4],
            start_index=start,
            channels=joint_estimate,
            misalignment=misalignment,
            snr_db=snr_db,
            per_subcarrier_snr_db=per_sc_snr,
            cfo_hz=cfo_hz,
            equalized_symbols=decoded_symbols[: frame_config.n_data_symbols],
        )
