"""Joint receiver: decodes a joint frame from multiple synchronized senders (§5, §6).

The receive path mirrors a standard OFDM receiver but differs in the three
places the paper calls out:

* it estimates one channel per sender — the lead sender's from the
  preamble LTF and each co-sender's from its channel-estimation slot
  (:mod:`repro.core.channel_est.joint_estimator`);
* it tracks one residual phase per sender using the time-shared pilots
  (:mod:`repro.core.channel_est.phase_tracking`) and applies the rotations
  to the individual channels before combining them;
* it decodes the space-time-coded data symbols with the Smart Combiner
  (:mod:`repro.core.combining`), obtaining the ``sum_i |H_i|^2`` combining
  gain per subcarrier.

It also produces the misalignment report (§4.5) that the receiver piggybacks
on its ACK so co-senders can track delay changes without new probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.channel_est.joint_estimator import (
    JointChannelEstimate,
    estimate_sender_channel,
    sender_active,
)
from repro.core.sync.detection_delay import phase_slope_windowed_batch
from repro.core.channel_est.phase_tracking import PerSenderPhaseTracker, pilot_owner
from repro.core.combining.stbc import SmartCombiner
from repro.core.config import SourceSyncConfig
from repro.core.frame import JointFrameLayout
from repro.core.sync.detection_delay import estimate_detection_delay
from repro.core.sync.tracking import MisalignmentReport, measure_misalignment
from repro.phy import bits as bitutils
from repro.phy.coding.convolutional import get_code
from repro.phy.coding.interleaver import interleaver_permutation
from repro.phy.coding.puncturing import depuncture
from repro.phy.detection import (
    detect_packet_autocorrelation,
    detect_packet_autocorrelation_batch,
    estimate_coarse_cfo_rows,
)
from repro.phy.equalizer import ChannelEstimate, estimate_channel_ltf, estimate_noise_from_ltf
from repro.phy.modulation import get_modulation
from repro.phy.params import OFDMParams
from repro.phy.receiver import apply_cfo_correction
from repro.phy.detection import estimate_coarse_cfo
from repro.phy.transmitter import FrameConfig

__all__ = ["JointReceiveResult", "JointReceiver"]

_CODE = get_code()


@dataclass
class JointReceiveResult:
    """Outcome of attempting to decode one joint frame."""

    detected: bool
    crc_ok: bool
    payload: bytes
    start_index: int = -1
    channels: JointChannelEstimate | None = None
    misalignment: MisalignmentReport | None = None
    snr_db: float = float("nan")
    per_subcarrier_snr_db: np.ndarray | None = field(default=None, repr=False)
    cfo_hz: float = 0.0
    equalized_symbols: np.ndarray | None = field(default=None, repr=False)

    @property
    def success(self) -> bool:
        """True when the frame was detected and passed its CRC."""
        return self.detected and self.crc_ok


class JointReceiver:
    """Decodes joint frames built by :class:`repro.core.sender.LeadSender` and co-senders."""

    def __init__(self, config: SourceSyncConfig = SourceSyncConfig()):
        self.config = config
        self.combiner = SmartCombiner(config.combiner_scheme)

    # ------------------------------------------------------------------
    # Timing acquisition
    # ------------------------------------------------------------------
    def acquire(self, samples: np.ndarray, layout: JointFrameLayout) -> tuple[bool, int]:
        """Detect the joint frame and estimate its start to the nearest sample.

        Coarse detection uses the standard STF autocorrelator; the coarse
        index is then corrected with the channel-phase-slope estimate of the
        detection delay (§4.2a) measured on the lead sender's LTF — the same
        estimator co-senders use — rather than a matched filter.
        """
        params = layout.params
        detection = detect_packet_autocorrelation(samples, params)
        if not detection.detected:
            return False, -1
        # Anchor on the detection *instant* (which lags the true start by
        # the metric run plus the correlation lag) rather than the coarse
        # start estimate: backing the double guard off from the late instant
        # centres the LTF windows inside the periodic training field with
        # maximal margin to the phase-slope ambiguity limit (+-n_fft/4
        # samples of window offset).
        coarse = detection.detect_index
        backoff = 2 * params.cp_samples
        ltf_start = coarse + layout.stf_samples + 2 * params.cp_samples - backoff
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = samples[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            if chunk.size < params.n_fft:
                return False, -1
            reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        channel = estimate_channel_ltf(reps, params)
        offset = estimate_detection_delay(channel, params).delay_samples + backoff
        start = int(round(coarse - offset))
        return True, max(start, 0)

    # ------------------------------------------------------------------
    # Header-only processing (synchronization measurements, §4.5 / §8.1)
    # ------------------------------------------------------------------
    def measure_header(
        self,
        samples: np.ndarray,
        layout: JointFrameLayout,
        start_index: int | None = None,
        correct_cfo: bool = True,
    ) -> tuple[JointChannelEstimate | None, MisalignmentReport | None, int]:
        """Estimate per-sender channels and misalignment from the frame header.

        This is the processing a receiver performs on every joint frame to
        produce the misalignment feedback of §4.5; it needs only the
        synchronization header and the co-sender training slots, not the
        data section, and is therefore also the building block of the
        high-accuracy repeated-header estimator of §8.1.1.

        Returns ``(channels, misalignment, start_index)``; the first two are
        ``None`` when the frame is not detected.
        """
        params = layout.params
        samples = np.asarray(samples, dtype=np.complex128)
        backoff = self.config.window_backoff_samples
        if start_index is None:
            detected, start = self.acquire(samples, layout)
            if not detected:
                return None, None, -1
        else:
            start = int(start_index)
        needed = layout.data_offset
        if start + needed > samples.size:
            return None, None, start
        frame = samples[start : start + needed]
        if correct_cfo:
            try:
                cfo_hz = estimate_coarse_cfo(samples, start, params)
            except ValueError:
                cfo_hz = 0.0
            frame = apply_cfo_correction(frame, cfo_hz, params.sample_period_s)

        ltf_start = layout.stf_samples + 2 * params.cp_samples - backoff
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = frame[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        lead_channel = estimate_channel_ltf(reps, params)
        noise_var = estimate_noise_from_ltf(reps, params)
        lead_channel.noise_var = noise_var

        cosender_channels: list[ChannelEstimate | None] = []
        for k in range(layout.n_cosenders):
            slot_start = layout.cosender_training_offset(k)
            slot = frame[slot_start : slot_start + layout.ltf_samples]
            if not sender_active(slot, noise_var):
                cosender_channels.append(None)
                continue
            channel = estimate_sender_channel(slot, params, window_backoff=backoff)
            channel.noise_var = noise_var
            cosender_channels.append(channel)

        joint_estimate = JointChannelEstimate(
            lead=lead_channel, cosenders=cosender_channels, noise_var=noise_var, params=params
        )
        misalignment = measure_misalignment(
            lead_channel, [ch for ch in cosender_channels if ch is not None], params
        )
        return joint_estimate, misalignment, start

    # ------------------------------------------------------------------
    # Main receive path
    # ------------------------------------------------------------------
    def receive(
        self,
        samples: np.ndarray,
        layout: JointFrameLayout,
        frame_config: FrameConfig,
        start_index: int | None = None,
        correct_cfo: bool = True,
    ) -> JointReceiveResult:
        """Decode one joint frame.

        Parameters
        ----------
        samples:
            Received baseband samples containing the joint frame.
        layout:
            The joint frame layout announced in the synchronization header.
        frame_config:
            Rate / payload-length configuration shared by all senders.
        start_index:
            Optional externally supplied frame start (genie timing); when
            omitted the receiver acquires timing itself.
        correct_cfo:
            Whether to apply the standard receiver-side CFO correction
            referenced to the lead sender's preamble.
        """
        params = layout.params
        samples = np.asarray(samples, dtype=np.complex128)
        backoff = self.config.window_backoff_samples

        if start_index is None:
            detected, start = self.acquire(samples, layout)
            if not detected:
                return JointReceiveResult(False, False, b"")
        else:
            start = int(start_index)
        if start + layout.total_samples > samples.size:
            return JointReceiveResult(False, False, b"", start_index=start)

        frame = samples[start : start + layout.total_samples]
        cfo_hz = 0.0
        if correct_cfo:
            try:
                cfo_hz = estimate_coarse_cfo(samples, start, params)
            except ValueError:
                cfo_hz = 0.0
            frame = apply_cfo_correction(frame, cfo_hz, params.sample_period_s)

        # --- lead sender channel from its preamble LTF
        ltf_start = layout.stf_samples + 2 * params.cp_samples - backoff
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = frame[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            reps[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        lead_channel = estimate_channel_ltf(reps, params)
        noise_var = estimate_noise_from_ltf(reps, params)
        lead_channel.noise_var = noise_var

        # --- co-sender channels from their training slots
        cosender_channels: list[ChannelEstimate | None] = []
        for k in range(layout.n_cosenders):
            slot_start = layout.cosender_training_offset(k)
            slot = frame[slot_start : slot_start + layout.ltf_samples]
            if not sender_active(slot, noise_var):
                cosender_channels.append(None)
                continue
            channel = estimate_sender_channel(slot, params, window_backoff=backoff)
            channel.noise_var = noise_var
            cosender_channels.append(channel)

        joint_estimate = JointChannelEstimate(
            lead=lead_channel,
            cosenders=cosender_channels,
            noise_var=noise_var,
            params=params,
        )
        active_channels = joint_estimate.active_channels()
        active_codewords = joint_estimate.active_codewords()
        n_intended = 1 + layout.n_cosenders

        # --- data section
        data_params = layout.data_params
        n_symbols_tx = self.combiner.pad_symbols(
            np.zeros((frame_config.n_data_symbols, params.n_data_subcarriers))
        ).shape[0]
        data_bins = params.data_bins()
        raw_symbols = np.empty((n_symbols_tx, data_bins.size), dtype=np.complex128)
        tracker = PerSenderPhaseTracker(n_senders=n_intended, params=params)
        per_symbol_channels = [
            np.empty((n_symbols_tx, data_bins.size), dtype=np.complex128)
            for _ in active_channels
        ]
        active_mask = [True] + [ch is not None for ch in cosender_channels]
        intended_channels = [lead_channel] + [
            ch if ch is not None else ChannelEstimate(np.zeros(params.n_fft, np.complex128), noise_var)
            for ch in cosender_channels
        ]

        # One gather + one batched FFT for every data symbol window; only the
        # pilot phase tracker stays sequential (each update unwraps relative
        # to the previous phase of the owning sender).
        windows = (
            layout.data_offset
            + np.arange(n_symbols_tx)[:, None] * layout.data_symbol_samples
            + data_params.cp_samples
            - backoff
            + np.arange(params.n_fft)[None, :]
        )
        freq_all = np.fft.fft(frame[windows], axis=-1) / np.sqrt(params.n_fft)
        phase_track = np.empty((n_symbols_tx, n_intended), dtype=np.float64)
        for t in range(n_symbols_tx):
            if self.config.pilot_sharing:
                owner = pilot_owner(t, n_intended)
                if active_mask[owner]:
                    tracker.update(freq_all[t], intended_channels, t)
            else:
                tracker.update(freq_all[t], intended_channels, t)
            phase_track[t] = tracker.phases
        raw_symbols[:] = freq_all[:, data_bins]
        active_idx = 0
        for sender, channel in enumerate(intended_channels):
            if not active_mask[sender]:
                continue
            rotation = np.exp(1j * phase_track[:, sender])
            per_symbol_channels[active_idx][:] = (
                channel.on_bins(data_bins)[None, :] * rotation[:, None]
            )
            active_idx += 1

        decoded_symbols, gain = self.combiner.decode(
            raw_symbols,
            per_symbol_channels,
            codeword_indices=active_codewords,
            constellation=get_modulation(frame_config.rate.modulation).points,
            return_gain=True,
        )

        # --- bit-domain processing (identical to the single-sender chain);
        # all data symbols are soft-demapped in one vectorised call and
        # deinterleaved with a single permutation of the (n_symbols, n_cbps)
        # block instead of a per-symbol Python loop.
        modulation = get_modulation(frame_config.rate.modulation)
        n_cbps = frame_config.coded_bits_per_symbol
        n_sym = frame_config.n_data_symbols
        noise_eff = np.broadcast_to(
            noise_var / np.maximum(gain[:n_sym], 1e-12), decoded_symbols[:n_sym].shape
        )
        soft = modulation.demodulate_soft(
            decoded_symbols[:n_sym].reshape(-1), noise_eff.reshape(-1)
        ).reshape(n_sym, n_cbps)
        perm = interleaver_permutation(n_cbps, frame_config.rate.bits_per_symbol)
        llrs = soft[:, perm].reshape(-1)

        original_len = _CODE.coded_length(frame_config.n_info_bits + frame_config.n_pad_bits)
        soft_full = depuncture(llrs, frame_config.rate.code_rate, original_len)
        decoded_bits = _CODE.decode(soft_full, terminated=True)
        descrambled = bitutils.descramble(decoded_bits, frame_config.scrambler_seed)
        info_bits = descrambled[: frame_config.n_info_bits]
        frame_bytes = bitutils.bits_to_bytes(info_bits)
        payload, crc_ok = bitutils.check_crc(frame_bytes)

        # --- feedback and quality metrics
        misalignment = measure_misalignment(
            lead_channel, [ch for ch in cosender_channels if ch is not None], params
        )
        per_sc_snr = joint_estimate.per_subcarrier_snr_db()
        snr_db = float(10.0 * np.log10(max(np.mean(10.0 ** (per_sc_snr / 10.0)), 1e-15)))

        return JointReceiveResult(
            detected=True,
            crc_ok=crc_ok,
            payload=payload if crc_ok else frame_bytes[:-4],
            start_index=start,
            channels=joint_estimate,
            misalignment=misalignment,
            snr_db=snr_db,
            per_subcarrier_snr_db=per_sc_snr,
            cfo_hz=cfo_hz,
            equalized_symbols=decoded_symbols[: frame_config.n_data_symbols],
        )

    # ------------------------------------------------------------------
    # Batched processing (the lockstep joint-frame ensemble path)
    # ------------------------------------------------------------------
    def _acquire_batch(
        self, rows: np.ndarray, lengths: np.ndarray, layout: JointFrameLayout
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`acquire` over zero-padded rows.

        Returns ``(detected, starts)`` arrays; per row the same detection,
        LTF estimation and phase-slope correction as the scalar path, with
        the detection and slope stages batched across the ensemble.
        """
        params = layout.params
        detections = detect_packet_autocorrelation_batch(rows, params)
        n_rows = rows.shape[0]
        detected = np.array([d.detected for d in detections])
        coarse = np.array([d.detect_index for d in detections], dtype=np.int64)
        starts = np.full(n_rows, -1, dtype=np.int64)
        backoff = 2 * params.cp_samples
        ltf_starts = coarse + layout.stf_samples + 2 * params.cp_samples - backoff
        fits = detected & (ltf_starts >= 0) & (ltf_starts + 2 * params.n_fft <= lengths)
        idx = np.nonzero(fits)[0]
        if idx.size:
            gather = ltf_starts[idx, None] + np.arange(2 * params.n_fft)[None, :]
            reps = rows[idx[:, None], gather].reshape(idx.size, 2, params.n_fft)
            ltf_syms = np.fft.fft(reps, axis=-1) / np.sqrt(params.n_fft)
            responses = estimate_channel_ltf(ltf_syms, params).response
            slopes, _ = phase_slope_windowed_batch(responses, params)
            offsets = slopes * params.n_fft / (2.0 * np.pi) + backoff
            starts[idx] = np.maximum(np.round(coarse[idx] - offsets).astype(np.int64), 0)
        return fits, starts

    def _header_channels_batch(
        self, frames: np.ndarray, layout: JointFrameLayout
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Lead + co-sender channel estimation for aligned header frames.

        ``frames`` is ``(n, >= layout.data_offset)`` of CFO-corrected,
        frame-aligned samples.  Returns ``(lead_responses, noise_vars,
        slots)`` where ``slots[k] = (active_mask, responses)`` for co-sender
        ``k`` — the batched equivalent of the per-frame estimation loops in
        :meth:`measure_header` / :meth:`receive`.
        """
        params = layout.params
        backoff = self.config.window_backoff_samples
        n = frames.shape[0]
        ltf_start = layout.stf_samples + 2 * params.cp_samples - backoff
        reps = frames[:, ltf_start : ltf_start + 2 * params.n_fft].reshape(n, 2, params.n_fft)
        ltf_syms = np.fft.fft(reps, axis=-1) / np.sqrt(params.n_fft)
        lead_responses = estimate_channel_ltf(ltf_syms, params).response
        noise_vars = np.asarray(estimate_noise_from_ltf(ltf_syms, params), dtype=np.float64)

        threshold = 10.0 ** (3.0 / 10.0)
        slots: list[tuple[np.ndarray, np.ndarray]] = []
        slot_window_start = 2 * params.cp_samples - backoff
        for k in range(layout.n_cosenders):
            slot_start = layout.cosender_training_offset(k)
            slot = frames[:, slot_start : slot_start + layout.ltf_samples]
            energy = np.mean(np.abs(slot) ** 2, axis=1)
            active = energy > noise_vars * threshold
            slot_reps = slot[
                :, slot_window_start : slot_window_start + 2 * params.n_fft
            ].reshape(n, 2, params.n_fft)
            slot_syms = np.fft.fft(slot_reps, axis=-1) / np.sqrt(params.n_fft)
            responses = estimate_channel_ltf(slot_syms, params).response
            slots.append((active, responses))
        return lead_responses, noise_vars, slots

    def _joint_estimates_batch(
        self,
        lead_responses: np.ndarray,
        noise_vars: np.ndarray,
        slots: list[tuple[np.ndarray, np.ndarray]],
        layout: JointFrameLayout,
    ) -> tuple[list[JointChannelEstimate], list[MisalignmentReport]]:
        """Assemble per-row estimates and misalignment reports from batch arrays.

        All phase-slope fits (lead and every active co-sender of every row)
        run as one stacked call — this is the §4.5 measurement that
        dominates the Fig. 12 loop.
        """
        params = layout.params
        n = lead_responses.shape[0]
        stacked = [lead_responses]
        stacked.extend(responses for _, responses in slots)
        all_responses = np.concatenate(stacked, axis=0)
        slopes, _ = phase_slope_windowed_batch(all_responses, params)
        delays = slopes * params.n_fft / (2.0 * np.pi)
        lead_offsets = delays[:n]

        estimates: list[JointChannelEstimate] = []
        reports: list[MisalignmentReport] = []
        for row in range(n):
            cosenders: list[ChannelEstimate | None] = []
            co_offsets: list[float] = []
            for k, (active, responses) in enumerate(slots):
                if not active[row]:
                    cosenders.append(None)
                    continue
                channel = ChannelEstimate(
                    response=responses[row].copy(), noise_var=float(noise_vars[row])
                )
                cosenders.append(channel)
                co_offsets.append(float(delays[(k + 1) * n + row]))
            lead_channel = ChannelEstimate(
                response=lead_responses[row].copy(), noise_var=float(noise_vars[row])
            )
            estimates.append(
                JointChannelEstimate(
                    lead=lead_channel,
                    cosenders=cosenders,
                    noise_var=float(noise_vars[row]),
                    params=params,
                )
            )
            lead_offset = float(lead_offsets[row])
            reports.append(
                MisalignmentReport(
                    lead_offset_samples=lead_offset,
                    cosender_offsets_samples=tuple(co_offsets),
                    misalignments_samples=tuple(lead_offset - off for off in co_offsets),
                )
            )
        return estimates, reports

    def measure_header_batch(
        self,
        rows: np.ndarray,
        lengths: np.ndarray,
        layout: JointFrameLayout,
        start_indices: list[int | None],
        correct_cfo: bool = True,
    ) -> list[tuple[JointChannelEstimate | None, MisalignmentReport | None, int]]:
        """Batched :meth:`measure_header` over a zero-padded row ensemble.

        ``rows`` is ``(n, max_len)`` with per-row true lengths in
        ``lengths``; ``start_indices[i]`` is a genie frame start or ``None``
        to acquire.  Returns the scalar method's ``(channels, misalignment,
        start)`` triple per row, computed with every stage batched.
        """
        params = layout.params
        rows = np.asarray(rows, dtype=np.complex128)
        n = rows.shape[0]
        lengths = np.asarray(lengths, dtype=np.int64)
        starts = np.zeros(n, dtype=np.int64)
        ok = np.ones(n, dtype=bool)
        need_acquire = [i for i, s in enumerate(start_indices) if s is None]
        for i, s in enumerate(start_indices):
            if s is not None:
                starts[i] = int(s)
        if need_acquire:
            sub = np.asarray(need_acquire)
            fits, acquired = self._acquire_batch(rows[sub], lengths[sub], layout)
            ok[sub] = fits
            starts[sub] = np.maximum(acquired, 0)

        needed = layout.data_offset
        fits_frame = ok & (starts + needed <= lengths)
        results: list[tuple[JointChannelEstimate | None, MisalignmentReport | None, int]] = [
            (None, None, -1)
        ] * n
        for i in range(n):
            if not ok[i]:
                results[i] = (None, None, -1)
            elif not fits_frame[i]:
                results[i] = (None, None, int(starts[i]))
        idx = np.nonzero(fits_frame)[0]
        if idx.size == 0:
            return results

        gather = starts[idx, None] + np.arange(needed)[None, :]
        frames = rows[idx[:, None], gather]
        if correct_cfo:
            cfo = estimate_coarse_cfo_rows(rows, starts, lengths, fits_frame, params)[idx]
            span = np.arange(needed)[None, :]
            frames = frames * np.exp(
                -2j * np.pi * cfo[:, None] * span * params.sample_period_s
            )

        lead_responses, noise_vars, slots = self._header_channels_batch(frames, layout)
        estimates, reports = self._joint_estimates_batch(
            lead_responses, noise_vars, slots, layout
        )
        for pos, i in enumerate(idx):
            results[i] = (estimates[pos], reports[pos], int(starts[i]))
        return results

    def receive_many(
        self,
        jobs: list[tuple[np.ndarray, int, JointFrameLayout, FrameConfig, int | None]],
        correct_cfo: bool = True,
    ) -> list[JointReceiveResult]:
        """Decode an ensemble of joint frames with batched receive stages.

        Each job is ``(samples, length, layout, frame_config, start_index)``.
        Layouts must share the header geometry (same numerology and
        co-sender count); the data sections may differ per job (e.g. a
        cyclic-prefix sweep).  Timing acquisition, CFO, channel estimation
        and misalignment run batched across jobs, the per-job data sections
        are demapped into one LLR block, and all frames with equal coded
        length share a single block-parallel Viterbi call — the dominant
        cost of the sequential per-frame loop.
        """
        if not jobs:
            return []
        layout0 = jobs[0][2]
        params = layout0.params
        n = len(jobs)
        max_len = max(job[0].size for job in jobs)
        rows = np.zeros((n, max_len), dtype=np.complex128)
        lengths = np.zeros(n, dtype=np.int64)
        for i, (samples, length, layout, _, _) in enumerate(jobs):
            if (
                layout.params is not params and layout.params != params
            ) or layout.n_cosenders != layout0.n_cosenders:
                raise ValueError("receive_many requires a common header geometry")
            rows[i, : samples.size] = samples
            lengths[i] = length

        starts = np.zeros(n, dtype=np.int64)
        ok = np.ones(n, dtype=bool)
        need_acquire = [i for i, job in enumerate(jobs) if job[4] is None]
        for i, job in enumerate(jobs):
            if job[4] is not None:
                starts[i] = int(job[4])
        if need_acquire:
            sub = np.asarray(need_acquire)
            fits, acquired = self._acquire_batch(rows[sub], lengths[sub], layout0)
            ok[sub] = fits
            starts[sub] = np.maximum(acquired, 0)

        results: list[JointReceiveResult | None] = [None] * n
        total = np.array([job[2].total_samples for job in jobs], dtype=np.int64)
        fits_frame = ok & (starts + total <= lengths)
        for i in range(n):
            if not ok[i]:
                results[i] = JointReceiveResult(False, False, b"")
            elif not fits_frame[i]:
                results[i] = JointReceiveResult(False, False, b"", start_index=int(starts[i]))
        idx = np.nonzero(fits_frame)[0]
        if idx.size == 0:
            return results  # type: ignore[return-value]

        cfo = np.zeros(n)
        if correct_cfo:
            cfo = estimate_coarse_cfo_rows(rows, starts, lengths, fits_frame, params)

        # Frame-align each active job (lengths differ with the data CP) and
        # CFO-correct with the per-frame index ramp, then run the common
        # header stage batched.
        frames: dict[int, np.ndarray] = {}
        header_len = layout0.data_offset
        header_frames = np.empty((idx.size, header_len), dtype=np.complex128)
        for pos, i in enumerate(idx):
            frame = rows[i, starts[i] : starts[i] + total[i]]
            if correct_cfo:
                span = np.arange(frame.size)
                frame = frame * np.exp(-2j * np.pi * cfo[i] * span * params.sample_period_s)
            frames[i] = frame
            header_frames[pos] = frame[:header_len]
        lead_responses, noise_vars, slots = self._header_channels_batch(header_frames, layout0)
        estimates, reports = self._joint_estimates_batch(
            lead_responses, noise_vars, slots, layout0
        )

        # Per-job data sections up to the LLR block, then one Viterbi pass
        # per coded length.
        llr_blocks: dict[int, list[tuple[int, np.ndarray, FrameConfig]]] = {}
        decoded_symbols_by_job: dict[int, np.ndarray] = {}
        gains_by_job: dict[int, np.ndarray] = {}
        for pos, i in enumerate(idx):
            _, _, layout, frame_config, _ = jobs[i]
            frame = frames[i]
            joint_estimate = estimates[pos]
            noise_var = float(noise_vars[pos])
            backoff = self.config.window_backoff_samples
            active_codewords = joint_estimate.active_codewords()
            n_intended = 1 + layout.n_cosenders
            data_params = layout.data_params
            n_symbols_tx = self.combiner.pad_symbols(
                np.zeros((frame_config.n_data_symbols, params.n_data_subcarriers))
            ).shape[0]
            data_bins = params.data_bins()
            tracker = PerSenderPhaseTracker(n_senders=n_intended, params=params)
            active_mask = [True] + [ch is not None for ch in joint_estimate.cosenders]
            intended_channels = [joint_estimate.lead] + [
                ch
                if ch is not None
                else ChannelEstimate(np.zeros(params.n_fft, np.complex128), noise_var)
                for ch in joint_estimate.cosenders
            ]
            windows = (
                layout.data_offset
                + np.arange(n_symbols_tx)[:, None] * layout.data_symbol_samples
                + data_params.cp_samples
                - backoff
                + np.arange(params.n_fft)[None, :]
            )
            freq_all = np.fft.fft(frame[windows], axis=-1) / np.sqrt(params.n_fft)
            phase_track = np.empty((n_symbols_tx, n_intended), dtype=np.float64)
            for t in range(n_symbols_tx):
                if self.config.pilot_sharing:
                    owner = pilot_owner(t, n_intended)
                    if active_mask[owner]:
                        tracker.update(freq_all[t], intended_channels, t)
                else:
                    tracker.update(freq_all[t], intended_channels, t)
                phase_track[t] = tracker.phases
            raw_symbols = freq_all[:, data_bins]
            per_symbol_channels = []
            for sender, channel in enumerate(intended_channels):
                if not active_mask[sender]:
                    continue
                rotation = np.exp(1j * phase_track[:, sender])
                per_symbol_channels.append(
                    channel.on_bins(data_bins)[None, :] * rotation[:, None]
                )
            decoded_symbols, gain = self.combiner.decode(
                raw_symbols,
                per_symbol_channels,
                codeword_indices=active_codewords,
                constellation=get_modulation(frame_config.rate.modulation).points,
                return_gain=True,
            )
            decoded_symbols_by_job[i] = decoded_symbols
            gains_by_job[i] = gain

            modulation = get_modulation(frame_config.rate.modulation)
            n_cbps = frame_config.coded_bits_per_symbol
            n_sym = frame_config.n_data_symbols
            noise_eff = np.broadcast_to(
                noise_var / np.maximum(gain[:n_sym], 1e-12), decoded_symbols[:n_sym].shape
            )
            soft = modulation.demodulate_soft(
                decoded_symbols[:n_sym].reshape(-1), noise_eff.reshape(-1)
            ).reshape(n_sym, n_cbps)
            perm = interleaver_permutation(n_cbps, frame_config.rate.bits_per_symbol)
            llrs = soft[:, perm].reshape(-1)
            original_len = _CODE.coded_length(
                frame_config.n_info_bits + frame_config.n_pad_bits
            )
            soft_full = depuncture(llrs, frame_config.rate.code_rate, original_len)
            llr_blocks.setdefault(soft_full.size, []).append((i, soft_full, frame_config))

        decoded_bits_by_job: dict[int, np.ndarray] = {}
        for _, block in llr_blocks.items():
            stacked = np.stack([soft_full for _, soft_full, _ in block])
            decoded = _CODE.decode_batch(stacked, terminated=True)
            for (i, _, frame_config), bits in zip(block, decoded):
                decoded_bits_by_job[i] = bitutils.descramble(
                    bits, frame_config.scrambler_seed
                )

        for pos, i in enumerate(idx):
            _, _, layout, frame_config, _ = jobs[i]
            joint_estimate = estimates[pos]
            descrambled = decoded_bits_by_job[i]
            info_bits = descrambled[: frame_config.n_info_bits]
            frame_bytes = bitutils.bits_to_bytes(info_bits)
            payload, crc_ok = bitutils.check_crc(frame_bytes)
            per_sc_snr = joint_estimate.per_subcarrier_snr_db()
            snr_db = float(
                10.0 * np.log10(max(np.mean(10.0 ** (per_sc_snr / 10.0)), 1e-15))
            )
            results[i] = JointReceiveResult(
                detected=True,
                crc_ok=crc_ok,
                payload=payload if crc_ok else frame_bytes[:-4],
                start_index=int(starts[i]),
                channels=joint_estimate,
                misalignment=reports[pos],
                snr_db=snr_db,
                per_subcarrier_snr_db=per_sc_snr,
                cfo_hz=float(cfo[i]),
                equalized_symbols=decoded_symbols_by_job[i][: frame_config.n_data_symbols],
            )
        return results  # type: ignore[return-value]
