"""Lead-sender and co-sender waveform construction (§4.4, Fig. 6).

Both sender roles produce baseband waveforms for the *same* payload at the
*same* rate; they differ in which sections of the joint frame they fill and
which space-time codeword they apply to the data symbols:

* the **lead sender** transmits the synchronization header (preamble +
  header symbol), stays silent through the SIFS and the co-sender training
  slots, and then transmits the codeword-0 data symbols;
* **co-sender i** is silent during the header and SIFS, transmits its own
  channel-estimation symbols in slot ``i``, stays silent through the other
  slots, and then transmits the codeword-``i+1`` data symbols, pre-rotated
  to cancel its measured carrier-frequency offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.channel_est.cfo import precorrect_cfo
from repro.core.channel_est.phase_tracking import pilot_scale_pattern
from repro.core.combining.stbc import SmartCombiner
from repro.core.config import SourceSyncConfig
from repro.core.frame import HEADER_SYMBOLS, JointFrameLayout, SyncHeader
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import assemble_symbols, symbols_to_samples
from repro.phy.preamble import long_training_field, preamble
from repro.phy.transmitter import FrameConfig, encode_payload_to_symbols

__all__ = ["header_symbol_bits", "LeadSender", "CoSender", "build_data_section"]


def header_symbol_bits(header: SyncHeader, n_bits: int) -> np.ndarray:
    """Deterministic BPSK bit pattern carrying the header fields.

    The bits are a keyed pseudo-random expansion of the header fields; both
    ends derive the same pattern, so the header symbol doubles as extra
    known training if needed.
    """
    key = (
        (header.lead_sender_id & 0xFFFF)
        ^ ((header.packet_id & 0xFFFF) << 16)
        ^ (int(header.is_joint_frame) << 32)
        ^ ((header.data_cp_samples & 0xFF) << 33)
        ^ ((header.n_cosenders & 0xF) << 41)
    )
    rng = np.random.default_rng(key)
    return rng.integers(0, 2, size=n_bits).astype(np.uint8)


def build_data_section(
    payload: bytes,
    frame_config: FrameConfig,
    combiner: SmartCombiner,
    codeword_index: int,
    sender_index: int,
    n_senders: int,
    layout: JointFrameLayout,
) -> np.ndarray:
    """Baseband samples of the data section for one sender.

    All senders derive the identical constellation-symbol block from the
    payload, apply their own space-time codeword, place pilots only on the
    symbols they own (§5) and use the CP announced in the header (§4.6).
    """
    data_symbols = encode_payload_to_symbols(payload, frame_config)
    coded = combiner.encode(data_symbols, codeword_index)
    n_symbols = coded.shape[0]
    pilots = pilot_scale_pattern(n_symbols, sender_index, n_senders)
    freq = assemble_symbols(coded, layout.data_params, start_symbol_index=0, pilot_scale=pilots)
    return symbols_to_samples(freq, layout.data_params)


@dataclass
class LeadSender:
    """Builds the lead sender's contribution to a joint frame."""

    config: SourceSyncConfig = SourceSyncConfig()
    node_id: int = 0

    def make_header(
        self,
        packet_id: int,
        rate_mbps: float,
        data_cp_samples: int,
        n_cosenders: int,
    ) -> SyncHeader:
        """Construct the synchronization header for a joint frame."""
        return SyncHeader(
            lead_sender_id=self.node_id,
            packet_id=packet_id,
            is_joint_frame=n_cosenders > 0,
            rate_mbps=rate_mbps,
            data_cp_samples=data_cp_samples,
            n_cosenders=n_cosenders,
        )

    def header_waveform(self, header: SyncHeader, layout: JointFrameLayout) -> np.ndarray:
        """Synchronization header waveform: preamble plus header symbol(s)."""
        params = layout.params
        modulation = get_modulation("BPSK")
        bits = header_symbol_bits(header, HEADER_SYMBOLS * params.n_data_subcarriers)
        symbols = modulation.modulate(bits).reshape(HEADER_SYMBOLS, params.n_data_subcarriers)
        freq = assemble_symbols(symbols, params, start_symbol_index=0)
        header_samples = symbols_to_samples(freq, params)
        return np.concatenate([preamble(params), header_samples])

    def build_waveform(
        self,
        payload: bytes,
        header: SyncHeader,
        layout: JointFrameLayout,
        frame_config: FrameConfig,
        combiner: SmartCombiner | None = None,
    ) -> np.ndarray:
        """Full lead-sender waveform for one joint frame (Fig. 6a)."""
        combiner = combiner if combiner is not None else SmartCombiner(self.config.combiner_scheme)
        header_wave = self.header_waveform(header, layout)
        silence = np.zeros(
            layout.sifs_samples + layout.n_cosenders * layout.ltf_samples, dtype=np.complex128
        )
        n_senders = 1 + layout.n_cosenders if self.config.pilot_sharing else 1
        data = build_data_section(
            payload, frame_config, combiner, codeword_index=0,
            sender_index=0, n_senders=n_senders, layout=layout,
        )
        return np.concatenate([header_wave, silence, data])


@dataclass
class CoSender:
    """Builds a co-sender's contribution to a joint frame."""

    cosender_index: int
    config: SourceSyncConfig = SourceSyncConfig()
    node_id: int = 1
    cfo_precorrection_hz: float = 0.0

    def training_waveform(self, layout: JointFrameLayout, precorrect: bool = True) -> np.ndarray:
        """This co-sender's channel-estimation symbols (LTF format, §4.4).

        The CFO pre-correction (§5) is applied here as well, so the receiver
        estimates this sender's channel free of the bulk frequency offset.
        """
        waveform = long_training_field(layout.params)
        if precorrect and abs(self.cfo_precorrection_hz) > 0:
            waveform = precorrect_cfo(
                waveform, self.cfo_precorrection_hz, layout.params.bandwidth_hz
            )
        return waveform

    def build_waveform(
        self,
        payload: bytes,
        layout: JointFrameLayout,
        frame_config: FrameConfig,
        combiner: SmartCombiner | None = None,
    ) -> np.ndarray:
        """Full co-sender waveform, starting at its first transmitted sample (Fig. 6b).

        The waveform starts with this co-sender's training symbols; the gap
        until the data section covers the training slots of later co-senders.
        """
        if not 0 <= self.cosender_index < layout.n_cosenders:
            raise ValueError("cosender_index is outside the layout's co-sender count")
        combiner = combiner if combiner is not None else SmartCombiner(self.config.combiner_scheme)
        training = self.training_waveform(layout, precorrect=False)
        remaining_slots = layout.n_cosenders - 1 - self.cosender_index
        silence = np.zeros(remaining_slots * layout.ltf_samples, dtype=np.complex128)
        n_senders = 1 + layout.n_cosenders if self.config.pilot_sharing else 1
        sender_index = self.cosender_index + 1 if self.config.pilot_sharing else 0
        data = build_data_section(
            payload, frame_config, combiner, codeword_index=self.cosender_index + 1,
            sender_index=sender_index, n_senders=n_senders, layout=layout,
        )
        waveform = np.concatenate([training, silence, data])
        if abs(self.cfo_precorrection_hz) > 0:
            waveform = precorrect_cfo(
                waveform, self.cfo_precorrection_hz, layout.params.bandwidth_hz
            )
        return waveform

    def transmit_offset_in_layout(self, layout: JointFrameLayout) -> int:
        """Nominal offset of this co-sender's first sample in the joint frame."""
        return layout.cosender_training_offset(self.cosender_index)
