"""End-to-end simulation of SourceSync joint transmissions.

A :class:`SourceSyncSession` wires together every piece of the architecture
for one lead sender, a set of co-senders and one receiver:

1. the nodes run probe/response exchanges to estimate pair-wise propagation
   delays and carrier-frequency offsets (§4.2c, §5);
2. for every joint frame, each co-sender receives the lead sender's
   synchronization header over its own simulated channel, estimates its
   detection delay from the channel phase slope (§4.2a), computes its wait
   time (§4.3) and schedules its transmission;
3. all transmissions are superimposed at the receiver with their true
   delays, channels, oscillator offsets and noise, and decoded by the joint
   receiver (§5, §6);
4. the receiver's misalignment report can be fed back to the co-senders to
   track delay changes (§4.5).

The session exposes both full-frame runs (header + training + data,
returning a :class:`~repro.core.receiver.JointReceiveResult`) and cheap
"sync trials" that only evaluate the achieved synchronization error —
the quantity of Fig. 12 — without building the data section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import db_to_linear
from repro.channel.composite import Link, Transmission, combine_at_receiver, link_for_snr
from repro.channel.multipath import DEFAULT_PROFILE, MultipathProfile
from repro.channel.oscillator import Oscillator
from repro.channel.propagation import propagation_delay_samples
from repro.core.channel_est.cfo import measure_cfo
from repro.core.channel_est.joint_estimator import JointChannelEstimate
from repro.core.config import SourceSyncConfig
from repro.core.combining.stbc import SmartCombiner
from repro.core.frame import JointFrameLayout, SyncHeader, make_joint_frame_config
from repro.core.receiver import JointReceiveResult, JointReceiver
from repro.core.sender import CoSender, LeadSender
from repro.core.sync.tracking import MisalignmentReport
from repro.core.sync.compensation import DelayBudget, compute_wait_time, sifs_samples
from repro.core.sync.probe import measure_propagation_delay, probe_leg
from repro.core.sync.tracking import WaitTimeTracker
from repro.hardware.frontend import RadioFrontend
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.transmitter import FrameConfig
from repro.rng import require_rng

__all__ = [
    "NodeProfile",
    "JointTopology",
    "SyncTrialResult",
    "JointFrameOutcome",
    "HeaderExchangeOutcome",
    "SourceSyncSession",
]


@dataclass
class NodeProfile:
    """A physical node participating in a joint transmission."""

    node_id: int
    frontend: RadioFrontend
    oscillator: Oscillator

    @classmethod
    def random(cls, node_id: int, rng: np.random.Generator, sample_rate_hz: float = 20e6) -> "NodeProfile":
        """Draw a node with random (but henceforth fixed) hardware characteristics."""
        return cls(
            node_id=node_id,
            frontend=RadioFrontend.random(rng, sample_rate_hz=sample_rate_hz),
            oscillator=Oscillator.random(rng),
        )


@dataclass
class JointTopology:
    """All nodes and links involved in one joint transmission to one receiver.

    Links are directional; reverse links (used by probe responses and ACKs)
    share the propagation delay of their forward counterpart but have
    independent small-scale fading, as on a real (reciprocal-delay, but
    separately-faded in our block model) wireless channel.
    """

    lead: NodeProfile
    cosenders: list[NodeProfile]
    receiver: NodeProfile
    link_lead_rx: Link
    links_cosender_rx: list[Link]
    links_lead_cosender: list[Link]
    links_cosender_lead: list[Link]
    link_rx_lead: Link
    links_rx_cosender: list[Link]
    noise_power: float = 1.0
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        n = len(self.cosenders)
        for name, links in (
            ("links_cosender_rx", self.links_cosender_rx),
            ("links_lead_cosender", self.links_lead_cosender),
            ("links_cosender_lead", self.links_cosender_lead),
            ("links_rx_cosender", self.links_rx_cosender),
        ):
            if len(links) != n:
                raise ValueError(f"{name} must have one link per co-sender")

    @property
    def n_cosenders(self) -> int:
        """Number of co-senders in the topology."""
        return len(self.cosenders)

    # ------------------------------------------------------------------
    @classmethod
    def from_snrs(
        cls,
        rng: np.random.Generator,
        lead_rx_snr_db: float,
        cosender_rx_snr_db: list[float] | tuple[float, ...],
        lead_cosender_snr_db: list[float] | tuple[float, ...] | None = None,
        lead_rx_distance_m: float = 20.0,
        cosender_rx_distance_m: list[float] | None = None,
        lead_cosender_distance_m: list[float] | None = None,
        profile: MultipathProfile = DEFAULT_PROFILE,
        params: OFDMParams = DEFAULT_PARAMS,
        noise_power: float = 1.0,
    ) -> "JointTopology":
        """Build a topology from link SNRs and node distances.

        SNRs control the fading/noise conditions; distances control the
        propagation delays the synchronizer must compensate.
        """
        cosender_rx_snr_db = list(cosender_rx_snr_db)
        n_co = len(cosender_rx_snr_db)
        if lead_cosender_snr_db is None:
            lead_cosender_snr_db = [max(lead_rx_snr_db, 15.0)] * n_co
        lead_cosender_snr_db = list(lead_cosender_snr_db)
        if cosender_rx_distance_m is None:
            cosender_rx_distance_m = [float(rng.uniform(5.0, 40.0)) for _ in range(n_co)]
        if lead_cosender_distance_m is None:
            lead_cosender_distance_m = [float(rng.uniform(5.0, 40.0)) for _ in range(n_co)]

        lead = NodeProfile.random(0, rng, params.bandwidth_hz)
        cosenders = [NodeProfile.random(i + 1, rng, params.bandwidth_hz) for i in range(n_co)]
        receiver = NodeProfile.random(100, rng, params.bandwidth_hz)

        def make_link(snr_db: float, distance_m: float, src: NodeProfile, dst: NodeProfile) -> Link:
            return link_for_snr(
                snr_db,
                noise_power=noise_power,
                profile=profile,
                rng=rng,
                delay_samples=propagation_delay_samples(distance_m, params.bandwidth_hz),
                cfo_hz=src.oscillator.cfo_to(dst.oscillator),
                params=params,
            )

        return cls(
            lead=lead,
            cosenders=cosenders,
            receiver=receiver,
            link_lead_rx=make_link(lead_rx_snr_db, lead_rx_distance_m, lead, receiver),
            links_cosender_rx=[
                make_link(cosender_rx_snr_db[i], cosender_rx_distance_m[i], cosenders[i], receiver)
                for i in range(n_co)
            ],
            links_lead_cosender=[
                make_link(lead_cosender_snr_db[i], lead_cosender_distance_m[i], lead, cosenders[i])
                for i in range(n_co)
            ],
            links_cosender_lead=[
                make_link(lead_cosender_snr_db[i], lead_cosender_distance_m[i], cosenders[i], lead)
                for i in range(n_co)
            ],
            link_rx_lead=make_link(lead_rx_snr_db, lead_rx_distance_m, receiver, lead),
            links_rx_cosender=[
                make_link(cosender_rx_snr_db[i], cosender_rx_distance_m[i], receiver, cosenders[i])
                for i in range(n_co)
            ],
            noise_power=noise_power,
            params=params,
        )


@dataclass
class _CoSenderState:
    """Per-co-sender state the session maintains across joint frames."""

    lead_to_cosender_samples: float = 0.0
    lead_to_receiver_samples: float = 0.0
    cosender_to_receiver_samples: float = 0.0
    #: This co-sender's carrier frequency offset *relative to the lead
    #: sender* (f_co - f_lead).  The co-sender pre-rotates its waveform by
    #: ``exp(-j 2 pi f t)`` with this value so that, after the receiver's
    #: standard lead-referenced CFO correction, its signal carries no bulk
    #: rotation (§5).
    cfo_to_lead_hz: float = 0.0
    tracker: WaitTimeTracker | None = None


@dataclass(frozen=True)
class SyncTrialResult:
    """Outcome of one synchronization trial (no data section).

    ``misalignment_samples[i]`` is the *true* offset between co-sender i's
    data-section arrival and the lead sender's data-section arrival at the
    receiver; this is what the paper's high-overhead reference algorithm
    measures in §8.1.1 and what Fig. 12 reports.
    """

    misalignment_samples: tuple[float, ...]
    feasible: tuple[bool, ...]
    snr_db: float

    def misalignment_ns(self, params: OFDMParams = DEFAULT_PARAMS) -> tuple[float, ...]:
        """Misalignments converted to nanoseconds."""
        return tuple(m * params.sample_period_ns for m in self.misalignment_samples)

    def worst_misalignment_ns(self, params: OFDMParams = DEFAULT_PARAMS) -> float:
        """Largest absolute misalignment in nanoseconds."""
        if not self.misalignment_samples:
            return 0.0
        return float(np.max(np.abs(self.misalignment_ns(params))))


@dataclass
class JointFrameOutcome:
    """Everything produced by one full joint-frame simulation."""

    result: JointReceiveResult
    true_misalignment_samples: tuple[float, ...]
    schedules_feasible: tuple[bool, ...]
    layout: JointFrameLayout
    frame_config: FrameConfig


@dataclass
class HeaderExchangeOutcome:
    """Result of a header-only joint transmission (§4.5 measurement path).

    ``measured_misalignment`` is what the receiver derives from the channel
    phase slopes of the lead sender and each co-sender — the value it feeds
    back in its ACK.  ``true_misalignment_samples`` is the simulator's exact
    arrival-time difference, available only because this is a simulation.
    ``channels`` holds the receiver's per-sender channel estimates for this
    header, which the power/diversity experiments (§8.2) read directly.
    """

    measured_misalignment: MisalignmentReport | None
    true_misalignment_samples: tuple[float, ...]
    schedules_feasible: tuple[bool, ...]
    snr_db: float
    channels: "JointChannelEstimate | None" = None

    @property
    def detected(self) -> bool:
        """Whether the receiver detected and processed the header."""
        return self.measured_misalignment is not None


class SourceSyncSession:
    """Drives joint transmissions over a :class:`JointTopology`."""

    def __init__(
        self,
        topology: JointTopology,
        config: SourceSyncConfig = SourceSyncConfig(),
        rng: np.random.Generator | None = None,
    ):
        self.topology = topology
        self.config = config
        self.rng = require_rng(rng, "SourceSyncSession")
        self.lead = LeadSender(config=config, node_id=topology.lead.node_id)
        self.receiver = JointReceiver(config=config)
        self.combiner = SmartCombiner(config.combiner_scheme)
        self._states: list[_CoSenderState] = [_CoSenderState() for _ in topology.cosenders]
        self._delays_measured = False

    def _padded_symbol_count(self, frame_config: FrameConfig) -> int:
        """Data-symbol count rounded up to the space-time block size."""
        block = self.combiner.block_symbols
        n = frame_config.n_data_symbols
        return int(np.ceil(n / block) * block)

    # ------------------------------------------------------------------
    # Measurement phase (§4.2c, §5)
    # ------------------------------------------------------------------
    def measure_delays(self, use_true_delays: bool = False) -> None:
        """Run the pair-wise probe exchanges that seed the synchronizer.

        ``use_true_delays`` bypasses the waveform-level probe simulation and
        loads the true delays instead; it is used by tests and by the
        unsynchronized baseline ablation where measurement noise is not the
        quantity under study.
        """
        topo = self.topology
        cfg = self.config
        for i, state in enumerate(self._states):
            if use_true_delays:
                state.lead_to_cosender_samples = topo.links_lead_cosender[i].delay_samples
                state.lead_to_receiver_samples = topo.link_lead_rx.delay_samples
                state.cosender_to_receiver_samples = topo.links_cosender_rx[i].delay_samples
                # The link's cfo_hz is f_lead - f_co (what the co-sender
                # observes when listening to the lead); the pre-correction
                # value is the co-sender's offset relative to the lead.
                state.cfo_to_lead_hz = -topo.links_lead_cosender[i].cfo_hz
            else:
                lead_co = measure_propagation_delay(
                    topo.links_lead_cosender[i],
                    topo.links_cosender_lead[i],
                    topo.lead.frontend,
                    topo.cosenders[i].frontend,
                    self.rng,
                    topo.noise_power,
                    topo.params,
                    n_probes=cfg.probe_count,
                )
                lead_rx = measure_propagation_delay(
                    topo.link_lead_rx,
                    topo.link_rx_lead,
                    topo.lead.frontend,
                    topo.receiver.frontend,
                    self.rng,
                    topo.noise_power,
                    topo.params,
                    n_probes=cfg.probe_count,
                )
                co_rx = measure_propagation_delay(
                    topo.links_cosender_rx[i],
                    topo.links_rx_cosender[i],
                    topo.cosenders[i].frontend,
                    topo.receiver.frontend,
                    self.rng,
                    topo.noise_power,
                    topo.params,
                    n_probes=cfg.probe_count,
                )
                cfo = measure_cfo(
                    topo.links_lead_cosender[i], self.rng, topo.noise_power, topo.params
                )
                state.lead_to_cosender_samples = (
                    lead_co.one_way_delay_samples if lead_co.valid
                    else topo.links_lead_cosender[i].delay_samples
                )
                state.lead_to_receiver_samples = (
                    lead_rx.one_way_delay_samples if lead_rx.valid
                    else topo.link_lead_rx.delay_samples
                )
                state.cosender_to_receiver_samples = (
                    co_rx.one_way_delay_samples if co_rx.valid
                    else topo.links_cosender_rx[i].delay_samples
                )
                state.cfo_to_lead_hz = -cfo.cfo_hz if cfo.valid else 0.0
            state.tracker = WaitTimeTracker(
                wait_time_samples=state.lead_to_receiver_samples - state.cosender_to_receiver_samples,
                gain=cfg.tracking_gain,
            )
        self._delays_measured = True

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------
    def _ensure_measured(self) -> None:
        if not self._delays_measured:
            self.measure_delays()

    def _schedule_cosenders(
        self,
        layout: JointFrameLayout,
        header_waveform: np.ndarray,
        compensate: bool = True,
    ) -> tuple[list[float], list[bool]]:
        """Simulate header reception at each co-sender and compute actual start times.

        Returns (absolute transmit start per co-sender in samples, feasibility
        flags).  With ``compensate=False`` the co-senders behave like the
        unsynchronized baseline of §8.1.2: they join as soon as the SIFS and
        their slot arrive according to their *local* perception of time,
        without correcting for detection or propagation delays.
        """
        topo = self.topology
        cfg = self.config
        sifs = float(layout.sifs_samples)
        header_len = float(layout.sync_header_samples)
        starts: list[float] = []
        feasible: list[bool] = []
        for i, state in enumerate(self._states):
            link = topo.links_lead_cosender[i]
            frontend = topo.cosenders[i].frontend
            leg = probe_leg(
                link,
                frontend,
                self.rng,
                topo.noise_power,
                topo.params,
                waveform=header_waveform,
            )
            slot_offset = float(i * layout.ltf_samples)
            if not leg.detected:
                starts.append(float("nan"))
                feasible.append(False)
                continue
            true_detect_delay = leg.true_detection_delay
            est_detect_delay = leg.estimated_detection_delay if compensate else 0.0
            wait_time = (
                state.tracker.wait_time_samples
                if (state.tracker is not None and compensate)
                else 0.0
            )
            if compensate:
                # The tracker's wait time equals T0_hat - t_i_hat plus any
                # ACK-feedback corrections (§4.5), so it plays the role of
                # w_i in the §4.3 schedule.
                budget = DelayBudget(
                    lead_to_cosender=state.lead_to_cosender_samples,
                    detection_delay=est_detect_delay,
                    turnaround=frontend.measure_turnaround_samples(),
                    lead_to_receiver=state.cosender_to_receiver_samples + wait_time,
                    cosender_to_receiver=state.cosender_to_receiver_samples,
                )
                schedule = compute_wait_time(budget, sifs, extra_slot_offset=slot_offset)
                local_wait = schedule.local_wait_after_detection
                schedule_feasible = schedule.feasible
            else:
                # Baseline: the co-sender starts its slot SIFS after it
                # *finished receiving* the header, with no compensation at all.
                target_offset = sifs + slot_offset
                local_wait = 0.0
                schedule_feasible = True

            if compensate:
                actual_start = (
                    link.delay_samples
                    + true_detect_delay
                    + header_len
                    + frontend.turnaround_samples
                    + max(local_wait, 0.0)
                )
            else:
                actual_start = (
                    link.delay_samples
                    + true_detect_delay
                    + header_len
                    + frontend.turnaround_samples
                    + max(target_offset - frontend.turnaround_samples, 0.0)
                )
            starts.append(float(actual_start))
            feasible.append(bool(schedule_feasible))
        return starts, feasible

    def _true_misalignments(
        self,
        layout: JointFrameLayout,
        starts: list[float],
    ) -> tuple[float, ...]:
        """True data-section misalignment of each co-sender vs the lead sender."""
        topo = self.topology
        lead_data_arrival = layout.data_offset + topo.link_lead_rx.delay_samples
        out = []
        for i, start in enumerate(starts):
            if not np.isfinite(start):
                out.append(float("nan"))
                continue
            data_offset_in_waveform = (layout.n_cosenders - i) * layout.ltf_samples
            arrival = start + data_offset_in_waveform + topo.links_cosender_rx[i].delay_samples
            out.append(float(arrival - lead_data_arrival))
        return tuple(out)

    # ------------------------------------------------------------------
    # Sync-only trials (Fig. 12)
    # ------------------------------------------------------------------
    def run_sync_trial(self, compensate: bool = True) -> SyncTrialResult:
        """Synchronize once and report the true residual misalignment."""
        self._ensure_measured()
        layout = JointFrameLayout(
            params=self.topology.params,
            n_cosenders=self.topology.n_cosenders,
            n_data_symbols=1,
            sifs_us=self.config.sifs_us,
        )
        header = self.lead.make_header(
            packet_id=int(self.rng.integers(0, 1 << 16)),
            rate_mbps=6.0,
            data_cp_samples=layout.effective_data_cp,
            n_cosenders=layout.n_cosenders,
        )
        header_waveform = self.lead.header_waveform(header, layout)
        starts, feasible = self._schedule_cosenders(layout, header_waveform, compensate)
        misalignment = self._true_misalignments(layout, starts)
        snr_db = self.topology.link_lead_rx.snr_db(self.topology.noise_power)
        return SyncTrialResult(misalignment, tuple(feasible), snr_db)

    # ------------------------------------------------------------------
    # Header-only joint exchanges (Fig. 12 and the §4.5 tracking loop)
    # ------------------------------------------------------------------
    def run_header_exchange(
        self,
        compensate: bool = True,
        apply_tracking_feedback: bool = True,
        genie_timing: bool = False,
    ) -> HeaderExchangeOutcome:
        """Transmit only the synchronization header and co-sender training.

        This is the cheapest exchange that exercises the whole measurement
        loop: co-senders synchronize to a freshly detected header, the
        receiver estimates both channels and measures their misalignment
        from the phase slopes, and (optionally) the co-senders apply the
        feedback to their wait times — exactly the §4.5 tracking loop.
        """
        self._ensure_measured()
        topo = self.topology
        layout = JointFrameLayout(
            params=topo.params,
            n_cosenders=topo.n_cosenders,
            n_data_symbols=1,
            sifs_us=self.config.sifs_us,
        )
        header = self.lead.make_header(
            packet_id=int(self.rng.integers(0, 1 << 16)),
            rate_mbps=6.0,
            data_cp_samples=layout.effective_data_cp,
            n_cosenders=layout.n_cosenders,
        )
        header_waveform = self.lead.header_waveform(header, layout)
        starts, feasible = self._schedule_cosenders(layout, header_waveform, compensate)

        leading_silence = 60
        transmissions = [
            Transmission(link=topo.link_lead_rx, samples=header_waveform, start_sample=0.0)
        ]
        for i in range(topo.n_cosenders):
            if not np.isfinite(starts[i]):
                continue
            cosender = CoSender(
                cosender_index=i,
                config=self.config,
                node_id=topo.cosenders[i].node_id,
                # CFO pre-correction is applied even in the unsynchronized
                # baseline: the Fig. 13 comparison isolates *timing*
                # compensation, not frequency handling.
                cfo_precorrection_hz=self._states[i].cfo_to_lead_hz,
            )
            transmissions.append(
                Transmission(
                    link=topo.links_cosender_rx[i],
                    samples=cosender.training_waveform(layout),
                    start_sample=starts[i],
                )
            )
        total_needed = leading_silence + int(np.ceil(topo.link_lead_rx.delay_samples)) + layout.data_offset + 40
        received = combine_at_receiver(
            transmissions,
            noise_power=topo.noise_power,
            rng=self.rng,
            leading_silence=leading_silence,
            total_length=total_needed,
        )
        start_index = (
            leading_silence + int(round(topo.link_lead_rx.delay_samples)) if genie_timing else None
        )
        channels, misalignment, _ = self.receiver.measure_header(received, layout, start_index=start_index)

        true_misalignment = self._true_misalignments(layout, starts)
        if apply_tracking_feedback and misalignment is not None:
            reported = iter(misalignment.misalignments_samples)
            for i in range(topo.n_cosenders):
                if not np.isfinite(starts[i]):
                    continue
                state = self._states[i]
                if state.tracker is None:
                    continue
                try:
                    state.tracker.update(next(reported))
                except StopIteration:
                    break
        snr_db = topo.link_lead_rx.snr_db(topo.noise_power)
        return HeaderExchangeOutcome(
            measured_misalignment=misalignment,
            true_misalignment_samples=true_misalignment,
            schedules_feasible=tuple(feasible),
            snr_db=snr_db,
            channels=channels,
        )

    def converge_tracking(self, rounds: int = 4, compensate: bool = True) -> None:
        """Run a few header exchanges with feedback to settle the wait times (§4.5)."""
        for _ in range(max(rounds, 0)):
            self.run_header_exchange(compensate=compensate, apply_tracking_feedback=True)

    # ------------------------------------------------------------------
    # Full joint frames
    # ------------------------------------------------------------------
    def run_joint_frame(
        self,
        payload: bytes,
        rate_mbps: float = 6.0,
        data_cp_samples: int | None = None,
        compensate: bool = True,
        active_cosenders: list[int] | None = None,
        apply_tracking_feedback: bool = True,
        genie_timing: bool = False,
    ) -> JointFrameOutcome:
        """Simulate one complete joint frame end to end.

        Parameters
        ----------
        payload:
            Packet payload shared by all senders.
        rate_mbps:
            Transmission rate chosen by the lead sender (announced in the
            synchronization header, §7.1).
        data_cp_samples:
            Cyclic prefix for the data section; ``None`` keeps the standard CP.
        compensate:
            When False, co-senders skip delay compensation (the baseline of
            Fig. 13).
        active_cosenders:
            Indices of co-senders that actually overheard the packet and can
            join; others stay silent (§7.2).  Default: all.
        apply_tracking_feedback:
            Feed the receiver's misalignment report back into the co-sender
            wait-time trackers (§4.5).
        genie_timing:
            Hand the receiver the exact frame start (used to isolate
            synchronization effects from receiver timing acquisition).
        """
        self._ensure_measured()
        topo = self.topology
        active = list(range(topo.n_cosenders)) if active_cosenders is None else sorted(active_cosenders)

        frame_config = make_joint_frame_config(
            len(payload), rate_mbps, topo.params, data_cp_samples
        )
        layout = JointFrameLayout(
            params=topo.params,
            n_cosenders=topo.n_cosenders,
            n_data_symbols=self._padded_symbol_count(frame_config),
            data_cp_samples=data_cp_samples,
            sifs_us=self.config.sifs_us,
        )
        header = self.lead.make_header(
            packet_id=int(self.rng.integers(0, 1 << 16)),
            rate_mbps=rate_mbps,
            data_cp_samples=layout.effective_data_cp,
            n_cosenders=layout.n_cosenders,
        )
        header_waveform = self.lead.header_waveform(header, layout)
        lead_waveform = self.lead.build_waveform(payload, header, layout, frame_config)

        starts, feasible = self._schedule_cosenders(layout, header_waveform, compensate)

        leading_silence = 60
        transmissions = [
            Transmission(link=topo.link_lead_rx, samples=lead_waveform, start_sample=0.0)
        ]
        for i in active:
            if not np.isfinite(starts[i]):
                continue
            cosender = CoSender(
                cosender_index=i,
                config=self.config,
                node_id=topo.cosenders[i].node_id,
                # CFO pre-correction is applied even in the unsynchronized
                # baseline: the Fig. 13 comparison isolates *timing*
                # compensation, not frequency handling.
                cfo_precorrection_hz=self._states[i].cfo_to_lead_hz,
            )
            waveform = cosender.build_waveform(payload, layout, frame_config)
            transmissions.append(
                Transmission(
                    link=topo.links_cosender_rx[i],
                    samples=waveform,
                    start_sample=starts[i],
                )
            )

        received = combine_at_receiver(
            transmissions,
            noise_power=topo.noise_power,
            rng=self.rng,
            leading_silence=leading_silence,
        )
        start_index = leading_silence + int(round(topo.link_lead_rx.delay_samples)) if genie_timing else None
        result = self.receiver.receive(
            received, layout, frame_config, start_index=start_index
        )

        misalignment = self._true_misalignments(layout, starts)
        if apply_tracking_feedback and result.misalignment is not None:
            reported = result.misalignment.misalignments_samples
            active_iter = iter(reported)
            for i in active:
                state = self._states[i]
                if state.tracker is None:
                    continue
                try:
                    state.tracker.update(next(active_iter))
                except StopIteration:
                    break
        return JointFrameOutcome(
            result=result,
            true_misalignment_samples=misalignment,
            schedules_feasible=tuple(feasible),
            layout=layout,
            frame_config=frame_config,
        )

    # ------------------------------------------------------------------
    # Batched ensemble entry points (lockstep core path)
    # ------------------------------------------------------------------
    def run_sync_trials_batch(self, n_trials: int, compensate: bool = True) -> list[SyncTrialResult]:
        """``n_trials`` synchronization trials with batched computation.

        Reproduces ``[self.run_sync_trial(compensate) for _ in range(n_trials)]``
        (same RNG draw order, same results) with the per-trial detection and
        phase-slope stages executed as stacked array operations; see
        :mod:`repro.core.ensemble`.
        """
        from repro.core.ensemble import run_sync_trials_batch

        return run_sync_trials_batch([self], repeats=n_trials, compensate=compensate)[0]

    def run_joint_ensemble(
        self,
        payloads: list[bytes],
        rate_mbps: float = 6.0,
        data_cp_samples: int | list[int | None] | None = None,
        compensate: bool = True,
        genie_timing: bool = False,
    ) -> list[JointFrameOutcome]:
        """Transmit an ensemble of independent joint frames, decoded batched.

        The batched counterpart of a ``run_joint_frame(...,
        apply_tracking_feedback=False)`` loop: frames are independent given
        the current tracker state, so the whole ensemble shares one batched
        receive pass (single block-parallel Viterbi call).  ``data_cp_samples``
        may be a scalar applied to every frame or one value per frame (the
        Fig. 13 cyclic-prefix sweep).
        """
        from repro.core.ensemble import JointFrameJob, run_joint_frames_batch

        if isinstance(data_cp_samples, list):
            if len(data_cp_samples) != len(payloads):
                raise ValueError("need one data_cp_samples entry per payload")
            cps = data_cp_samples
        else:
            cps = [data_cp_samples] * len(payloads)
        jobs = [
            JointFrameJob(
                payload=payload,
                rate_mbps=rate_mbps,
                data_cp_samples=cp,
                compensate=compensate,
                genie_timing=genie_timing,
            )
            for payload, cp in zip(payloads, cps)
        ]
        return run_joint_frames_batch([self], [jobs])[0]

    # ------------------------------------------------------------------
    # Single-sender reference transmission (for gain comparisons)
    # ------------------------------------------------------------------
    def run_single_sender_frame(
        self,
        payload: bytes,
        rate_mbps: float = 6.0,
        sender: str = "lead",
        genie_timing: bool = False,
    ) -> JointFrameOutcome:
        """Transmit the same payload from a single sender (no co-senders).

        Used by the power/diversity-gain experiments (§8.2) and the last-hop
        baseline (single best AP, §8.3).
        """
        self._ensure_measured()
        topo = self.topology
        frame_config = make_joint_frame_config(len(payload), rate_mbps, topo.params, None)
        layout = JointFrameLayout(
            params=topo.params,
            n_cosenders=0,
            n_data_symbols=self._padded_symbol_count(frame_config),
            sifs_us=self.config.sifs_us,
        )
        header = self.lead.make_header(
            packet_id=int(self.rng.integers(0, 1 << 16)),
            rate_mbps=rate_mbps,
            data_cp_samples=layout.effective_data_cp,
            n_cosenders=0,
        )
        if sender == "lead":
            link = topo.link_lead_rx
        else:
            index = int(sender) if not isinstance(sender, int) else sender
            link = topo.links_cosender_rx[index]
        waveform = self.lead.build_waveform(payload, header, layout, frame_config)
        leading_silence = 60
        received = combine_at_receiver(
            [Transmission(link=link, samples=waveform, start_sample=0.0)],
            noise_power=topo.noise_power,
            rng=self.rng,
            leading_silence=leading_silence,
        )
        start_index = leading_silence + int(round(link.delay_samples)) if genie_timing else None
        result = self.receiver.receive(received, layout, frame_config, start_index=start_index)
        return JointFrameOutcome(
            result=result,
            true_misalignment_samples=(),
            schedules_feasible=(),
            layout=layout,
            frame_config=frame_config,
        )
