"""Symbol Level Synchronizer (SLS): delay measurement and compensation (§4)."""

from repro.core.sync.compensation import (
    CoSenderSchedule,
    DelayBudget,
    SIFS_US,
    compute_wait_time,
    sifs_samples,
)
from repro.core.sync.detection_delay import (
    DetectionDelayEstimate,
    delay_samples_to_slope,
    estimate_detection_delay,
    phase_slope_full_band,
    phase_slope_windowed,
    slope_to_delay_samples,
)
from repro.core.sync.multi_receiver import (
    WaitTimeSolution,
    misalignment_matrix,
    optimize_wait_times,
    required_cp_increase,
)
from repro.core.sync.probe import (
    ProbeLegResult,
    PropagationDelayEstimate,
    measure_propagation_delay,
    probe_leg,
)
from repro.core.sync.tracking import MisalignmentReport, WaitTimeTracker, measure_misalignment

__all__ = [
    "DelayBudget",
    "CoSenderSchedule",
    "SIFS_US",
    "compute_wait_time",
    "sifs_samples",
    "DetectionDelayEstimate",
    "estimate_detection_delay",
    "phase_slope_windowed",
    "phase_slope_full_band",
    "slope_to_delay_samples",
    "delay_samples_to_slope",
    "WaitTimeSolution",
    "optimize_wait_times",
    "misalignment_matrix",
    "required_cp_increase",
    "ProbeLegResult",
    "PropagationDelayEstimate",
    "measure_propagation_delay",
    "probe_leg",
    "MisalignmentReport",
    "WaitTimeTracker",
    "measure_misalignment",
]
