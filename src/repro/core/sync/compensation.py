"""Wait-time computation and delay compensation at co-senders (§4.3).

The lead sender transmits a synchronization header, stays silent for SIFS
plus the co-sender training slots, and then transmits data.  Co-sender ``i``
hears the header after its propagation delay ``d_i`` plus its detection
delay ``delta_i``, needs ``h_i`` to turn its radio around, and must start
its transmission so that its data arrives at the receiver at the same time
as the lead sender's data.  With ``T0`` the lead-to-receiver delay and
``t_i`` the co-sender-to-receiver delay, the co-sender's extra wait relative
to the global time reference is ``w_i = T0 - t_i``.

This module computes those wait times and bounds the residual misalignment
given imperfect delay estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DelayBudget", "CoSenderSchedule", "compute_wait_time", "sifs_samples"]

#: SIFS of 802.11g/n in microseconds (§4.3 of the paper).
SIFS_US = 10.0


def sifs_samples(sample_rate_hz: float = 20e6, sifs_us: float = SIFS_US) -> float:
    """SIFS expressed in baseband samples."""
    return sifs_us * 1e-6 * sample_rate_hz


@dataclass(frozen=True)
class DelayBudget:
    """The delays a co-sender must account for, all in samples.

    Attributes
    ----------
    lead_to_cosender:
        Estimated one-way propagation delay from the lead sender (``d_i``).
    detection_delay:
        Estimated detection delay for this header reception (``delta_i``).
    turnaround:
        The co-sender's hardware turnaround time (``h_i``), known exactly.
    lead_to_receiver:
        Estimated one-way delay from the lead sender to the receiver (``T0``).
    cosender_to_receiver:
        Estimated one-way delay from this co-sender to the receiver (``t_i``).
    """

    lead_to_cosender: float
    detection_delay: float
    turnaround: float
    lead_to_receiver: float
    cosender_to_receiver: float

    @property
    def readiness_delay(self) -> float:
        """``d_i + delta_i + h_i``: how long after the header the node is ready."""
        return self.lead_to_cosender + self.detection_delay + self.turnaround

    @property
    def wait_relative_to_reference(self) -> float:
        """``w_i = T0 - t_i``: offset from the global time reference."""
        return self.lead_to_receiver - self.cosender_to_receiver


@dataclass(frozen=True)
class CoSenderSchedule:
    """When a co-sender should start transmitting.

    All quantities are in samples.  ``transmit_offset_after_header`` is
    measured from the instant the *lead sender finishes transmitting the
    synchronization header at its antenna*; ``local_wait_after_detection`` is
    what the co-sender actually programs into its hardware: the time between
    its detection of the header end and the start of its own transmission.
    """

    transmit_offset_after_header: float
    local_wait_after_detection: float
    feasible: bool


def compute_wait_time(
    budget: DelayBudget,
    sifs: float,
    extra_slot_offset: float = 0.0,
) -> CoSenderSchedule:
    """Compute a co-sender's transmission schedule (§4.3).

    Parameters
    ----------
    budget:
        The co-sender's delay estimates.
    sifs:
        The SIFS gap (samples) the lead sender leaves after its header.
    extra_slot_offset:
        Additional offset (samples) before this co-sender's first transmitted
        sample, used to place its channel-estimation symbols in its own slot
        when several co-senders participate (§4.4).

    Returns
    -------
    CoSenderSchedule
        The schedule; ``feasible`` is False when the node cannot be ready in
        time (its readiness delay exceeds SIFS plus the requested offset),
        in which case it must stay out of the joint transmission.
    """
    if sifs <= 0:
        raise ValueError("sifs must be positive")
    target_offset = sifs + budget.wait_relative_to_reference + extra_slot_offset
    local_wait = target_offset - budget.readiness_delay
    feasible = local_wait >= 0.0
    return CoSenderSchedule(
        transmit_offset_after_header=target_offset,
        local_wait_after_detection=local_wait,
        feasible=feasible,
    )
