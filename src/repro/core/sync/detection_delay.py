"""Packet-detection-delay estimation from the channel phase slope (§4.2a).

A delay of ``delta`` samples between the true start of a packet and the
instant the receiver detects it shows up, after the FFT, as a linear phase
ramp across OFDM subcarriers: subcarrier ``i`` is rotated by
``2*pi*i*delta / Ns`` (Eq. 1 of the paper).  SourceSync therefore estimates
``delta`` by measuring the slope of the channel phase versus subcarrier
index.

Because real channels are only flat over their coherence bandwidth, the
slope is estimated over windows of consecutive subcarriers spanning about
3 MHz (less than the coherence bandwidth of indoor channels) and the
per-window slopes are averaged — exactly the procedure of §4.2.  The
whole-band fit is also provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.equalizer import ChannelEstimate
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = [
    "phase_slope_windowed",
    "phase_slope_full_band",
    "slope_to_delay_samples",
    "delay_samples_to_slope",
    "estimate_detection_delay",
    "DetectionDelayEstimate",
]


@dataclass(frozen=True)
class DetectionDelayEstimate:
    """Result of a phase-slope detection-delay estimate.

    Attributes
    ----------
    delay_samples:
        Estimated delay between the packet's first sample and the FFT window
        the receiver actually used, in (fractional) samples.
    slope_rad_per_subcarrier:
        The underlying phase slope.
    n_windows:
        Number of subcarrier windows averaged.
    """

    delay_samples: float
    slope_rad_per_subcarrier: float
    n_windows: int

    def delay_ns(self, params: OFDMParams = DEFAULT_PARAMS) -> float:
        """Delay converted to nanoseconds for the given numerology."""
        return self.delay_samples * params.sample_period_ns


def _slope_of_window(offsets: np.ndarray, phases: np.ndarray) -> float:
    """Least-squares slope of unwrapped phase over one subcarrier window."""
    unwrapped = np.unwrap(phases)
    centered = offsets - offsets.mean()
    denom = float(np.sum(centered**2))
    if denom <= 0:
        return 0.0
    return float(np.sum(centered * (unwrapped - unwrapped.mean())) / denom)


def phase_slope_windowed(
    channel: ChannelEstimate | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_bandwidth_hz: float = 3e6,
    min_window: int = 2,
) -> tuple[float, int]:
    """Average phase slope (radians per subcarrier) over coherence-bandwidth windows.

    Parameters
    ----------
    channel:
        A :class:`ChannelEstimate` or a raw length-``n_fft`` complex response.
    window_bandwidth_hz:
        Width of each slope-estimation window; the paper uses 3 MHz, which is
        below the coherence bandwidth of indoor channels.
    min_window:
        Minimum number of subcarriers per window.

    Returns
    -------
    (slope, n_windows)
        Mean slope in radians per subcarrier index, and the number of
        windows that contributed.
    """
    response = channel.response if isinstance(channel, ChannelEstimate) else np.asarray(channel)
    offsets = params.occupied_offsets()
    bins = params.offset_to_fft_bin(offsets)
    values = response[bins]

    window_size = max(int(round(window_bandwidth_hz / params.subcarrier_spacing_hz)), min_window)

    # Split occupied subcarriers into runs of consecutive offsets (the DC
    # hole and guard bands break contiguity), then into windows.
    slopes: list[float] = []
    weights: list[float] = []
    run_start = 0
    for idx in range(1, offsets.size + 1):
        end_of_run = idx == offsets.size or offsets[idx] != offsets[idx - 1] + 1
        if not end_of_run:
            continue
        run_offsets = offsets[run_start:idx]
        run_values = values[run_start:idx]
        run_start = idx
        for w0 in range(0, run_offsets.size - min_window + 1, window_size):
            w1 = min(w0 + window_size, run_offsets.size)
            if w1 - w0 < min_window:
                continue
            window_vals = run_values[w0:w1]
            power = float(np.mean(np.abs(window_vals) ** 2))
            if power <= 1e-18:
                continue
            slope = _slope_of_window(run_offsets[w0:w1].astype(float), np.angle(window_vals))
            slopes.append(slope)
            weights.append(power)
    if not slopes:
        return 0.0, 0
    slopes_arr = np.asarray(slopes)
    weights_arr = np.asarray(weights)
    mean_slope = float(np.sum(slopes_arr * weights_arr) / np.sum(weights_arr))
    return mean_slope, len(slopes)


def phase_slope_full_band(
    channel: ChannelEstimate | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float:
    """Whole-band phase slope fit (the naive alternative used for ablation).

    In a frequency-selective channel the per-subcarrier channel phases are
    not aligned across the band, so unwrapping over the whole band is
    unreliable; the paper's windowed estimator avoids this.
    """
    response = channel.response if isinstance(channel, ChannelEstimate) else np.asarray(channel)
    offsets = params.occupied_offsets()
    values = response[params.offset_to_fft_bin(offsets)]
    order = np.argsort(offsets)
    return _slope_of_window(offsets[order].astype(float), np.angle(values[order]))


def slope_to_delay_samples(slope_rad_per_subcarrier: float, params: OFDMParams = DEFAULT_PARAMS) -> float:
    """Convert a phase slope to a detection delay via Eq. 1 of the paper.

    A positive delay (FFT window placed ``delta`` samples after the true
    packet start) produces a phase ramp of ``+2*pi*i*delta/Ns`` on subcarrier
    offset ``i`` with this library's FFT conventions, matching Fig. 5 of the
    paper, so the delay is ``slope * Ns / (2*pi)``.
    """
    return slope_rad_per_subcarrier * params.n_fft / (2.0 * np.pi)


def delay_samples_to_slope(delay_samples: float, params: OFDMParams = DEFAULT_PARAMS) -> float:
    """Inverse of :func:`slope_to_delay_samples` (useful in tests)."""
    return 2.0 * np.pi * delay_samples / params.n_fft


def estimate_detection_delay(
    channel: ChannelEstimate | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_bandwidth_hz: float = 3e6,
) -> DetectionDelayEstimate:
    """Estimate the packet-detection delay from a channel estimate.

    The channel estimate must have been computed using the FFT window implied
    by the (possibly late) detection instant; the returned delay is the
    offset of that window from the true packet start, in samples.
    """
    slope, n_windows = phase_slope_windowed(channel, params, window_bandwidth_hz)
    delay = slope_to_delay_samples(slope, params)
    return DetectionDelayEstimate(
        delay_samples=delay,
        slope_rad_per_subcarrier=slope,
        n_windows=n_windows,
    )
