"""Packet-detection-delay estimation from the channel phase slope (§4.2a).

A delay of ``delta`` samples between the true start of a packet and the
instant the receiver detects it shows up, after the FFT, as a linear phase
ramp across OFDM subcarriers: subcarrier ``i`` is rotated by
``2*pi*i*delta / Ns`` (Eq. 1 of the paper).  SourceSync therefore estimates
``delta`` by measuring the slope of the channel phase versus subcarrier
index.

Because real channels are only flat over their coherence bandwidth, the
slope is estimated over windows of consecutive subcarriers spanning about
3 MHz (less than the coherence bandwidth of indoor channels) and the
per-window slopes are averaged — exactly the procedure of §4.2.  The
whole-band fit is also provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.equalizer import ChannelEstimate
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = [
    "phase_slope_windowed",
    "phase_slope_windowed_batch",
    "phase_slope_full_band",
    "slope_to_delay_samples",
    "delay_samples_to_slope",
    "estimate_detection_delay",
    "estimate_detection_delays_batch",
    "DetectionDelayEstimate",
]


@dataclass(frozen=True)
class DetectionDelayEstimate:
    """Result of a phase-slope detection-delay estimate.

    Attributes
    ----------
    delay_samples:
        Estimated delay between the packet's first sample and the FFT window
        the receiver actually used, in (fractional) samples.
    slope_rad_per_subcarrier:
        The underlying phase slope.
    n_windows:
        Number of subcarrier windows averaged.
    """

    delay_samples: float
    slope_rad_per_subcarrier: float
    n_windows: int

    def delay_ns(self, params: OFDMParams = DEFAULT_PARAMS) -> float:
        """Delay converted to nanoseconds for the given numerology."""
        return self.delay_samples * params.sample_period_ns


def _slope_of_window(offsets: np.ndarray, phases: np.ndarray) -> float:
    """Least-squares slope of unwrapped phase over one subcarrier window."""
    unwrapped = np.unwrap(phases)
    centered = offsets - offsets.mean()
    denom = float(np.sum(centered**2))
    if denom <= 0:
        return 0.0
    return float(np.sum(centered * (unwrapped - unwrapped.mean())) / denom)


#: Precomputed window layouts keyed by (params, bandwidth, min size) — the
#: numerology is a frozen (hashable) dataclass, so equal numerologies share
#: one entry: window index arrays into the occupied-subcarrier vector,
#: grouped by window length so every group batches into one array operation.
_WINDOW_LAYOUT_CACHE: dict[tuple, list[tuple[np.ndarray, np.ndarray, float]]] = {}


def _window_layout(
    params: OFDMParams, window_bandwidth_hz: float, min_window: int
) -> list[tuple[np.ndarray, np.ndarray, float]]:
    """Slope windows over the occupied subcarriers, grouped by window length.

    Returns a list of groups ``(indices, centered_offsets, denom)`` where
    ``indices`` is ``(n_windows, window_len)`` into the occupied-subcarrier
    vector, ``centered_offsets`` the mean-removed subcarrier offsets shared
    by every window of the group, and ``denom`` the least-squares
    denominator.  Windows never straddle the DC hole or the guard bands
    (runs of consecutive offsets are windowed independently).
    """
    offsets = params.occupied_offsets()
    key = (params, float(window_bandwidth_hz), int(min_window))
    cached = _WINDOW_LAYOUT_CACHE.get(key)
    if cached is not None:
        return cached
    window_size = max(int(round(window_bandwidth_hz / params.subcarrier_spacing_hz)), min_window)
    by_length: dict[int, list[np.ndarray]] = {}
    run_start = 0
    for idx in range(1, offsets.size + 1):
        end_of_run = idx == offsets.size or offsets[idx] != offsets[idx - 1] + 1
        if not end_of_run:
            continue
        run_len = idx - run_start
        for w0 in range(0, run_len - min_window + 1, window_size):
            w1 = min(w0 + window_size, run_len)
            if w1 - w0 < min_window:
                continue
            by_length.setdefault(w1 - w0, []).append(np.arange(run_start + w0, run_start + w1))
        run_start = idx
    groups: list[tuple[np.ndarray, np.ndarray, float]] = []
    for length, index_rows in sorted(by_length.items()):
        indices = np.stack(index_rows)
        # Consecutive offsets mean every window of this length shares the
        # same mean-removed abscissa (and therefore the same denominator).
        base = offsets[indices[0]].astype(float)
        centered = base - base.mean()
        groups.append((indices, centered, float(np.sum(centered**2))))
    _WINDOW_LAYOUT_CACHE[key] = groups
    return groups


def phase_slope_windowed(
    channel: ChannelEstimate | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_bandwidth_hz: float = 3e6,
    min_window: int = 2,
) -> tuple[float, int]:
    """Average phase slope (radians per subcarrier) over coherence-bandwidth windows.

    Parameters
    ----------
    channel:
        A :class:`ChannelEstimate` or a raw length-``n_fft`` complex response.
    window_bandwidth_hz:
        Width of each slope-estimation window; the paper uses 3 MHz, which is
        below the coherence bandwidth of indoor channels.
    min_window:
        Minimum number of subcarriers per window.

    Thin wrapper over :func:`phase_slope_windowed_batch` with a batch of
    one (all windows of the response are still processed as stacked array
    operations rather than a per-window Python loop).

    Returns
    -------
    (slope, n_windows)
        Mean slope in radians per subcarrier index, and the number of
        windows that contributed.
    """
    response = channel.response if isinstance(channel, ChannelEstimate) else np.asarray(channel)
    slopes, n_windows = phase_slope_windowed_batch(
        response[None, :], params, window_bandwidth_hz, min_window
    )
    return float(slopes[0]), int(n_windows[0])


def phase_slope_windowed_batch(
    responses: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_bandwidth_hz: float = 3e6,
    min_window: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed phase slopes of a ``(n_channels, n_fft)`` response ensemble.

    The slope windows are precomputed per numerology and grouped by length,
    so the unwrap / least-squares fit / power weighting of *every* window of
    *every* channel runs as a handful of stacked array operations — the hot
    path of probe processing, misalignment measurement and joint-frame
    acquisition.

    Returns ``(slopes, n_windows)`` arrays of shape ``(n_channels,)``;
    channels whose windows all lack energy report slope 0 with 0 windows,
    matching :func:`phase_slope_windowed`.
    """
    responses = np.asarray(responses)
    if responses.ndim != 2:
        raise ValueError("expected a (n_channels, n_fft) response ensemble")
    n_channels = responses.shape[0]
    offsets = params.occupied_offsets()
    values = responses[:, params.offset_to_fft_bin(offsets)]

    weighted = np.zeros(n_channels, dtype=np.float64)
    weight_sum = np.zeros(n_channels, dtype=np.float64)
    n_windows = np.zeros(n_channels, dtype=np.int64)
    for indices, centered, denom in _window_layout(params, window_bandwidth_hz, min_window):
        window_vals = values[:, indices]  # (n_channels, n_windows, length)
        power = np.mean(np.abs(window_vals) ** 2, axis=-1)
        unwrapped = np.unwrap(np.angle(window_vals), axis=-1)
        if denom <= 0:
            slopes = np.zeros(power.shape)
        else:
            demeaned = unwrapped - unwrapped.mean(axis=-1, keepdims=True)
            slopes = (demeaned @ centered) / denom
        usable = power > 1e-18
        weighted += np.sum(np.where(usable, slopes * power, 0.0), axis=-1)
        weight_sum += np.sum(np.where(usable, power, 0.0), axis=-1)
        n_windows += np.sum(usable, axis=-1)
    slopes_out = np.where(weight_sum > 0, weighted / np.maximum(weight_sum, 1e-300), 0.0)
    return slopes_out, n_windows


def phase_slope_full_band(
    channel: ChannelEstimate | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float:
    """Whole-band phase slope fit (the naive alternative used for ablation).

    In a frequency-selective channel the per-subcarrier channel phases are
    not aligned across the band, so unwrapping over the whole band is
    unreliable; the paper's windowed estimator avoids this.
    """
    response = channel.response if isinstance(channel, ChannelEstimate) else np.asarray(channel)
    offsets = params.occupied_offsets()
    values = response[params.offset_to_fft_bin(offsets)]
    order = np.argsort(offsets)
    return _slope_of_window(offsets[order].astype(float), np.angle(values[order]))


def slope_to_delay_samples(slope_rad_per_subcarrier: float, params: OFDMParams = DEFAULT_PARAMS) -> float:
    """Convert a phase slope to a detection delay via Eq. 1 of the paper.

    A positive delay (FFT window placed ``delta`` samples after the true
    packet start) produces a phase ramp of ``+2*pi*i*delta/Ns`` on subcarrier
    offset ``i`` with this library's FFT conventions, matching Fig. 5 of the
    paper, so the delay is ``slope * Ns / (2*pi)``.
    """
    return slope_rad_per_subcarrier * params.n_fft / (2.0 * np.pi)


def delay_samples_to_slope(delay_samples: float, params: OFDMParams = DEFAULT_PARAMS) -> float:
    """Inverse of :func:`slope_to_delay_samples` (useful in tests)."""
    return 2.0 * np.pi * delay_samples / params.n_fft


def estimate_detection_delay(
    channel: ChannelEstimate | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_bandwidth_hz: float = 3e6,
) -> DetectionDelayEstimate:
    """Estimate the packet-detection delay from a channel estimate.

    The channel estimate must have been computed using the FFT window implied
    by the (possibly late) detection instant; the returned delay is the
    offset of that window from the true packet start, in samples.
    """
    slope, n_windows = phase_slope_windowed(channel, params, window_bandwidth_hz)
    delay = slope_to_delay_samples(slope, params)
    return DetectionDelayEstimate(
        delay_samples=delay,
        slope_rad_per_subcarrier=slope,
        n_windows=n_windows,
    )


def estimate_detection_delays_batch(
    responses: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    window_bandwidth_hz: float = 3e6,
) -> np.ndarray:
    """Detection delays (samples) of a ``(n_channels, n_fft)`` response ensemble.

    The vectorised counterpart of :func:`estimate_detection_delay`, used by
    the batched joint-frame paths to convert many channel estimates (probe
    legs, per-sender misalignment measurements) in one stacked pass.
    """
    slopes, _ = phase_slope_windowed_batch(responses, params, window_bandwidth_hz)
    return slopes * params.n_fft / (2.0 * np.pi)
