"""Wait-time optimisation for synchronization at multiple receivers (§4.6).

With a single receiver, wait times can align all senders perfectly.  With
several receivers (the opportunistic-routing case), propagation-delay
differences generally make perfect simultaneous alignment impossible
(Fig. 8 of the paper).  SourceSync instead chooses co-sender wait times that
minimise the *maximum pair-wise misalignment* over all receivers, and
increases the cyclic prefix of the joint frame by that residual
misalignment.

The optimisation is a small linear program: minimise ``m`` subject to

``|(w_i + t_ik) - T_k| <= m``            for every co-sender i, receiver k
``|(w_i + t_ik) - (w_j + t_jk)| <= m``   for every co-sender pair i,j, receiver k

which we solve with :func:`scipy.optimize.linprog`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["WaitTimeSolution", "optimize_wait_times", "misalignment_matrix", "required_cp_increase"]


@dataclass(frozen=True)
class WaitTimeSolution:
    """Result of the multi-receiver wait-time linear program.

    Attributes
    ----------
    wait_times:
        Optimal wait time ``w_i`` (samples, relative to the global time
        reference) for each co-sender.
    max_misalignment:
        The minimised maximum pair-wise misalignment (samples) over all
        receivers and sender pairs.
    success:
        Whether the LP solver converged.
    """

    wait_times: np.ndarray
    max_misalignment: float
    success: bool

    def cp_increase_samples(self) -> int:
        """Extra CP samples needed to absorb the residual misalignment."""
        return int(np.ceil(max(self.max_misalignment, 0.0)))


def misalignment_matrix(
    wait_times: np.ndarray,
    cosender_to_receiver: np.ndarray,
    lead_to_receiver: np.ndarray,
) -> np.ndarray:
    """Pair-wise misalignment at every receiver for given wait times.

    Parameters
    ----------
    wait_times:
        Wait time per co-sender, shape ``(n_cosenders,)``.
    cosender_to_receiver:
        One-way delays ``t_ik``, shape ``(n_cosenders, n_receivers)``.
    lead_to_receiver:
        One-way delays ``T_k`` from the lead sender, shape ``(n_receivers,)``.

    Returns
    -------
    numpy.ndarray
        Misalignment of every *sender pair* (including the lead) at every
        receiver, shape ``(n_pairs, n_receivers)``.
    """
    wait_times = np.asarray(wait_times, dtype=np.float64)
    t = np.asarray(cosender_to_receiver, dtype=np.float64)
    lead = np.asarray(lead_to_receiver, dtype=np.float64)
    if t.ndim != 2:
        raise ValueError("cosender_to_receiver must be 2-D (co-senders x receivers)")
    n_co, n_rx = t.shape
    if wait_times.shape != (n_co,) or lead.shape != (n_rx,):
        raise ValueError("inconsistent shapes")
    arrivals = wait_times[:, None] + t  # arrival offset of each co-sender at each rx
    rows = []
    # co-sender vs lead
    for i in range(n_co):
        rows.append(np.abs(arrivals[i] - lead))
    # co-sender vs co-sender
    for i in range(n_co):
        for j in range(i + 1, n_co):
            rows.append(np.abs(arrivals[i] - arrivals[j]))
    return np.asarray(rows)


def optimize_wait_times(
    cosender_to_receiver: np.ndarray,
    lead_to_receiver: np.ndarray,
) -> WaitTimeSolution:
    """Solve the §4.6 linear program for co-sender wait times.

    Variables are the co-sender wait times ``w_i`` and the maximum
    misalignment ``m``; the objective minimises ``m``.
    """
    t = np.asarray(cosender_to_receiver, dtype=np.float64)
    lead = np.asarray(lead_to_receiver, dtype=np.float64)
    if t.ndim != 2:
        raise ValueError("cosender_to_receiver must be 2-D (co-senders x receivers)")
    n_co, n_rx = t.shape
    if lead.shape != (n_rx,):
        raise ValueError("lead_to_receiver must have one entry per receiver")
    if n_co == 0:
        return WaitTimeSolution(np.zeros(0), 0.0, True)

    # Variable vector x = [w_1 .. w_n, m]
    n_vars = n_co + 1
    a_ub: list[np.ndarray] = []
    b_ub: list[float] = []

    def add_abs_constraint(coeffs: np.ndarray, constant: float) -> None:
        """Add |coeffs . w + constant| <= m as two linear constraints."""
        row = np.zeros(n_vars)
        row[:n_co] = coeffs
        row[-1] = -1.0
        a_ub.append(row.copy())
        b_ub.append(-constant)
        row_neg = np.zeros(n_vars)
        row_neg[:n_co] = -coeffs
        row_neg[-1] = -1.0
        a_ub.append(row_neg)
        b_ub.append(constant)

    for k in range(n_rx):
        for i in range(n_co):
            coeffs = np.zeros(n_co)
            coeffs[i] = 1.0
            add_abs_constraint(coeffs, t[i, k] - lead[k])
        for i in range(n_co):
            for j in range(i + 1, n_co):
                coeffs = np.zeros(n_co)
                coeffs[i] = 1.0
                coeffs[j] = -1.0
                add_abs_constraint(coeffs, t[i, k] - t[j, k])

    cost = np.zeros(n_vars)
    cost[-1] = 1.0
    bounds = [(None, None)] * n_co + [(0.0, None)]
    result = linprog(
        cost,
        A_ub=np.asarray(a_ub),
        b_ub=np.asarray(b_ub),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        # Fall back to the single-receiver heuristic: align at the first
        # receiver only.
        waits = lead[0] - t[:, 0]
        mis = misalignment_matrix(waits, t, lead).max() if n_rx else 0.0
        return WaitTimeSolution(waits, float(mis), False)
    waits = np.asarray(result.x[:n_co])
    return WaitTimeSolution(waits, float(result.x[-1]), True)


def required_cp_increase(
    solution: WaitTimeSolution,
    params: OFDMParams = DEFAULT_PARAMS,
) -> int:
    """Cyclic-prefix increase (in samples) the lead sender announces (§4.6).

    The lead sender communicates the new CP in the synchronization header so
    every sender uses it for the jointly transmitted data symbols.
    """
    return params.cp_samples + solution.cp_increase_samples()
