"""Probe/response propagation-delay measurement (§4.2c).

A node estimates its one-way propagation delay to a peer by timing a
probe/response round trip with its local sample clock and subtracting every
component that is not propagation (Eq. 2 of the paper): the responder's
packet-detection delay and hardware turnaround (reported back inside the
response) and its own packet-detection delay for the response.  Packet
detection delays are themselves estimated with the channel-phase-slope
method (:mod:`repro.core.sync.detection_delay`), which is what makes the
round-trip measurement accurate despite the large random detection latency.

The functions here run the measurement at the waveform level: real probe
waveforms are sent through :class:`repro.channel.Link` objects, detected
with the standard detector, and the phase-slope estimator is applied to the
resulting channel estimates, so every error source of a real exchange is
present.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.composite import Link
from repro.core.sync.detection_delay import estimate_detection_delay
from repro.hardware.frontend import RadioFrontend
from repro.phy.detection import detect_packet_autocorrelation, estimate_coarse_cfo
from repro.phy.equalizer import estimate_channel_ltf
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import preamble, short_training_field
from repro.phy.receiver import apply_cfo_correction

__all__ = ["ProbeLegResult", "probe_leg", "measure_propagation_delay", "PropagationDelayEstimate"]

def _acquisition_backoff(params: OFDMParams) -> int:
    """FFT-window backoff used when estimating the channel of a just-detected packet.

    The detector fires up to a few tens of samples after the true packet
    start.  Backing the LTF FFT windows off by the full double-length guard
    (``2 * cp``) keeps both windows inside the long-training field for any
    detection delay up to ``2 * cp`` samples; because the LTF is periodic,
    every such window is a cyclic rotation of the training symbol and the
    rotation is absorbed by the phase-slope estimate.
    """
    return 2 * params.cp_samples


@dataclass(frozen=True)
class ProbeLegResult:
    """Outcome of receiving one probe waveform at one node.

    Attributes
    ----------
    detected:
        Whether the probe was detected at all.
    true_detection_delay:
        True offset (samples) between the arrival of the probe's first
        sample and the node's detection instant (includes front-end latency).
    estimated_detection_delay:
        The node's own phase-slope estimate of that offset.
    snr_db:
        Average SNR of the probe as received.
    """

    detected: bool
    true_detection_delay: float
    estimated_detection_delay: float
    snr_db: float

    @property
    def estimation_error(self) -> float:
        """Residual error of the detection-delay estimate, in samples."""
        return self.true_detection_delay - self.estimated_detection_delay


def probe_waveform(params: OFDMParams = DEFAULT_PARAMS) -> np.ndarray:
    """The probe waveform: a bare 802.11 preamble (STF + LTF)."""
    return preamble(params)


def probe_leg(
    link: Link,
    frontend: RadioFrontend,
    rng: np.random.Generator,
    noise_power: float = 1.0,
    params: OFDMParams = DEFAULT_PARAMS,
    leading_silence: int = 80,
    waveform: np.ndarray | None = None,
) -> ProbeLegResult:
    """Simulate the reception of one probe over a link at the waveform level.

    Returns the true and estimated detection delays at the receiving node.
    The true delay is measured from the (fractional) arrival time of the
    first probe sample; the estimate is what the node derives from the
    channel phase slope of the probe's long training field.

    ``waveform`` defaults to a bare preamble probe; passing the lead
    sender's synchronization header instead models a co-sender estimating
    its detection delay for an actual joint transmission (§4.3), since the
    header begins with the same preamble.
    """
    waveform = probe_waveform(params) if waveform is None else np.asarray(waveform, np.complex128)
    contribution, integer_start = link.propagate(waveform, start_sample=0.0)
    total_len = leading_silence + int(integer_start) + contribution.size + 40
    received = np.zeros(total_len, dtype=np.complex128)
    offset = leading_silence + int(integer_start)
    received[offset : offset + contribution.size] += contribution
    received += awgn(total_len, noise_power, rng)

    detection = detect_packet_autocorrelation(received, params)
    if not detection.detected:
        return ProbeLegResult(False, 0.0, 0.0, link.snr_db(noise_power))

    # Standard receiver-side CFO correction from the short training field;
    # without it the two LTF repetitions rotate against each other and both
    # the noise and the phase-slope estimates degrade.
    try:
        cfo_hz = estimate_coarse_cfo(received, detection.start_index, params)
    except ValueError:
        cfo_hz = 0.0
    received = apply_cfo_correction(received, cfo_hz, params.sample_period_s)

    # Front-end pipeline latency adds to the correlator's own lag.
    snr_db = link.snr_db(noise_power)
    extra = frontend.detection_delay_samples(snr_db, rng)
    detect_instant = detection.detect_index + extra

    true_arrival = leading_silence + link.delay_samples
    true_delay = float(detect_instant - true_arrival)

    # Estimate the channel of the probe's LTF using FFT windows placed
    # according to the (late) detection instant, backed off into the guard.
    backoff = _acquisition_backoff(params)
    stf_len = short_training_field(params).size
    assumed_start = int(round(detect_instant))
    ltf_start = assumed_start + stf_len + 2 * params.cp_samples - backoff
    ltf_syms = np.empty((2, params.n_fft), dtype=np.complex128)
    for rep in range(2):
        begin = ltf_start + rep * params.n_fft
        chunk = received[begin : begin + params.n_fft]
        if chunk.size < params.n_fft:
            return ProbeLegResult(False, true_delay, 0.0, snr_db)
        ltf_syms[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
    channel = estimate_channel_ltf(ltf_syms, params)
    estimate = estimate_detection_delay(channel, params)
    # The node knows it deliberately backed the window off; what it reports is
    # the offset of its detection instant from the true packet start.
    estimated_delay = (
        float(estimate.delay_samples)
        + backoff
        + (detect_instant - assumed_start)
    )
    return ProbeLegResult(True, true_delay, estimated_delay, snr_db)


@dataclass(frozen=True)
class PropagationDelayEstimate:
    """One-way propagation delay estimate from a probe/response exchange."""

    valid: bool
    one_way_delay_samples: float
    true_one_way_delay_samples: float
    forward_leg: ProbeLegResult | None = None
    reverse_leg: ProbeLegResult | None = None

    @property
    def error_samples(self) -> float:
        """Estimation error in samples."""
        return self.one_way_delay_samples - self.true_one_way_delay_samples

    def error_ns(self, params: OFDMParams = DEFAULT_PARAMS) -> float:
        """Estimation error in nanoseconds."""
        return self.error_samples * params.sample_period_ns


def measure_propagation_delay(
    forward_link: Link,
    reverse_link: Link,
    frontend_a: RadioFrontend,
    frontend_b: RadioFrontend,
    rng: np.random.Generator,
    noise_power: float = 1.0,
    params: OFDMParams = DEFAULT_PARAMS,
    n_probes: int = 1,
) -> PropagationDelayEstimate:
    """Measure the one-way propagation delay between two nodes (Eq. 2).

    Node A transmits a probe to node B over ``forward_link``; B responds over
    ``reverse_link``.  Both nodes estimate their packet-detection delays with
    the phase-slope method and B reports its estimate (and its locally
    measured turnaround time) in the response, allowing A to isolate the
    two-way propagation delay and halve it.

    ``n_probes`` repeated exchanges are averaged, mirroring the periodic
    probing SourceSync performs (§4.2c).
    """
    if n_probes < 1:
        raise ValueError("n_probes must be at least 1")
    estimates = []
    last_fwd: ProbeLegResult | None = None
    last_rev: ProbeLegResult | None = None
    true_one_way = 0.5 * (forward_link.delay_samples + reverse_link.delay_samples)
    for _ in range(n_probes):
        fwd = probe_leg(forward_link, frontend_b, rng, noise_power, params)
        rev = probe_leg(reverse_link, frontend_a, rng, noise_power, params)
        last_fwd, last_rev = fwd, rev
        if not (fwd.detected and rev.detected):
            continue
        # Round trip as timed by A's clock:
        #   d_ab + delta_B + h_B + wait_B + d_ba + delta_A
        # B reports delta_B_hat, h_B and wait_B; A knows delta_A_hat.  The
        # turnaround and deliberate wait are known exactly (counted in local
        # clock ticks), so they cancel and are omitted here.
        round_trip_minus_known = (
            forward_link.delay_samples
            + fwd.true_detection_delay
            + reverse_link.delay_samples
            + rev.true_detection_delay
        )
        two_way = round_trip_minus_known - fwd.estimated_detection_delay - rev.estimated_detection_delay
        estimates.append(two_way / 2.0)
    if not estimates:
        return PropagationDelayEstimate(False, 0.0, true_one_way, last_fwd, last_rev)
    return PropagationDelayEstimate(
        valid=True,
        one_way_delay_samples=float(np.mean(estimates)),
        true_one_way_delay_samples=float(true_one_way),
        forward_leg=last_fwd,
        reverse_leg=last_rev,
    )
