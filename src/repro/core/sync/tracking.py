"""Delay tracking from data transmissions (§4.5).

Once senders are synchronized, node mobility slowly changes propagation
delays.  Rather than re-running probe exchanges, SourceSync measures the
residual misalignment of every received *joint frame*: the receiver
estimates the channel of the lead sender and of each co-sender, converts
each channel's phase slope into a symbol-timing offset, and reports the
difference (the misalignment) in its ACK.  The co-sender then nudges its
wait time by the reported amount for the next transmission.

:class:`WaitTimeTracker` implements the co-sender side of that feedback
loop, with an exponentially weighted correction so that measurement noise
does not cause oscillation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sync.detection_delay import estimate_detection_delay
from repro.phy.equalizer import ChannelEstimate
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["measure_misalignment", "WaitTimeTracker", "MisalignmentReport"]


@dataclass(frozen=True)
class MisalignmentReport:
    """Receiver-side misalignment measurement for one joint frame.

    Attributes
    ----------
    lead_offset_samples:
        Timing offset of the lead sender's symbols relative to the
        receiver's FFT window.
    cosender_offsets_samples:
        Timing offset of each co-sender, same reference.
    misalignments_samples:
        Per-co-sender misalignment relative to the lead sender — the value
        fed back to co-senders in the ACK.
    """

    lead_offset_samples: float
    cosender_offsets_samples: tuple[float, ...]
    misalignments_samples: tuple[float, ...]

    def worst_misalignment(self) -> float:
        """Largest absolute misalignment among the co-senders."""
        if not self.misalignments_samples:
            return 0.0
        return float(np.max(np.abs(self.misalignments_samples)))


def measure_misalignment(
    lead_channel: ChannelEstimate,
    cosender_channels: list[ChannelEstimate],
    params: OFDMParams = DEFAULT_PARAMS,
) -> MisalignmentReport:
    """Measure sender misalignment from per-sender channel estimates.

    Both channels must be estimated from the *same* receiver FFT-window
    placement (which they are, inside the joint frame), so the difference of
    their phase-slope offsets is exactly the relative misalignment of the
    senders, independent of where the receiver put its window.
    """
    lead_offset = estimate_detection_delay(lead_channel, params).delay_samples
    co_offsets = tuple(
        estimate_detection_delay(ch, params).delay_samples for ch in cosender_channels
    )
    misalignments = tuple(lead_offset - off for off in co_offsets)
    return MisalignmentReport(
        lead_offset_samples=float(lead_offset),
        cosender_offsets_samples=co_offsets,
        misalignments_samples=misalignments,
    )


@dataclass
class WaitTimeTracker:
    """Co-sender wait-time tracking loop driven by ACK feedback.

    Attributes
    ----------
    wait_time_samples:
        The current wait time (samples) relative to the global time
        reference; initialised from the probe-based estimate and then
        updated from ACK feedback.
    gain:
        Fraction of each reported misalignment applied as a correction.
        1.0 applies the full correction immediately; smaller values smooth
        over measurement noise.
    history:
        All misalignment reports applied so far (for diagnostics).
    """

    wait_time_samples: float
    gain: float = 0.5
    history: list[float] = field(default_factory=list)

    def update(self, reported_misalignment_samples: float) -> float:
        """Apply one ACK's misalignment feedback and return the new wait time.

        A positive reported misalignment means this co-sender's symbols
        arrived *later* than the lead sender's at the receiver, so the
        co-sender reduces its wait time by (a fraction of) that amount; a
        negative value means it arrived early and must wait longer.
        """
        if not np.isfinite(reported_misalignment_samples):
            return self.wait_time_samples
        self.history.append(float(reported_misalignment_samples))
        self.wait_time_samples -= self.gain * float(reported_misalignment_samples)
        return self.wait_time_samples

    def converged(self, tolerance_samples: float = 0.25, window: int = 3) -> bool:
        """True when the last ``window`` corrections are all within tolerance."""
        if len(self.history) < window:
            return False
        recent = np.abs(np.asarray(self.history[-window:]))
        return bool(np.all(recent <= tolerance_samples))
