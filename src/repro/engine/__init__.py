"""Shared lockstep engine: the lane protocol and its scheduler.

Every lockstep ensemble in the reproduction — packet ensembles, joint
frames, mesh/downlink transfers, traffic flows, batched experiment
trials — runs on this package: engines express their work as
:class:`~repro.engine.lane.Lane` subclasses and hand them to a
:class:`~repro.engine.scheduler.LockstepScheduler`, which owns chain
resolution (``after=`` activation), the wave loop, and the chunked
sharding / process-pool helpers (:func:`~repro.engine.scheduler.run_seed_chunks`,
:func:`~repro.engine.scheduler.run_trials`).  The conformance kit in
``tests/engine/conformance.py`` gives any registered lane class its
lockstep-vs-sequential bit-identity proof.
"""

from repro.engine.lane import Lane
from repro.engine.scheduler import (
    LockstepScheduler,
    chunk_bounds,
    resolve_chains,
    run_chunks,
    run_seed_chunks,
    run_trials,
)

__all__ = [
    "Lane",
    "LockstepScheduler",
    "chunk_bounds",
    "resolve_chains",
    "run_chunks",
    "run_seed_chunks",
    "run_trials",
]
