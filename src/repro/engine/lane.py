"""The lane protocol shared by every lockstep ensemble engine.

A *lane* is one independent unit of seeded simulation work — a mesh
transfer, a downlink stream, a joint-frame session, an experiment trial —
that a :class:`~repro.engine.scheduler.LockstepScheduler` advances next to
many others.  The engines that used to reimplement this contract privately
(:mod:`repro.experiments.batch`, :mod:`repro.core.ensemble`,
:mod:`repro.routing.ensemble`) now all express their work as subclasses of
:class:`Lane` and delegate scheduling, chain resolution and sharding to
the scheduler.

The contract every subclass must honour:

* **Generator ownership** — each lane owns ``rng`` and every one of its
  draws comes from it in exactly the order the lane's sequential
  simulation would make them.  Two lanes may share one generator only
  when *chained* (``after=``): the successor performs no draw until its
  predecessor has fully finished, so the shared stream is consumed in
  sequential order.  Classes whose lanes always run to completion in
  input order (so unchained sharing is naturally sequential) may opt out
  of chain enforcement with ``enforce_generator_chains = False``.
* **Lifecycle** — the scheduler drives each lane through
  ``prime -> setup -> advance* -> result``: :meth:`prime` performs any
  pre-setup priming draws (batched across root lanes via
  :meth:`prime_lanes`; called per lane at activation for chained lanes),
  :meth:`setup` builds execution state and runs the lane's opening phase,
  :meth:`advance` runs one lockstep round, :attr:`finished` reports
  completion, and :meth:`result` — which may still draw (e.g. a cleanup
  phase) — produces the lane's output.
* **Stacked classes** — classes that advance all live lanes as one
  stacked array operation set ``stacked = True`` and override
  :meth:`advance_lanes`; the scheduler then calls that once per wave (in
  ascending lane order) instead of looping :meth:`advance`, and
  processes finishes in ascending lane order (the stacked arrays define
  the wave order).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Lane"]


class Lane:
    """Base class of the lockstep lane protocol (see module docstring).

    Subclasses must set :attr:`rng` (and :attr:`after` when chained) —
    typically in ``__init__`` — and implement :meth:`setup`,
    :meth:`advance` (unless every lane completes during setup),
    :attr:`finished` and :meth:`result`.
    """

    #: True when :meth:`advance_lanes` advances the whole live group as one
    #: stacked operation; False when the scheduler loops :meth:`advance`
    #: per lane (with immediate finish processing between lanes).
    stacked: bool = False

    #: When False, the scheduler skips the shared-generator chaining check
    #: for ensembles made solely of such lanes (their execution is
    #: naturally sequential, so unchained sharing cannot reorder draws).
    enforce_generator_chains: bool = True

    #: The generator this lane owns; every draw of the lane comes from it.
    rng: np.random.Generator

    #: Lane this one is chained behind (None for a root lane).
    after: "Lane | None" = None

    @classmethod
    def prime_lanes(cls, lanes: list["Lane"]) -> None:
        """Prime the given *root* lanes before any of them runs setup.

        Engines override this to batch cross-lane priming compute (cache
        materialisation, stacked EESM passes, trajectory evolution) while
        keeping each lane's priming draws on its own generator in input
        order.  The default simply primes each lane in turn.
        """
        for lane in lanes:
            lane.prime()

    def prime(self) -> None:
        """Per-lane priming draws, in this lane's sequential stream position.

        Called by the default :meth:`prime_lanes` for root lanes and — the
        important case — at *activation* for chained lanes, i.e. right
        after the predecessor's final draw, exactly where the sequential
        code would prime.  Default: nothing to prime.
        """

    def setup(self) -> None:
        """Build execution state and run the lane's opening phase.

        May draw, and may complete the lane outright (run-to-completion
        lanes do all their work here); the scheduler checks
        :attr:`finished` immediately afterwards.  Default: nothing.
        """

    def advance(self) -> None:
        """Run one lockstep round of this lane (per-lane classes only)."""
        raise NotImplementedError

    @classmethod
    def advance_lanes(cls, lanes: list["Lane"]) -> None:
        """Advance every given live lane by one wave.

        Stacked classes (``stacked = True``) override this with one
        stacked array operation over the group; the default loops
        :meth:`advance`.
        """
        for lane in lanes:
            lane.advance()

    @property
    def finished(self) -> bool:
        """Whether the lane has completed all of its rounds."""
        raise NotImplementedError

    def result(self):
        """Produce the lane's output (may draw, e.g. a cleanup phase)."""
        return None

    def draw(self, n: int) -> np.ndarray:
        """The protocol's draw primitive: ``n`` uniforms from the lane's stream."""
        return self.rng.random(n)
