"""Lockstep scheduler and chunked sharding for lane ensembles.

This module owns the scheduling logic the three lockstep engines
(:mod:`repro.experiments.batch`, :mod:`repro.core.ensemble`,
:mod:`repro.routing.ensemble`) used to carry as private copies:

* :func:`resolve_chains` — validation of ``after=`` chaining and
  generator sharing for one ensemble call;
* :class:`LockstepScheduler` — the wave loop that activates root lanes
  (with class-batched priming), advances live lanes (per lane or as
  stacked groups), and starts chained successors the moment their
  predecessor finishes;
* :func:`run_seed_chunks` / :func:`run_chunks` / :func:`run_trials` —
  the chunked sharding and process-pool helpers that split independent
  trials or items across chunks and jobs without changing any output.

Determinism contract: the scheduler performs no draws of its own and
fixes only *order* — root lanes prime and set up in input order, a lane
that stays live re-enters the next wave in schedule order, per-lane
classes interleave finish processing (which may draw) with the wave
exactly where the lane finishes, stacked classes advance and finish in
ascending lane order, and a chained lane activates (prime, setup, first
draws) immediately after its predecessor's final draw.  Under those
rules a lockstep run is bit-identical to running each lane's sequential
simulation to completion, which ``tests/engine`` asserts for every
registered lane class.
"""

from __future__ import annotations

import numpy as np

from repro.engine.lane import Lane

__all__ = [
    "resolve_chains",
    "LockstepScheduler",
    "chunk_bounds",
    "run_chunks",
    "run_seed_chunks",
    "run_trials",
]


def resolve_chains(
    lanes: list, enforce_generator_chains: bool = True
) -> tuple[list[int | None], list[list[int]]]:
    """Validate lane chaining and generator sharing for one ensemble call.

    Returns ``(after, successors)`` where ``after[i]`` is the index of the
    lane that lane ``i`` waits for (or ``None`` for a root lane) and
    ``successors[j]`` lists the lanes to start when lane ``j`` finishes.
    Lanes that share a generator must form one chain in input order —
    anything else would let the lockstep schedule interleave draws from a
    single stream and silently diverge from the sequential path.  Engines
    whose lanes run to completion in input order may pass
    ``enforce_generator_chains=False`` to skip the sharing check (their
    execution order makes unchained sharing naturally sequential).
    """
    index_of = {id(lane): i for i, lane in enumerate(lanes)}
    after: list[int | None] = []
    successors: list[list[int]] = [[] for _ in lanes]
    for i, lane in enumerate(lanes):
        if lane.after is None:
            after.append(None)
            continue
        predecessor = index_of.get(id(lane.after))
        if predecessor is None:
            raise ValueError("lane.after must reference another lane of the same ensemble call")
        after.append(predecessor)
        successors[predecessor].append(i)
    if enforce_generator_chains:
        by_rng: dict[int, list[int]] = {}
        for i, lane in enumerate(lanes):
            by_rng.setdefault(id(lane.rng), []).append(i)
        for rows in by_rng.values():
            for previous, current in zip(rows, rows[1:]):
                if after[current] != previous:
                    raise ValueError(
                        "lockstep lanes that share a generator must be chained in "
                        "input order (each lane's `after` pointing at the previous "
                        "lane on that generator); unrelated lanes need distinct "
                        "generators"
                    )
    return after, successors


class LockstepScheduler:
    """Advance a heterogeneous set of lanes in lockstep waves.

    One :meth:`run` call resolves the ensemble's chains, batch-primes the
    root lanes per class, then loops waves until every lane has finished,
    returning one result per lane in input order.  See the module
    docstring for the ordering rules that make a lockstep run
    bit-identical to the per-lane sequential simulations.
    """

    def run(self, lanes: list[Lane]) -> list:
        """Run every lane to completion; results come back in input order."""
        if not lanes:
            return []
        enforce = all(lane.enforce_generator_chains for lane in lanes)
        after, successors = resolve_chains(lanes, enforce_generator_chains=enforce)
        results: list = [None] * len(lanes)
        live: list[int] = []

        def finish(index: int) -> None:
            """Record the lane's result (may draw) and start its successors."""
            results[index] = lanes[index].result()
            for successor in successors[index]:
                start(successor)

        def start(index: int) -> None:
            """Activate one lane: chained priming, setup, immediate-finish check."""
            lane = lanes[index]
            if after[index] is not None:
                lane.prime()
            lane.setup()
            if lane.finished:
                finish(index)
            else:
                live.append(index)

        # Root lanes prime first — batched per class, groups in
        # first-appearance order — then set up in input order; a root that
        # completes during setup finishes (and starts its successors)
        # before the next root sets up, as the sequential code would.
        roots = [i for i in range(len(lanes)) if after[i] is None]
        prime_groups: dict[type, list[Lane]] = {}
        for i in roots:
            prime_groups.setdefault(type(lanes[i]), []).append(lanes[i])
        for cls, group in prime_groups.items():
            cls.prime_lanes(group)
        for i in roots:
            start(i)

        while live:
            wave = list(live)
            live.clear()
            order: list[type] = []
            members: dict[type, list[int]] = {}
            for index in wave:
                cls = type(lanes[index])
                if cls not in members:
                    members[cls] = []
                    order.append(cls)
                members[cls].append(index)
            for cls in order:
                if cls.stacked:
                    # Stacked classes advance the whole group at once and
                    # finish in ascending lane order — the order their
                    # internal stacked arrays impose on the wave.
                    group = sorted(members[cls])
                    cls.advance_lanes([lanes[i] for i in group])
                    for index in group:
                        if lanes[index].finished:
                            finish(index)
                        else:
                            live.append(index)
                else:
                    # Per-lane classes interleave finish processing with
                    # the wave: a lane that completes runs its (possibly
                    # drawing) cleanup and starts its successors before
                    # the next lane of the wave advances.
                    for index in members[cls]:
                        lanes[index].advance()
                        if lanes[index].finished:
                            finish(index)
                        else:
                            live.append(index)
        return results


# ----------------------------------------------------------------------
# Chunked sharding and process-pool jobs
# ----------------------------------------------------------------------
def chunk_bounds(n_items: int, jobs: int, chunk_size: int | None) -> np.ndarray:
    """Shard boundaries over ``n_items`` work items.

    With ``chunk_size=None`` the items split into ``min(jobs, n_items)``
    near-equal shards (the widest — fastest — lockstep ensembles); an
    explicit ``chunk_size`` caps every shard's width instead, with the
    final shard absorbing the remainder.  Either way the concatenation of
    the shards is exactly the item list, so sharding can never change a
    chunked computation's output.
    """
    if chunk_size is None:
        return np.linspace(0, n_items, min(jobs, n_items) + 1).astype(int)
    bounds = np.arange(0, n_items + chunk_size, chunk_size)
    bounds[-1] = n_items
    return bounds


def run_chunks(chunk_fn, items: list, jobs: int = 1, *args, chunk_size: int | None = None) -> list:
    """Run ``chunk_fn(chunk, *args)`` over shards of ``items``, in order.

    The generic sharding core under :func:`run_seed_chunks` and the
    traffic layer's flow sharding: ``chunk_fn`` must return one result per
    item, in order, and must be picklable for ``jobs > 1`` (items are
    independent, so sharding cannot change any output); chunked results
    are concatenated back into item order.  ``chunk_size`` caps how many
    items one call sees (None = one shard per job); an empty item list
    returns ``[]`` without invoking ``chunk_fn`` — a lockstep chunk built
    over zero lanes could still prime caches or draw from shared streams,
    which would make results depend on whether an empty shard happened to
    run.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if not items:
        return []
    n_items = len(items)
    if chunk_size is None and (jobs <= 1 or n_items <= 1):
        return list(chunk_fn(items, *args))
    bounds = chunk_bounds(n_items, jobs, chunk_size)
    chunks = [items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
    if jobs <= 1 or len(chunks) == 1:
        return [result for chunk in chunks for result in chunk_fn(chunk, *args)]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        parts = pool.map(chunk_fn, chunks, *([value] * len(chunks) for value in args))
        return [result for part in parts for result in part]


def run_seed_chunks(
    chunk_fn, n_trials: int, seed: int, jobs: int = 1, *args, chunk_size: int | None = None
) -> list:
    """Run ``chunk_fn(children, *args)`` over sharded per-trial seeds.

    The lockstep-ensemble counterpart of :func:`run_trials`: trials are
    seeded from ``np.random.SeedSequence(seed).spawn(n_trials)`` exactly as
    there, but the callee receives whole *chunks* of children so it can
    advance them as one lockstep ensemble.  ``chunk_fn`` must return one
    result per child, in order, and must be picklable for ``jobs > 1``
    (trials are independent, so sharding cannot change any output);
    chunked results are concatenated back into trial order.

    ``chunk_size`` caps how many trials one lockstep call sees.  By default
    the shard width is ``n_trials / jobs`` — the widest (fastest) ensembles
    — but callers driving very large sweeps (hundreds to thousands of
    lanes) can bound per-chunk memory by passing an explicit cap; the
    chunks then run back-to-back in process (``jobs == 1``) or across the
    pool, with identical results for every setting.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    # Empty-ensemble guard: never hand ``chunk_fn`` an empty child set, and
    # never spawn from the seed sequence (callers sharing one SeedSequence
    # across ensembles rely on zero-trial calls leaving it untouched).
    if n_trials == 0:
        return []
    children = np.random.SeedSequence(seed).spawn(n_trials)
    return run_chunks(chunk_fn, children, jobs, *args, chunk_size=chunk_size)


def _run_seeded_trial(job: tuple) -> object:
    """Process-pool entry point: rebuild the trial generator and run one trial."""
    trial_fn, index, seed_seq = job
    return trial_fn(index, np.random.default_rng(seed_seq))


def run_trials(trial_fn, n_trials: int, seed: int | np.random.SeedSequence, jobs: int = 1) -> list:
    """Collect the results of ``n_trials`` independent experiment trials.

    Some experiments (e.g. the last-hop placements of Fig. 17) contain a
    feedback loop — rate adaptation reacting to per-packet outcomes — that
    cannot be expressed as one stacked array operation.  They still route
    through the shared engine via this helper so every experiment has the
    same trial entry point.

    ``trial_fn`` is called as ``trial_fn(trial_index, rng)`` where ``rng``
    is a generator spawned from ``seed`` for that trial alone
    (``np.random.SeedSequence(seed).spawn(n_trials)``).  Because no state
    is shared between trials, seeded results are *independent of execution
    order* — shuffling, resuming or parallelising the trials produces
    identical outputs — and ``jobs > 1`` runs them across a process pool
    (``trial_fn`` must be picklable, i.e. a module-level function or
    ``functools.partial`` over one).  Results are returned in trial order
    either way.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    # Empty-ensemble guard (mirrors run_packet_ensemble's zero-packet
    # guard): a zero-trial call invokes nothing and consumes no entropy,
    # so experiments whose lane sets come up empty leave every stream
    # exactly where the sequential path would.
    if n_trials == 0:
        return []
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = root.spawn(n_trials)
    if jobs <= 1 or n_trials <= 1:
        return [trial_fn(i, np.random.default_rng(child)) for i, child in enumerate(children)]
    from concurrent.futures import ProcessPoolExecutor

    job_list = [(trial_fn, i, child) for i, child in enumerate(children)]
    with ProcessPoolExecutor(max_workers=min(jobs, n_trials)) as pool:
        return list(pool.map(_run_seeded_trial, job_list))
