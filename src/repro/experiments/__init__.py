"""Experiment harness: one module per figure/table of the paper's evaluation.

===================  =============================================================
module               reproduces
===================  =============================================================
fig12_sync_error     Fig. 12 — 95th percentile synchronization error vs SNR
fig13_cp_reduction   Fig. 13 — joint-transmission SNR vs cyclic prefix
fig14_delay_spread   Fig. 14 — time-domain channel delay spread
fig15_power_gains    Fig. 15 — average SNR gains per SNR regime
fig16_frequency_diversity  Fig. 16 — per-subcarrier SNR profiles
fig17_lasthop        Fig. 17 — last-hop throughput CDF
fig18_opportunistic  Fig. 18 — opportunistic routing throughput CDFs
overhead             §4.4 — synchronization overhead vs sender count
ablation_combining   §6 — naive combining vs Alamouti (design-choice ablation)
ablation_slope       §4.2 — windowed vs whole-band phase-slope estimation
===================  =============================================================
"""

from repro.experiments.common import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
