"""Experiment harness: declarative, registered reproductions of the paper's evaluation.

Every figure/table of the evaluation is a registered experiment: a typed,
frozen ``Config`` dataclass, an implementation function, and ``smoke`` /
``quick`` / ``full`` presets, bound together by an
:class:`~repro.experiments.registry.ExperimentSpec` (see
:mod:`repro.experiments.registry`).  ``EXPERIMENTS.md`` at the repository
root is generated from this registry.

===================  =============================================================
experiment           reproduces
===================  =============================================================
fig12                Fig. 12 — 95th percentile synchronization error vs SNR
fig13                Fig. 13 — joint-transmission SNR vs cyclic prefix
fig14                Fig. 14 — time-domain channel delay spread
fig15                Fig. 15 — average SNR gains per SNR regime
fig16                Fig. 16 — per-subcarrier SNR profiles
fig17                Fig. 17 — last-hop throughput CDF
fig18                Fig. 18 — opportunistic routing throughput CDFs
fig19_traffic_load   §8.4 ext. — flow-level FCT and saturation vs offered load
overhead             §4.4 — synchronization overhead vs sender count
ablation_combining   §6 — naive combining vs Alamouti (design-choice ablation)
ablation_slope       §4.2 — windowed vs whole-band phase-slope estimation
===================  =============================================================

Command line
------------
The package is executable::

    python -m repro.experiments list                         # registry table
    python -m repro.experiments run --preset quick --jobs 4  # everything, in parallel
    python -m repro.experiments run fig17 --preset full --set n_placements=60
    python -m repro.experiments run --tag routing --preset smoke
    python -m repro.experiments sweep fig14 --sweep n_realizations=100,300,1000
    python -m repro.experiments report results/fig17.json    # re-print a saved run
    python -m repro.experiments report --sweep results/grid  # tidy per-cell table
    python -m repro.experiments docs                         # regenerate EXPERIMENTS.md

``run`` and ``sweep`` write one JSON artifact per run under ``results/``
(``--output-dir`` to change, ``--no-save`` to disable).  Artifacts embed
the exact config, the seed, and library/git provenance, and round-trip
through :meth:`ExperimentResult.load` — ``report`` re-prints them without
re-simulating.

``sweep`` additionally runs under the fault-tolerant sweep engine
(:mod:`repro.experiments.supervisor`): grid cells execute on supervised
worker processes with per-cell ``--timeout`` and ``--retries`` (with
exponential backoff), completed cells land in a content-addressed
artifact cache (:mod:`repro.experiments.cache`) beside an append-only
JSONL run manifest, and an interrupted or partially failed sweep resumes
with ``sweep --resume DIR`` — completed cells become cache hits and the
remainder re-executes, converging to bit-identical artifacts.

Python API
----------
::

    from repro.experiments import registry

    spec = registry.get("fig17")
    result = spec.run(spec.make_config("quick", {"n_placements": 30}))
    print(result.report())
    result.save("results/fig17.json")

    from repro.experiments.runner import run_all
    results = run_all(["fig14", "fig17"], preset="smoke", jobs=2)

Each experiment module also keeps its legacy entry point — e.g.
``fig17_lasthop.run(n_placements=30)`` — as a thin shim over
``SPEC.run(Config(...))``, so existing callers see bit-identical seeded
results.
"""

from repro.experiments import registry
from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.registry import ExperimentSpec, experiment

# Populate the registry eagerly so `from repro.experiments import registry`
# (and the CLI/runner/benchmarks built on it) always see every experiment.
registry.load_all()

__all__ = ["ExperimentResult", "ExperimentSpec", "experiment", "format_table", "registry"]
