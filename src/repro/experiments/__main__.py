"""``python -m repro.experiments`` — see :mod:`repro.experiments.cli`."""

import sys

from repro.experiments.cli import main

sys.exit(main())
