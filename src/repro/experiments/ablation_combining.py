"""Ablation: Alamouti smart combining vs naive identical transmission (§6).

If two synchronized senders naively transmit the same symbols, their
signals combine with a random relative phase per subcarrier: some
subcarriers add constructively, others cancel almost completely, and the
deep fades defeat the convolutional code.  The Smart Combiner's Alamouti
coding guarantees an effective gain of ``|h1|^2 + |h2|^2`` per subcarrier
regardless of phase.

This ablation draws many random channel pairs and compares, for each
scheme, the distribution of the post-combining per-subcarrier gain and the
fraction of subcarriers that end up in a deep fade.

The channel-pair ensemble is fully batched: one generator call draws every
tap of every realisation (in the same stream order as the per-realisation
loop it replaced, so seeded results are unchanged) and the frequency
responses and combining gains are stacked array operations
(:func:`repro.experiments.batch.draw_frequency_response_ensemble`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combining.stbc import SmartCombiner
from repro.experiments.batch import draw_frequency_response_ensemble
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "combining_gain_samples"]


@dataclass(frozen=True)
class Config:
    """Parameters of the §6 combining ablation."""

    n_realizations: int = 300
    deep_fade_threshold_db: float = -10.0
    seed: int = 6
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.n_realizations < 1:
            raise ValueError("n_realizations must be >= 1")
        if self.deep_fade_threshold_db >= 0.0:
            raise ValueError("deep_fade_threshold_db must be negative")


def combining_gain_samples(
    scheme: str,
    n_realizations: int = 300,
    seed: int = 6,
    params: OFDMParams = DEFAULT_PARAMS,
) -> np.ndarray:
    """Per-subcarrier post-combining power gains for a combining scheme.

    For the naive scheme the effective channel is ``|h1 + h2|^2`` (the
    signals superpose directly); for the Alamouti-family schemes it is
    ``|h1|^2 + |h2|^2``.
    """
    rng = np.random.default_rng(seed)
    combiner = SmartCombiner(scheme if scheme != "naive" else "replicated_alamouti")
    responses = draw_frequency_response_ensemble(n_realizations, 2, rng, params=params)
    h1, h2 = responses[:, 0, :], responses[:, 1, :]
    if scheme == "naive":
        gains = np.abs(h1 + h2) ** 2
    else:
        # combine_branch_channels broadcasts over the leading ensemble axis,
        # so the whole batch is one effective_gain call.
        gains = combiner.effective_gain([h1, h2])
    return gains.reshape(-1)


@experiment(
    name="ablation_combining",
    description="Post-combining subcarrier gain: naive identical transmission vs Alamouti",
    config=Config,
    presets={
        "smoke": {"n_realizations": 40},
        "quick": {"n_realizations": 150},
        "full": {"n_realizations": 1000},
    },
    tags=("ablation", "phy"),
    batched=True,
    summary_keys={
        "naive_deep_fade_fraction": "fraction of subcarriers in a deep fade under naive identical transmission",
        "alamouti_deep_fade_fraction": "fraction of subcarriers in a deep fade with Alamouti coding",
        "p5_gain_improvement": "5th-percentile combining-gain ratio, Alamouti over naive",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Compare naive and Alamouti combining across random channel pairs."""
    naive = combining_gain_samples("naive", config.n_realizations, config.seed, config.params)
    alamouti = combining_gain_samples(
        "replicated_alamouti", config.n_realizations, config.seed, config.params
    )
    threshold = 10.0 ** (config.deep_fade_threshold_db / 10.0)

    def stats(gains: np.ndarray) -> tuple[float, float, float]:
        return (
            float(np.mean(gains)),
            float(np.percentile(gains, 5)),
            float(np.mean(gains < threshold)),
        )

    naive_mean, naive_p5, naive_fade = stats(naive)
    ala_mean, ala_p5, ala_fade = stats(alamouti)
    return ExperimentResult(
        name="ablation_combining",
        description="Post-combining subcarrier gain: naive identical transmission vs Alamouti",
        series={
            "scheme": ["naive", "alamouti"],
            "mean_gain": [naive_mean, ala_mean],
            "p5_gain": [naive_p5, ala_p5],
            "deep_fade_fraction": [naive_fade, ala_fade],
        },
        summary={
            "naive_deep_fade_fraction": naive_fade,
            "alamouti_deep_fade_fraction": ala_fade,
            "p5_gain_improvement": ala_p5 / max(naive_p5, 1e-9),
        },
        paper_reference={
            "claim": "naive identical transmission produces destructive fades; Alamouti coding eliminates them (§6)",
            "section": "§6",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
