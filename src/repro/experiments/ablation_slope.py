"""Ablation: windowed vs whole-band phase-slope delay estimation (§4.2a).

SourceSync estimates the packet-detection delay from the slope of the
channel phase across subcarriers, computed over windows narrower than the
channel's coherence bandwidth (3 MHz) and averaged.  A naive whole-band fit
unwraps the phase across deep fades and frequency-selective phase jumps,
which makes it much less reliable on multipath channels.  This ablation
quantifies that difference by injecting known delays and comparing the
error of the two estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.multipath import MultipathChannel, MultipathProfile
from repro.core.sync.detection_delay import (
    phase_slope_full_band,
    phase_slope_windowed,
    slope_to_delay_samples,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.equalizer import estimate_channel_ltf
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import long_training_field

__all__ = ["Config", "SPEC", "run", "estimation_errors"]


@dataclass(frozen=True)
class Config:
    """Parameters of the §4.2 slope-estimator ablation."""

    delays_samples: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    snr_db: float = 15.0
    n_trials: int = 15
    seed: int = 42
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.delays_samples:
            raise ValueError("delays_samples must be non-empty")
        if any(d < 0 for d in self.delays_samples):
            raise ValueError("injected delays must be >= 0 samples")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")


def estimation_errors(
    delays_samples: tuple[float, ...],
    snr_db: float = 15.0,
    n_trials: int = 20,
    profile: MultipathProfile | None = None,
    seed: int = 42,
    params: OFDMParams = DEFAULT_PARAMS,
) -> tuple[np.ndarray, np.ndarray]:
    """Absolute estimation errors (samples) of the windowed and full-band estimators.

    Each trial applies a random multipath channel and a known integer
    delay to the long training field, adds noise, estimates the channel and
    converts both slope estimates back to delays.  Because the channel has
    its own (unknown) group delay, the error is measured against the
    difference between two delayed copies of the *same* channel — exactly
    the relative quantity SourceSync relies on.
    """
    rng = np.random.default_rng(seed)
    profile = profile if profile is not None else MultipathProfile(n_taps=6, rms_delay_spread_samples=2.0)
    ltf = long_training_field(params)
    amplitude = np.sqrt(10.0 ** (snr_db / 10.0))
    windowed_errors: list[float] = []
    fullband_errors: list[float] = []

    def channel_estimate(delay: int, channel: MultipathChannel) -> np.ndarray:
        shaped = channel.apply(ltf * amplitude)
        padded = np.concatenate([np.zeros(delay, dtype=np.complex128), shaped])
        padded = padded + awgn(padded.size, 1.0, rng)
        reps = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            begin = 2 * params.cp_samples + rep * params.n_fft
            reps[rep] = np.fft.fft(padded[begin : begin + params.n_fft]) / np.sqrt(params.n_fft)
        return estimate_channel_ltf(reps, params)

    def windowed_offset(channel_est: np.ndarray) -> float:
        slope, _ = phase_slope_windowed(channel_est, params)
        return slope_to_delay_samples(slope, params)

    def fullband_offset(channel_est: np.ndarray) -> float:
        return slope_to_delay_samples(phase_slope_full_band(channel_est, params), params)

    for _ in range(n_trials):
        channel = MultipathChannel.random(profile, rng).normalized()
        reference = channel_estimate(0, channel)
        for delay in delays_samples:
            # Delaying the signal by `delay` makes the (fixed) FFT window
            # effectively `delay` samples early, so the implied offset of the
            # shifted estimate minus the reference estimate should be -delay.
            shifted = channel_estimate(int(delay), channel)
            measured_windowed = windowed_offset(shifted) - windowed_offset(reference)
            measured_fullband = fullband_offset(shifted) - fullband_offset(reference)
            windowed_errors.append(abs(measured_windowed + float(delay)))
            fullband_errors.append(abs(measured_fullband + float(delay)))
    return np.asarray(windowed_errors), np.asarray(fullband_errors)


@experiment(
    name="ablation_slope",
    description="Detection-delay estimation error: 3 MHz windowed slope vs whole-band fit",
    config=Config,
    presets={
        "smoke": {"delays_samples": (2.0,), "n_trials": 2},
        "quick": {"n_trials": 8},
        "full": {"n_trials": 40},
    },
    tags=("ablation", "sync"),
    summary_keys={
        "windowed_median_error_ns": "median detection-delay estimation error (ns) of the 3 MHz windowed slope fit",
        "full_band_median_error_ns": "median estimation error (ns) of the whole-band slope fit",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Compare windowed and whole-band slope estimators on multipath channels."""
    params = config.params
    windowed, fullband = estimation_errors(
        config.delays_samples, config.snr_db, config.n_trials, seed=config.seed, params=params
    )
    return ExperimentResult(
        name="ablation_slope",
        description="Detection-delay estimation error: 3 MHz windowed slope vs whole-band fit",
        series={
            "estimator": ["windowed_3mhz", "full_band"],
            "median_error_samples": [float(np.median(windowed)), float(np.median(fullband))],
            "p90_error_samples": [
                float(np.percentile(windowed, 90)),
                float(np.percentile(fullband, 90)),
            ],
        },
        summary={
            "windowed_median_error_ns": float(np.median(windowed)) * params.sample_period_ns,
            "full_band_median_error_ns": float(np.median(fullband)) * params.sample_period_ns,
        },
        paper_reference={
            "claim": "slopes are computed over 3 MHz windows (below the coherence bandwidth) and averaged (§4.2)",
            "section": "§4.2",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
