"""Ablation: windowed vs whole-band phase-slope delay estimation (§4.2a).

SourceSync estimates the packet-detection delay from the slope of the
channel phase across subcarriers, computed over windows narrower than the
channel's coherence bandwidth (3 MHz) and averaged.  A naive whole-band fit
unwraps the phase across deep fades and frequency-selective phase jumps,
which makes it much less reliable on multipath channels.  This ablation
quantifies that difference by injecting known delays and comparing the
error of the two estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.multipath import MultipathChannel, MultipathProfile
from repro.core.sync.detection_delay import (
    phase_slope_full_band,
    phase_slope_windowed,
    slope_to_delay_samples,
)
from repro.engine import Lane, LockstepScheduler
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.equalizer import estimate_channel_ltf
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import long_training_field

__all__ = ["Config", "SPEC", "run", "estimation_errors"]


@dataclass(frozen=True)
class Config:
    """Parameters of the §4.2 slope-estimator ablation.

    ``batched`` runs the trials as chained engine lanes on the single
    experiment generator and batches every estimate's FFT into one stacked
    transform (bit-identical to the sequential per-trial loop).
    """

    delays_samples: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    snr_db: float = 15.0
    n_trials: int = 15
    seed: int = 42
    params: OFDMParams = DEFAULT_PARAMS
    batched: bool = True

    def __post_init__(self) -> None:
        if not self.delays_samples:
            raise ValueError("delays_samples must be non-empty")
        if any(d < 0 for d in self.delays_samples):
            raise ValueError("injected delays must be >= 0 samples")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")


def _estimate_windows(
    delay: int,
    channel: MultipathChannel,
    ltf_scaled: np.ndarray,
    rng: np.random.Generator,
    params: OFDMParams,
) -> np.ndarray:
    """One estimate's noisy time-domain LTF windows (the estimate's only draws).

    Returns the two ``n_fft``-sample repetition windows *before* the FFT so
    the batched path can stack them into one transform; the noise draw is
    the single generator touch of the estimate.
    """
    shaped = channel.apply(ltf_scaled)
    padded = np.concatenate([np.zeros(delay, dtype=np.complex128), shaped])
    padded = padded + awgn(padded.size, 1.0, rng)
    reps = np.empty((2, params.n_fft), dtype=np.complex128)
    for rep in range(2):
        begin = 2 * params.cp_samples + rep * params.n_fft
        reps[rep] = padded[begin : begin + params.n_fft]
    return reps


class _SlopeTrialLane(Lane):
    """One trial's draws for the batched slope ablation.

    All trials share the experiment's single generator, so the lanes are
    chained in input order (``after=`` the previous trial) — the only form
    of generator sharing the engine allows.  Each lane draws its channel
    and every estimate's noise during (chained) setup, in exactly the
    sequential loop's order, and returns the stacked time-domain windows;
    the FFTs run once over the whole ensemble after the scheduler.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        delays_samples: tuple[float, ...],
        profile: MultipathProfile,
        ltf_scaled: np.ndarray,
        params: OFDMParams,
        after: "_SlopeTrialLane | None" = None,
    ) -> None:
        self.rng = rng
        self.after = after
        self.delays_samples = delays_samples
        self.profile = profile
        self.ltf_scaled = ltf_scaled
        self.params = params
        self.windows: np.ndarray | None = None

    def setup(self) -> None:
        """Draw the trial's channel and every estimate's noisy windows."""
        channel = MultipathChannel.random(self.profile, self.rng).normalized()
        windows = [_estimate_windows(0, channel, self.ltf_scaled, self.rng, self.params)]
        for delay in self.delays_samples:
            windows.append(
                _estimate_windows(int(delay), channel, self.ltf_scaled, self.rng, self.params)
            )
        self.windows = np.stack(windows)

    @property
    def finished(self) -> bool:
        """Trials complete during (chained) setup."""
        return self.windows is not None

    def result(self) -> np.ndarray:
        """The trial's stacked ``(1 + n_delays, 2, n_fft)`` window array."""
        return self.windows


def estimation_errors(
    delays_samples: tuple[float, ...],
    snr_db: float = 15.0,
    n_trials: int = 20,
    profile: MultipathProfile | None = None,
    seed: int = 42,
    params: OFDMParams = DEFAULT_PARAMS,
    batched: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Absolute estimation errors (samples) of the windowed and full-band estimators.

    Each trial applies a random multipath channel and a known integer
    delay to the long training field, adds noise, estimates the channel and
    converts both slope estimates back to delays.  Because the channel has
    its own (unknown) group delay, the error is measured against the
    difference between two delayed copies of the *same* channel — exactly
    the relative quantity SourceSync relies on.

    ``batched`` routes the trials through the shared engine as chained
    lanes and computes every estimate's FFT in one stacked transform; the
    draw order and results are bit-identical to the sequential loop.
    """
    rng = np.random.default_rng(seed)
    profile = profile if profile is not None else MultipathProfile(n_taps=6, rms_delay_spread_samples=2.0)
    ltf = long_training_field(params)
    amplitude = np.sqrt(10.0 ** (snr_db / 10.0))
    windowed_errors: list[float] = []
    fullband_errors: list[float] = []

    def channel_estimate(delay: int, channel: MultipathChannel) -> np.ndarray:
        reps = _estimate_windows(delay, channel, ltf * amplitude, rng, params)
        return estimate_channel_ltf(
            np.fft.fft(reps, axis=-1) / np.sqrt(params.n_fft), params
        )

    def windowed_offset(channel_est: np.ndarray) -> float:
        slope, _ = phase_slope_windowed(channel_est, params)
        return slope_to_delay_samples(slope, params)

    def fullband_offset(channel_est: np.ndarray) -> float:
        return slope_to_delay_samples(phase_slope_full_band(channel_est, params), params)

    def record_errors(reference: np.ndarray, shifted_list: list[np.ndarray]) -> None:
        """Append one trial's per-delay errors from its channel estimates."""
        for delay, shifted in zip(delays_samples, shifted_list):
            # Delaying the signal by `delay` makes the (fixed) FFT window
            # effectively `delay` samples early, so the implied offset of the
            # shifted estimate minus the reference estimate should be -delay.
            measured_windowed = windowed_offset(shifted) - windowed_offset(reference)
            measured_fullband = fullband_offset(shifted) - fullband_offset(reference)
            windowed_errors.append(abs(measured_windowed + float(delay)))
            fullband_errors.append(abs(measured_fullband + float(delay)))

    if batched:
        lanes: list[_SlopeTrialLane] = []
        previous: _SlopeTrialLane | None = None
        for _ in range(n_trials):
            lane = _SlopeTrialLane(
                rng, delays_samples, profile, ltf * amplitude, params, after=previous
            )
            lanes.append(lane)
            previous = lane
        all_windows = LockstepScheduler().run(lanes)
        if all_windows:
            # One stacked FFT over every window of every estimate of every
            # trial; rows are bit-identical to the sequential 1-D transforms.
            stacked = np.concatenate(all_windows, axis=0)
            spectra = np.fft.fft(stacked, axis=-1) / np.sqrt(params.n_fft)
            estimates = [estimate_channel_ltf(spectra[k], params) for k in range(len(spectra))]
            n_estimates = 1 + len(delays_samples)
            for trial in range(n_trials):
                base = trial * n_estimates
                record_errors(estimates[base], estimates[base + 1 : base + n_estimates])
    else:
        for _ in range(n_trials):
            channel = MultipathChannel.random(profile, rng).normalized()
            reference = channel_estimate(0, channel)
            shifted_list = [channel_estimate(int(delay), channel) for delay in delays_samples]
            record_errors(reference, shifted_list)
    return np.asarray(windowed_errors), np.asarray(fullband_errors)


@experiment(
    name="ablation_slope",
    description="Detection-delay estimation error: 3 MHz windowed slope vs whole-band fit",
    config=Config,
    presets={
        "smoke": {"delays_samples": (2.0,), "n_trials": 2},
        "quick": {"n_trials": 8},
        "full": {"n_trials": 40},
    },
    tags=("ablation", "sync"),
    batched=True,
    summary_keys={
        "windowed_median_error_ns": "median detection-delay estimation error (ns) of the 3 MHz windowed slope fit",
        "full_band_median_error_ns": "median estimation error (ns) of the whole-band slope fit",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Compare windowed and whole-band slope estimators on multipath channels."""
    params = config.params
    windowed, fullband = estimation_errors(
        config.delays_samples, config.snr_db, config.n_trials,
        seed=config.seed, params=params, batched=config.batched,
    )
    return ExperimentResult(
        name="ablation_slope",
        description="Detection-delay estimation error: 3 MHz windowed slope vs whole-band fit",
        series={
            "estimator": ["windowed_3mhz", "full_band"],
            "median_error_samples": [float(np.median(windowed)), float(np.median(fullband))],
            "p90_error_samples": [
                float(np.percentile(windowed, 90)),
                float(np.percentile(fullband, 90)),
            ],
        },
        summary={
            "windowed_median_error_ns": float(np.median(windowed)) * params.sample_period_ns,
            "full_band_median_error_ns": float(np.median(fullband)) * params.sample_period_ns,
        },
        paper_reference={
            "claim": "slopes are computed over 3 MHz windows (below the coherence bandwidth) and averaged (§4.2)",
            "section": "§4.2",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
