"""Sweep aggregation: join a sweep directory into one tidy per-figure table.

A finished (or partially finished) ``sweep`` output directory holds the
grid definition in its run manifest and one cached artifact per completed
cell.  :func:`aggregate_sweep` joins the two into a *tidy* table — one row
per grid cell, one column per grid axis plus one per summary scalar — the
shape a plotting layer or a dataframe consumes directly, without
re-simulating anything:

>>> table = aggregate_sweep("results/fig19_grid")   # doctest: +SKIP
>>> table["columns"]["load"], table["columns"]["saturation_load_sourcesync"]

``python -m repro.experiments report --sweep DIR`` prints the table (and
``--out FILE`` saves it as JSON).  Cells not yet completed — pending,
permanently failed, or with a quarantined cache entry — keep their row
with a non-``completed`` status and empty summary columns, so a partial
grid aggregates cleanly and ``sweep --resume`` can fill in the gaps
later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.experiments import registry
from repro.experiments.cache import CACHE_DIR_NAME, ArtifactCache
from repro.experiments.common import _encode_value, atomic_write_text, format_table
from repro.experiments.runner import _expand_grid, sweep_definition_from_manifest
from repro.experiments.supervisor import RunManifest

__all__ = ["aggregate_sweep", "render_aggregate", "save_aggregate"]


def aggregate_sweep(run_dir: "str | Path") -> dict[str, Any]:
    """Tidy per-cell table of a sweep directory's cached artifacts.

    Reconstructs the grid from the manifest header (exactly as
    ``sweep --resume`` does), loads each completed/cached cell's artifact
    from the content-addressed cache, and returns::

        {
          "experiment": name, "preset": preset, "n_cells": N,
          "grid_keys": [...], "summary_keys": [...],
          "columns": {"cell": [...], <grid key>: [...], "status": [...],
                       <summary key>: [...]},
        }

    Columns are equal-length (one entry per grid cell, in grid order);
    summary values of unfinished cells are ``None``.  A journalled-complete
    cell whose cache entry no longer loads is reported with status
    ``"missing"`` rather than trusted.
    """
    run_dir = Path(run_dir)
    manifest = RunManifest.in_dir(run_dir)
    if not manifest.exists():
        raise ValueError(
            f"{run_dir} has no {RunManifest.FILENAME}; was this directory "
            "written by `python -m repro.experiments sweep`?"
        )
    name, grid, preset, fixed = sweep_definition_from_manifest(manifest)
    spec = registry.get(name)
    combos = _expand_grid(spec, grid, preset, fixed)
    cells = manifest.cell_records()
    cache = ArtifactCache(run_dir / CACHE_DIR_NAME)

    grid_keys = list(grid)
    summary_keys: list[str] = []
    statuses: list[str] = []
    summaries: list[dict[str, Any]] = []
    for index in range(len(combos)):
        record = cells.get(index)
        status = str(record["status"]) if record else "pending"
        summary: dict[str, Any] = {}
        if record and record.get("key") and status in ("completed", "cached"):
            result = cache.get(str(record["key"]))
            if result is None:
                status = "missing"
            else:
                summary = dict(result.summary)
        statuses.append(status)
        summaries.append(summary)
        for key in summary:
            if key not in summary_keys:
                summary_keys.append(key)

    columns: dict[str, list[Any]] = {"cell": list(range(len(combos)))}
    for key in grid_keys:
        columns[key] = [merged.get(key) for merged in combos]
    columns["status"] = statuses
    for key in summary_keys:
        columns[key] = [summary.get(key) for summary in summaries]
    return {
        "experiment": name,
        "preset": preset,
        "n_cells": len(combos),
        "grid_keys": grid_keys,
        "summary_keys": summary_keys,
        "columns": columns,
    }


def render_aggregate(table: dict[str, Any]) -> str:
    """Human-readable rendering of an :func:`aggregate_sweep` table."""
    done = sum(1 for status in table["columns"]["status"] if status in ("completed", "cached"))
    header = (
        f"{table['experiment']} [{table['preset']}]: "
        f"{done}/{table['n_cells']} cells aggregated"
    )
    return f"{header}\n{format_table(table['columns'])}"


def save_aggregate(table: dict[str, Any], path: "str | Path") -> Path:
    """Write an aggregate table as strict JSON (atomic, non-finite-safe)."""
    text = json.dumps(_encode_value(table), indent=2, sort_keys=True, allow_nan=False)
    return atomic_write_text(path, text + "\n")
