"""Ensemble runner: simulate whole packet ensembles per numpy call.

The Monte-Carlo-heavy experiments (delay-spread averaging, last-hop
placements, combining ablations, link-level PER sweeps) all share the same
shape: N independent trials of the same pipeline.  This module provides the
batched building blocks that turn those N Python iterations into stacked
array operations:

* :func:`run_packet_ensemble` — the full PHY pipeline (batched transmit ->
  per-packet channel -> batched noise -> batched receive) for an ensemble
  of packets, the workhorse behind link-level packet-error-rate estimates
  and the batched-vs-per-packet smoke benchmark
  (``benchmarks/bench_batch_pipeline.py``);
* :func:`draw_tap_ensemble` — all multipath realisations of an ensemble in
  one generator call (used by ``fig14_delay_spread``);
* :func:`draw_frequency_response_ensemble` — batched normalised frequency
  responses on the occupied bins (used by ``ablation_combining``);
* :func:`run_trials` / :func:`run_seed_chunks` — re-exported from the
  shared engine (:mod:`repro.engine.scheduler`), which owns all chunked
  sharding and process-pool scheduling; they remain importable here
  because the ensemble runner is where experiments historically found
  their trial entry points.

Determinism: the batched draws reproduce the exact generator-stream order
of the per-trial loops they replace wherever possible (see
:func:`repro.channel.multipath.rayleigh_taps_batch` and
:func:`repro.channel.awgn.awgn_ensemble`), so converted experiments keep
their seeded results.  The speedup methodology for the smoke benchmark is
wall-clock over identical workloads: the per-packet path runs the
single-packet API N times, the batched path runs the batch API once, both
from identical inputs, and the decoded payloads are asserted equal before
timing is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import awgn_ensemble, db_to_linear
from repro.engine.scheduler import run_seed_chunks, run_trials
from repro.channel.composite import link_ensemble_for_snr, propagate_ensemble
from repro.channel.multipath import (
    MultipathEnsemble,
    MultipathProfile,
    DEFAULT_PROFILE,
    rayleigh_taps_batch,
)
from repro.phy import bits as bitutils
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.receiver import ReceiveResult, Receiver
from repro.phy.transmitter import Transmitter

__all__ = [
    "EnsembleResult",
    "run_packet_ensemble",
    "draw_tap_ensemble",
    "draw_frequency_response_ensemble",
    "run_trials",
    "run_seed_chunks",
]


@dataclass
class EnsembleResult:
    """Outcome of one batched packet-ensemble simulation."""

    n_packets: int
    snr_db: float
    rate_mbps: float
    crc_ok: np.ndarray = field(repr=False)  #: (n_packets,) bool
    detected: np.ndarray = field(repr=False)  #: (n_packets,) bool
    payload_ok: np.ndarray = field(repr=False)  #: (n_packets,) bool
    results: list[ReceiveResult] = field(repr=False, default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Fraction of packets decoded with a passing CRC."""
        if self.n_packets == 0:
            return 0.0
        return float(np.mean(self.crc_ok))

    @property
    def packet_error_rate(self) -> float:
        """Fraction of packets that failed detection or CRC."""
        return 1.0 - self.delivery_ratio


def run_packet_ensemble(
    n_packets: int,
    payload_bytes: int = 100,
    snr_db: float = 15.0,
    rate_mbps: float = 6.0,
    profile: MultipathProfile | None = None,
    seed: int | np.random.Generator = 0,
    params: OFDMParams = DEFAULT_PARAMS,
    genie_timing: bool = True,
    leading_silence: int = 32,
    batched: bool = True,
) -> EnsembleResult:
    """Push an ensemble of random packets through the full PHY pipeline.

    One call encodes ``n_packets`` random payloads with
    :meth:`Transmitter.transmit_batch`, sends each through its own channel
    realisation (flat Rayleigh-free AWGN when ``profile`` is ``None``, an
    independent multipath link per packet otherwise), adds noise referenced
    to each packet's own signal power, and decodes everything with
    :meth:`Receiver.receive_batch`.

    Parameters
    ----------
    genie_timing:
        When True the receiver is told the true frame start (the usual
        setting for PER-vs-SNR curves); when False it runs detection.
    batched:
        When False, run the identical workload through the single-packet
        APIs instead (one transmit/receive per packet).  The two paths
        produce identical decoded payloads under the same seed; the flag
        exists so benchmarks and tests can compare them.
    """
    # The empty-ensemble guard comes first so a zero-packet call consumes no
    # RNG stream (payload draws happen after it): callers interleaving
    # ensembles of varying sizes under one seed see stable draws.
    if n_packets == 0:
        return EnsembleResult(
            0, snr_db, rate_mbps,
            crc_ok=np.zeros(0, bool), detected=np.zeros(0, bool),
            payload_ok=np.zeros(0, bool), results=[],
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    payloads = [bitutils.random_payload(payload_bytes, rng) for _ in range(n_packets)]
    transmitter = Transmitter(params)
    receiver = Receiver(params)

    noise_power = 1.0
    gain = float(np.sqrt(db_to_linear(snr_db) * noise_power))

    if batched:
        batch = transmitter.transmit_batch(payloads, rate_mbps)
        if profile is None:
            silence = np.zeros((n_packets, leading_silence), dtype=np.complex128)
            clean = np.concatenate([silence, batch.samples * gain], axis=1)
            received = clean + _ensemble_noise(rng, clean.shape, noise_power)
        else:
            links = link_ensemble_for_snr(
                snr_db, n_packets, noise_power, profile, rng, params=params
            )
            received = propagate_ensemble(
                links, batch.samples, noise_power, rng, leading_silence=leading_silence
            )
        starts = leading_silence if genie_timing else None
        results = receiver.receive_batch(received, batch.config, start_indices=starts)
        config = batch.config
    else:
        results = []
        config = None
        if profile is None:
            links = [None] * n_packets
        else:
            links = link_ensemble_for_snr(
                snr_db, n_packets, noise_power, profile, rng, params=params
            )
        for i, payload in enumerate(payloads):
            frame = transmitter.transmit(payload, rate_mbps)
            config = frame.config
            if profile is None:
                silence = np.zeros(leading_silence, dtype=np.complex128)
                clean = np.concatenate([silence, frame.samples * gain])
                received = clean + _ensemble_noise(rng, (1, clean.size), noise_power)[0]
            else:
                received = propagate_ensemble(
                    [links[i]], frame.samples[None, :], noise_power, rng,
                    leading_silence=leading_silence,
                )[0]
            start = leading_silence if genie_timing else None
            results.append(receiver.receive(received, config, start_index=start))

    crc_ok = np.array([r.crc_ok for r in results], dtype=bool)
    detected = np.array([r.detected for r in results], dtype=bool)
    payload_ok = np.array(
        [r.crc_ok and r.payload == p for r, p in zip(results, payloads)], dtype=bool
    )
    return EnsembleResult(
        n_packets=n_packets,
        snr_db=snr_db,
        rate_mbps=rate_mbps,
        crc_ok=crc_ok,
        detected=detected,
        payload_ok=payload_ok,
        results=results,
    )


def _ensemble_noise(
    rng: np.random.Generator, shape: tuple[int, int], noise_power: float
) -> np.ndarray:
    """Per-packet-ordered AWGN block (kept private to pin the draw order)."""
    return awgn_ensemble(shape[0], shape[1], noise_power, rng)


def draw_tap_ensemble(
    profile: MultipathProfile = DEFAULT_PROFILE,
    n_realizations: int = 100,
    rng: np.random.Generator | int | None = None,
    normalized: bool = True,
) -> MultipathEnsemble:
    """All multipath realisations of a Monte-Carlo ensemble in one call."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    ensemble = MultipathEnsemble(rayleigh_taps_batch(profile, n_realizations, rng))
    return ensemble.normalized() if normalized else ensemble


def draw_frequency_response_ensemble(
    n_realizations: int,
    n_channels_per_realization: int,
    rng: np.random.Generator,
    profile: MultipathProfile = DEFAULT_PROFILE,
    params: OFDMParams = DEFAULT_PARAMS,
) -> np.ndarray:
    """Normalised frequency responses on the occupied bins, fully batched.

    Returns a complex array of shape
    ``(n_realizations, n_channels_per_realization, n_occupied)``.  The
    underlying Gaussian draw has shape
    ``(n_realizations * n_channels_per_realization, 2, n_taps)``, whose C
    order matches a nested per-realisation / per-channel loop of
    :meth:`MultipathChannel.random` draws — so seeded experiments keep
    their exact channel realisations after batching.
    """
    total = n_realizations * n_channels_per_realization
    taps = rayleigh_taps_batch(profile, total, rng)
    power = np.sum(np.abs(taps) ** 2, axis=1)
    taps = taps / np.sqrt(power)[:, None]
    responses = np.fft.fft(taps, params.n_fft, axis=-1)
    bins = params.occupied_bins()
    return responses[:, bins].reshape(
        n_realizations, n_channels_per_realization, bins.size
    )


# run_trials / run_seed_chunks are re-exported above from
# repro.engine.scheduler, the single home of sharding and pool scheduling.
