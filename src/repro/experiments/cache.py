"""Content-addressed artifact cache for experiment results.

Every completed grid cell of a sweep (and any registry run routed through
the supervised scheduler) is stored under a *content address*: a SHA-256
hash of the experiment name, the fully resolved config, the seed and the
artifact-schema / code version (:func:`cache_key`).  Re-running a cell
whose key is already present is a file load, not a simulation — this is
the fast path behind ``sweep --resume`` and the warm-cache numbers in
``BENCH_sweep_cache.json``.

Robustness properties:

* **Atomic writes.** Entries are written with
  :func:`repro.experiments.common.atomic_write_text` (temp file +
  ``os.replace`` in the cache directory), so a crashed or killed worker can
  never leave a truncated entry behind.
* **Corrupt-entry quarantine.** :meth:`ArtifactCache.get` validates every
  entry on load; anything unparsable (disk corruption, a fault-injected
  writer, a foreign file) is moved aside to ``<key>.corrupt`` and reported
  as a miss, so one bad file degrades to a re-simulation instead of
  poisoning the whole sweep.

Keys are deliberately *resolved-config* addressed, not preset addressed:
two presets that resolve to the same config share one entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.experiments.common import ARTIFACT_SCHEMA, ExperimentResult, _encode_value
from repro.version import __version__

__all__ = ["ArtifactCache", "cache_key", "CACHE_DIR_NAME"]

#: Name of the cache directory created inside a sweep output directory.
CACHE_DIR_NAME = "cache"

#: Exceptions that mark a cache entry as corrupt rather than a bug: anything
#: the JSON artifact loader raises for malformed or truncated content.
_CORRUPT_ERRORS = (ValueError, KeyError, TypeError, json.JSONDecodeError)


def cache_key(
    name: str,
    config: Mapping[str, Any],
    *,
    seed: Any = None,
    schema: int = ARTIFACT_SCHEMA,
    code_version: str = __version__,
) -> str:
    """Stable content address of one experiment run.

    ``config`` must be the *resolved* JSON-compatible config mapping (see
    :func:`repro.experiments.registry.config_to_jsonable`), so two runs that
    differ in any field — including defaults filled in by a preset — hash
    differently.  ``seed`` defaults to ``config["seed"]`` when present; it
    is kept as an explicit key component because the seed is the one field
    every Monte-Carlo artifact must be addressed by.  ``schema`` and
    ``code_version`` fence off artifacts written by incompatible layouts or
    library versions.
    """
    payload = {
        "experiment": name,
        "config": config,
        "seed": seed if seed is not None else config.get("seed"),
        "schema": schema,
        "code_version": code_version,
    }
    # Route through the artifact layer's strict-JSON encoding so non-finite
    # config values (e.g. a Rayleigh profile's -inf K-factor) hash stably.
    blob = json.dumps(
        _encode_value(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactCache:
    """Content-addressed store of :class:`ExperimentResult` JSON artifacts.

    The layout is flat: entry ``key`` lives at ``<root>/<key>.json`` and a
    quarantined corrupt entry at ``<root>/<key>.corrupt``.  All writes are
    atomic; concurrent writers of the same key are safe (last atomic
    replace wins, and both wrote identical content by construction).
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Filesystem path of the entry for ``key`` (whether or not it exists)."""
        return self.root / f"{key}.json"

    def quarantine_path_for(self, key: str) -> Path:
        """Path a corrupt entry for ``key`` is moved to by :meth:`get`."""
        return self.root / f"{key}.corrupt"

    def contains(self, key: str) -> bool:
        """True when an entry file for ``key`` exists (without validating it)."""
        return self.path_for(key).exists()

    def get(self, key: str) -> ExperimentResult | None:
        """Load the entry for ``key``, or None on a miss or corrupt entry.

        A corrupt entry (unparsable JSON, wrong schema, missing fields) is
        moved to :meth:`quarantine_path_for` so the next :meth:`get` is a
        clean miss and the bad bytes stay on disk for post-mortem.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            return ExperimentResult.from_json(text)
        except _CORRUPT_ERRORS:
            self._quarantine(key)
            return None

    def put(self, key: str, result: ExperimentResult) -> Path:
        """Atomically store ``result`` as the entry for ``key``."""
        return result.save(self.path_for(key))

    def keys(self) -> list[str]:
        """Keys of every (unvalidated) entry currently in the cache."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def quarantined(self) -> list[str]:
        """Keys of every quarantined corrupt entry."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.corrupt"))

    def _quarantine(self, key: str) -> None:
        """Move the entry for ``key`` aside as ``<key>.corrupt``."""
        try:
            os.replace(self.path_for(key), self.quarantine_path_for(key))
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache({str(self.root)!r}, entries={len(self)})"
