"""Command-line interface for the experiment registry.

``python -m repro.experiments <command>``:

``list``
    Table of every registered experiment (name, tags, batched, description).
``run``
    Run experiments (all, by name, or by ``--tag``) at a preset, optionally
    process-parallel (``--jobs``), with typed ``--set key=value`` config
    overrides; writes one JSON artifact per experiment.
``sweep``
    Run one experiment over a parameter grid (``--sweep key=v1,v2,...``,
    repeatable; cartesian product) under the fault-tolerant sweep engine:
    per-cell ``--timeout``/``--retries`` with exponential backoff, a
    content-addressed artifact cache plus JSONL run manifest in the output
    directory, ``--keep-going`` for partial results instead of aborting,
    and ``--resume DIR`` to continue an interrupted or partially failed
    run (completed cells are cache hits, not re-simulations).
``report``
    Re-print saved JSON artifacts without re-simulating.
``compare``
    Diff two saved artifacts: config, seed and summary scalars (with a
    relative tolerance); exits non-zero when they disagree.
``docs``
    Regenerate ``EXPERIMENTS.md`` from the registry.
``lint``
    Forward to the determinism linter (``python -m repro.lint``); see
    ``docs/LINT.md`` for the rule codes.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.experiments import registry
from repro.experiments.common import ExperimentResult, atomic_write_text
from repro.experiments.runner import (
    _resolve_names,
    run_all,
    run_sweep,
    sweep_definition_from_manifest,
)
from repro.experiments.supervisor import RetryPolicy, RunManifest, SweepFailure

__all__ = ["main", "build_parser"]

_DEFAULT_OUTPUT_DIR = "results"


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.experiments`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, sweep and report the paper's registered experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.add_argument("--tag", action="append", default=None, help="only experiments with this tag")

    p_run = sub.add_parser("run", help="run experiments and save JSON artifacts")
    p_run.add_argument("names", nargs="*", help="experiment names (default: all)")
    p_run.add_argument("--preset", default="quick", help="smoke, quick or full (default: quick)")
    p_run.add_argument("--tag", action="append", default=None, help="only experiments with this tag")
    p_run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="config override, coerced to the field's declared type (repeatable)",
    )
    p_run.add_argument("--jobs", type=int, default=1, help="process-parallel experiments (default: 1)")
    p_run.add_argument(
        "--output-dir",
        default=_DEFAULT_OUTPUT_DIR,
        help=f"directory for per-experiment JSON artifacts (default: {_DEFAULT_OUTPUT_DIR}/)",
    )
    p_run.add_argument("--no-save", action="store_true", help="do not write JSON artifacts")
    p_run.add_argument("--quiet", action="store_true", help="print one summary line per experiment")

    p_sweep = sub.add_parser(
        "sweep", help="run one experiment over a parameter grid (fault-tolerant, resumable)"
    )
    p_sweep.add_argument("name", nargs="?", default=None, help="experiment name (omit with --resume)")
    p_sweep.add_argument(
        "--sweep",
        dest="grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="field and comma-separated values to sweep (repeatable; cartesian product)",
    )
    p_sweep.add_argument("--preset", default="quick", help="base preset for every grid point")
    p_sweep.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="KEY=VALUE",
        help="fixed config override applied to every grid point",
    )
    p_sweep.add_argument("--jobs", type=int, default=1, help="process-parallel grid points")
    p_sweep.add_argument("--output-dir", default=_DEFAULT_OUTPUT_DIR)
    p_sweep.add_argument("--no-save", action="store_true")
    p_sweep.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume the sweep recorded in DIR's manifest: completed cells are "
        "served from the artifact cache, the remainder is (re-)executed",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout; a cell past it is killed and retried",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per cell after a crash/timeout/corrupt artifact (default: 2)",
    )
    p_sweep.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base retry backoff, doubled per attempt with deterministic jitter (default: 0.5)",
    )
    p_sweep.add_argument(
        "--keep-going", action="store_true",
        help="complete the rest of the grid when a cell permanently fails and "
        "report partial results, instead of aborting the sweep",
    )

    p_report = sub.add_parser("report", help="re-print saved JSON artifacts (no simulation)")
    p_report.add_argument("paths", nargs="*", help="artifact files or directories of *.json")
    p_report.add_argument(
        "--sweep",
        metavar="DIR",
        default=None,
        help="aggregate a sweep output directory (manifest + artifact cache) "
        "into one tidy per-cell table instead of re-printing artifacts",
    )
    p_report.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="with --sweep: also save the tidy table as JSON to FILE",
    )

    p_compare = sub.add_parser("compare", help="diff two saved JSON artifacts")
    p_compare.add_argument("baseline", help="baseline artifact file")
    p_compare.add_argument("candidate", help="candidate artifact file")
    p_compare.add_argument(
        "--rtol",
        type=float,
        default=1e-9,
        help="relative tolerance for summary scalars (default: 1e-9)",
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the determinism linter (alias for python -m repro.lint)",
    )
    p_lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.lint (see python -m repro.lint --help)",
    )

    p_docs = sub.add_parser(
        "docs", help="regenerate EXPERIMENTS.md and docs/experiments/ from the registry"
    )
    p_docs.add_argument("--output", default=None, help="output path (default: EXPERIMENTS.md at repo root)")
    p_docs.add_argument(
        "--pages-dir",
        default=None,
        help="directory for per-experiment pages (default: docs/experiments/ at repo root)",
    )
    p_docs.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any generated file is out of date instead of rewriting",
    )
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    specs = registry.specs()
    if args.tag:
        wanted = set(args.tag)
        specs = [s for s in specs if wanted & set(s.tags)]
    if not specs:
        print("no experiments match", file=sys.stderr)
        return 1
    name_w = max(len(s.name) for s in specs)
    tags_w = max(len(",".join(s.tags)) for s in specs)
    for spec in specs:
        batched = "batched" if spec.batched else "       "
        print(f"{spec.name:<{name_w}}  {','.join(spec.tags):<{tags_w}}  {batched}  {spec.description}")
    return 0


def _print_result(result: ExperimentResult, quiet: bool) -> None:
    if quiet:
        head = ", ".join(f"{k}={v:.4g}" for k, v in list(result.summary.items())[:3])
        print(f"{result.name}: {head}")
    else:
        print(result.report())
        print()


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.names or None
    # Parse --set against every selected experiment so typos and per-field
    # types are reported before anything runs.
    selected = _resolve_names(names, args.tag)
    overrides: dict[str, Any] | None = None
    if args.overrides and selected:
        parsed = [registry.get(n).parse_overrides(args.overrides) for n in selected]
        # One typed override set is applied to every selected experiment, so
        # a field that coerces differently across their configs (e.g. int in
        # one, tuple in another) cannot be expressed in a single run.
        disagreeing = [n for n, p in zip(selected, parsed) if p != parsed[0]]
        if disagreeing:
            raise ValueError(
                f"--set overrides coerce differently for {disagreeing} than for "
                f"{selected[0]!r}; run these experiments separately"
            )
        overrides = parsed[0]
    results = run_all(names, preset=args.preset, overrides=overrides, jobs=args.jobs, tags=args.tag)
    for result in results.values():
        _print_result(result, args.quiet)
    if not args.no_save:
        out = Path(args.output_dir)
        for name, result in results.items():
            path = result.save(out / f"{name}.json")
            print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run (or resume) a grid sweep under the fault-tolerant engine."""
    if args.resume:
        if args.grid or args.overrides:
            raise ValueError(
                "--resume reconstructs the grid from the run manifest; "
                "do not combine it with --sweep/--set"
            )
        out = Path(args.resume)
        name, grid, preset, fixed = sweep_definition_from_manifest(RunManifest.in_dir(out))
        if args.name and args.name != name:
            raise ValueError(
                f"--resume directory records experiment {name!r}, not {args.name!r}"
            )
    else:
        if not args.name:
            raise ValueError("sweep requires an experiment name (or --resume DIR)")
        if not args.grid:
            raise ValueError("sweep requires at least one --sweep KEY=V1,V2,... token")
        name, preset, out = args.name, args.preset, Path(args.output_dir)
        spec = registry.get(name)
        grid = {}
        for token in args.grid:
            key, sep, text = token.partition("=")
            if not sep or not key:
                raise ValueError(f"sweep token {token!r} is not of the form key=v1,v2,...")
            values = registry.coerce_sweep_values(spec.config_cls, key.strip(), text)
            grid.setdefault(key.strip(), []).extend(values)
        fixed = spec.parse_overrides(args.overrides) if args.overrides else None

    policy = RetryPolicy(
        timeout_s=args.timeout,
        retries=max(args.retries, 0),
        backoff_base_s=max(args.backoff, 0.0),
        keep_going=args.keep_going,
    )
    try:
        run = run_sweep(
            name, grid, preset=preset, overrides=fixed, jobs=args.jobs,
            policy=policy, run_dir=None if args.no_save else out,
        )
    except SweepFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("completed cells are recorded; `sweep --resume "
              f"{out}` retries the rest" if not args.no_save else "", file=sys.stderr)
        return 1
    for outcome in run.outcomes:
        label = outcome.job.label or ""
        if outcome.result is not None:
            head = ", ".join(f"{k}={v:.4g}" for k, v in list(outcome.result.summary.items())[:3])
            suffix = " [cached]" if outcome.status == "cached" else ""
            print(f"{name}[{label}]: {head}{suffix}")
        else:
            history = ",".join(attempt.outcome for attempt in outcome.attempts)
            print(f"{name}[{label}]: FAILED ({history})")
    if not args.no_save:
        for point in run.points:
            # Preset-qualified so sweeps of the same grid at different
            # presets do not overwrite each other's artifacts; labels are
            # slugified so exotic override values cannot produce invalid
            # or colliding paths.
            path = point.result.save(out / f"{name}__{preset}__{point.filename_label()}.json")
            print(f"wrote {path}")
    if run.failures:
        print(run.failure_report(), file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.sweep:
        from repro.experiments.aggregate import aggregate_sweep, render_aggregate, save_aggregate

        if args.paths:
            raise ValueError("report --sweep DIR takes no artifact paths")
        table = aggregate_sweep(args.sweep)
        print(render_aggregate(table))
        if args.out:
            path = save_aggregate(table, args.out)
            print(f"wrote {path}")
        return 0
    if args.out:
        raise ValueError("report --out requires --sweep DIR")
    files: list[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    if not files:
        print("no artifacts found", file=sys.stderr)
        return 1
    for path in files:
        result = ExperimentResult.load(path)
        print(f"[{path}]")
        print(result.report())
        print()
    return 0


def _scalar_differs(a: Any, b: Any, rtol: float) -> bool:
    """True when two summary values disagree beyond the tolerance."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if math.isnan(a) and math.isnan(b):
            return False
        return not math.isclose(a, b, rel_tol=rtol, abs_tol=0.0)
    return a != b


def _cmd_compare(args: argparse.Namespace) -> int:
    """Diff two artifacts: config, seed and summary scalars with tolerance."""
    baseline = ExperimentResult.load(args.baseline)
    candidate = ExperimentResult.load(args.candidate)
    differences: list[str] = []

    if baseline.name != candidate.name:
        differences.append(f"name: {baseline.name!r} != {candidate.name!r}")
    seed_a = (baseline.provenance or {}).get("seed")
    seed_b = (candidate.provenance or {}).get("seed")
    if seed_a != seed_b:
        differences.append(f"seed: {seed_a!r} != {seed_b!r}")

    config_a, config_b = baseline.config or {}, candidate.config or {}
    for key in sorted(set(config_a) | set(config_b)):
        left, right = config_a.get(key, "<missing>"), config_b.get(key, "<missing>")
        if left != right:
            differences.append(f"config.{key}: {left!r} != {right!r}")

    summary_a, summary_b = baseline.summary or {}, candidate.summary or {}
    for key in sorted(set(summary_a) | set(summary_b)):
        if key not in summary_a or key not in summary_b:
            differences.append(
                f"summary.{key}: only in {'baseline' if key in summary_a else 'candidate'}"
            )
        elif _scalar_differs(summary_a[key], summary_b[key], args.rtol):
            differences.append(f"summary.{key}: {summary_a[key]!r} != {summary_b[key]!r}")

    if differences:
        print(f"{args.baseline} vs {args.candidate}: {len(differences)} difference(s)")
        for line in differences:
            print(f"  {line}")
        return 1
    print(f"{args.baseline} vs {args.candidate}: identical (rtol={args.rtol:g})")
    return 0


def _cmd_docs(args: argparse.Namespace) -> int:
    """Regenerate (or ``--check``) EXPERIMENTS.md and the per-experiment pages."""
    from repro.experiments.docs import (
        DEFAULT_DOC_PATH,
        DEFAULT_PAGES_DIR,
        render_markdown,
        render_pages,
    )

    target = Path(args.output) if args.output else DEFAULT_DOC_PATH
    pages_dir = Path(args.pages_dir) if args.pages_dir else DEFAULT_PAGES_DIR
    expected: dict[Path, str] = {target: render_markdown()}
    pages = render_pages()
    for name, content in pages.items():
        expected[pages_dir / name] = content
    # Pages not generated for any registered experiment are stale — but the
    # index target itself may legitimately live inside the pages directory.
    expected_paths = {path.resolve() for path in expected}
    stale = sorted(
        path
        for path in pages_dir.glob("*.md")
        if path.name not in pages and path.resolve() not in expected_paths
    ) if pages_dir.exists() else []

    if args.check:
        out_of_date = [
            path for path, content in expected.items()
            if not path.exists() or path.read_text() != content
        ]
        for path in out_of_date:
            print(f"{path} is out of date; run `python -m repro.experiments docs`", file=sys.stderr)
        for path in stale:
            print(f"{path} documents no registered experiment; run `python -m repro.experiments docs`", file=sys.stderr)
        if out_of_date or stale:
            return 1
        print(f"{target} and {len(pages)} pages under {pages_dir} are up to date")
        return 0
    for path, content in expected.items():
        atomic_write_text(path, content)
        print(f"wrote {path}")
    for path in stale:
        path.unlink()
        print(f"removed stale {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Forward to the :mod:`repro.lint` command line."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "docs": _cmd_docs,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code instead of raising."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # Forwarded wholesale: argparse's REMAINDER cannot capture leading
        # options (e.g. `lint --list-rules`), so hand the tail straight to
        # the repro.lint parser.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. `... report results/ | head`
        return 0
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
