"""Shared infrastructure for the experiment harness.

Every experiment module exposes a ``run(...)`` function returning an
:class:`ExperimentResult`: a named table of series (columns) plus the
paper's reported reference values, so the benchmark harness can print a
paper-vs-measured comparison for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """Result of regenerating one paper figure or table.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"fig12"``.
    description:
        What the figure shows.
    series:
        Mapping of column name to a list/array of values (all the same
        length), forming the rows of the regenerated figure.
    summary:
        Scalar headline numbers (e.g. a median gain).
    paper_reference:
        The corresponding numbers reported in the paper, for side-by-side
        comparison in EXPERIMENTS.md and the benchmark output.
    """

    name: str
    description: str
    series: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)
    paper_reference: dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        """Human-readable table of the series."""
        return format_table(self.series)

    def report(self) -> str:
        """Full report: description, table, summary and paper reference."""
        lines = [f"== {self.name}: {self.description} ==", self.table(), ""]
        if self.summary:
            lines.append("summary:")
            for key, value in self.summary.items():
                lines.append(f"  {key}: {value:.4g}" if isinstance(value, float) else f"  {key}: {value}")
        if self.paper_reference:
            lines.append("paper reference:")
            for key, value in self.paper_reference.items():
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def format_table(series: dict[str, Any], max_rows: int = 60) -> str:
    """Format a dict of equal-length columns as an aligned text table."""
    if not series:
        return "(empty)"
    columns = list(series.keys())
    arrays = [np.asarray(series[c]) for c in columns]
    n_rows = max(a.shape[0] if a.ndim else 1 for a in arrays)

    def cell(value: Any) -> str:
        if isinstance(value, (float, np.floating)):
            return f"{value:.3f}"
        return str(value)

    header = " | ".join(f"{c:>14s}" for c in columns)
    rows = [header, "-" * len(header)]
    for i in range(min(n_rows, max_rows)):
        row = []
        for a in arrays:
            if a.ndim == 0:
                row.append(cell(a[()]))
            elif i < a.shape[0]:
                row.append(cell(a[i]))
            else:
                row.append("")
        rows.append(" | ".join(f"{r:>14s}" for r in row))
    if n_rows > max_rows:
        rows.append(f"... ({n_rows - max_rows} more rows)")
    return "\n".join(rows)
