"""Shared infrastructure for the experiment harness.

Every experiment implementation returns an :class:`ExperimentResult`: a
named table of series (columns) plus the paper's reported reference
values, so the runner and benchmark harness can print a paper-vs-measured
comparison for every figure.  Results returned through the registry
(:mod:`repro.experiments.registry`) additionally carry the exact config
and run provenance (library/numpy versions, git commit, seed), and can be
saved to / restored from JSON artifacts with :meth:`ExperimentResult.save`
and :meth:`ExperimentResult.load` — numpy arrays in ``series`` survive the
round trip with their dtype.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

import numpy as np

from repro.version import __version__

__all__ = ["ExperimentResult", "format_table", "collect_provenance", "atomic_write_text"]

#: Version of the JSON artifact layout written by :meth:`ExperimentResult.to_json`.
ARTIFACT_SCHEMA = 1


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination directory, so the final
    rename is a same-filesystem ``os.replace`` and readers can never observe
    a partially written file: a crash or SIGINT mid-write leaves the old
    content (or nothing) behind, never a truncated one.  Parent directories
    are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


@lru_cache(maxsize=1)
def _git_commit() -> str | None:
    """Short commit hash of the source tree, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return proc.stdout.strip() or None if proc.returncode == 0 else None


def collect_provenance() -> dict[str, Any]:
    """Environment provenance embedded in saved artifacts.

    Deliberately timestamp-free: re-running the same seeded experiment in
    the same environment produces a byte-identical artifact, so saved runs
    can be diffed.
    """
    return {
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "git_commit": _git_commit(),
    }


def _encode_value(value: Any) -> Any:
    """Encode a result value for JSON, tagging numpy arrays with their dtype.

    Non-finite floats (NaN summaries happen, e.g. an SNR regime with no
    measurement) are tagged as ``{"__float__": "nan"}`` so the artifact is
    strict JSON — the bare ``NaN`` token ``json.dumps`` emits by default is
    rejected by most non-Python consumers.
    """
    if isinstance(value, np.ndarray):
        if np.iscomplexobj(value):
            return {
                "__ndarray__": str(value.dtype),
                "real": _encode_value(value.real.tolist()),
                "imag": _encode_value(value.imag.tolist()),
            }
        return {"__ndarray__": str(value.dtype), "data": _encode_value(value.tolist())}
    if isinstance(value, np.generic):
        return _encode_value(value.item())
    if isinstance(value, float) and not math.isfinite(value):
        return {"__float__": repr(value)}  # 'nan', 'inf' or '-inf'
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    return value


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if "__float__" in value:
            return float(value["__float__"])
        if "__ndarray__" in value:
            dtype = np.dtype(value["__ndarray__"])
            if "real" in value:
                real = np.asarray(_decode_value(value["real"]))
                imag = np.asarray(_decode_value(value["imag"]))
                return (real + 1j * imag).astype(dtype)
            return np.asarray(_decode_value(value["data"]), dtype=dtype)
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


@dataclass
class ExperimentResult:
    """Result of regenerating one paper figure or table.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"fig12"``.
    description:
        What the figure shows.
    series:
        Mapping of column name to a list/array of values (all the same
        length), forming the rows of the regenerated figure.
    summary:
        Scalar headline numbers (e.g. a median gain).
    paper_reference:
        The corresponding numbers reported in the paper, for side-by-side
        comparison in EXPERIMENTS.md and the benchmark output.
    config:
        JSON-compatible snapshot of the config the run used (filled in by
        :meth:`repro.experiments.registry.ExperimentSpec.run`).
    provenance:
        Environment and seed provenance of the run (see
        :func:`collect_provenance`).
    """

    name: str
    description: str
    series: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)
    paper_reference: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] | None = None
    provenance: dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        """Human-readable table of the series."""
        return format_table(self.series)

    def report(self) -> str:
        """Full report: description, table, summary and paper reference."""
        lines = [f"== {self.name}: {self.description} ==", self.table(), ""]
        if self.summary:
            lines.append("summary:")
            for key, value in self.summary.items():
                lines.append(f"  {key}: {value:.4g}" if isinstance(value, float) else f"  {key}: {value}")
        if self.paper_reference:
            lines.append("paper reference:")
            for key, value in self.paper_reference.items():
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the result (series, summary, config, provenance) to JSON."""
        payload = {
            "schema": ARTIFACT_SCHEMA,
            "name": self.name,
            "description": self.description,
            "series": _encode_value(self.series),
            "summary": _encode_value(self.summary),
            "paper_reference": _encode_value(self.paper_reference),
            "config": _encode_value(self.config),
            "provenance": _encode_value(self.provenance),
        }
        return json.dumps(payload, indent=indent, sort_keys=False, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Restore a result from :meth:`to_json` output (arrays keep their dtype)."""
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != ARTIFACT_SCHEMA:
            raise ValueError(f"unsupported artifact schema {schema!r} (expected {ARTIFACT_SCHEMA})")
        return cls(
            name=payload["name"],
            description=payload["description"],
            series=_decode_value(payload.get("series") or {}),
            summary=_decode_value(payload.get("summary") or {}),
            paper_reference=_decode_value(payload.get("paper_reference") or {}),
            config=_decode_value(payload["config"]) if payload.get("config") is not None else None,
            provenance=_decode_value(payload.get("provenance") or {}),
        )

    def save(self, path: "str | Path") -> Path:
        """Write the JSON artifact to ``path`` (parent directories are created).

        The write is atomic (see :func:`atomic_write_text`): a crash or
        SIGINT mid-save can never leave a truncated artifact for ``report``,
        ``compare`` or the artifact cache to trip over.
        """
        return atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "ExperimentResult":
        """Read a JSON artifact written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def format_table(series: dict[str, Any], max_rows: int = 60) -> str:
    """Format a dict of equal-length columns as an aligned text table."""
    if not series:
        return "(empty)"
    columns = list(series.keys())
    arrays = [np.asarray(series[c]) for c in columns]
    n_rows = max(a.shape[0] if a.ndim else 1 for a in arrays)

    def cell(value: Any) -> str:
        if isinstance(value, (float, np.floating)):
            return f"{value:.3f}"
        return str(value)

    header = " | ".join(f"{c:>14s}" for c in columns)
    rows = [header, "-" * len(header)]
    for i in range(min(n_rows, max_rows)):
        row = []
        for a in arrays:
            if a.ndim == 0:
                row.append(cell(a[()]))
            elif i < a.shape[0]:
                row.append(cell(a[i]))
            else:
                row.append("")
        rows.append(" | ".join(f"{r:>14s}" for r in row))
    if n_rows > max_rows:
        rows.append(f"... ({n_rows - max_rows} more rows)")
    return "\n".join(rows)
