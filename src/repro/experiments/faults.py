"""Deterministic fault injection for the supervised sweep engine.

The supervisor's recovery paths — worker-crash respawn, hang timeout,
corrupt-artifact quarantine — are only trustworthy if they are exercised,
so this module lets tests (and brave operators) make chosen grid cells
fail in chosen ways, deterministically.

Faults are requested through the :data:`FAULT_ENV` environment variable
(inherited by worker processes), as comma-separated rules::

    REPRO_FAULT_INJECT="crash:2,hang:4:2,corrupt:0:*"

Each rule is ``mode:cell[:attempts]``:

``mode``
    ``crash`` — the worker process dies with :func:`os._exit` before
    running the cell (simulates an OOM kill / segfault).
    ``hang`` — the worker sleeps far past any reasonable timeout
    (simulates a wedged simulation; the supervisor must kill it).
    ``corrupt`` — the cell runs normally but its cache entry is truncated
    after the atomic write (simulates on-disk corruption; the supervisor
    must quarantine it).

``cell``
    The zero-based cell index within the run the rule applies to.

``attempts``
    How many attempts of that cell fail: an integer ``N`` fails attempts
    ``1..N`` and lets attempt ``N+1`` succeed (default ``1`` — exercises
    the retry-then-succeed path), or ``*`` to fail every attempt
    (exercises the max-retries permanent-failure path).

The rules are pure data: whether a given (cell, attempt) faults is a
deterministic function of the spec, so fault-injected runs are exactly
reproducible.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = [
    "FAULT_ENV",
    "FaultRule",
    "parse_fault_spec",
    "rules_from_env",
    "active_fault",
    "CRASH_EXIT_CODE",
]

#: Environment variable holding the fault-injection spec.
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Exit code of a fault-injected worker crash (distinct from signal deaths).
CRASH_EXIT_CODE = 87

#: Recognised fault modes.
_MODES = ("crash", "hang", "corrupt")

#: How long a fault-injected hang sleeps; far past any test timeout, short
#: enough that a leaked worker cannot outlive a CI job by much.
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault rule: ``mode`` applied to ``cell``.

    ``attempts`` is the number of leading attempts that fail (``None``
    means every attempt fails).
    """

    mode: str
    cell: int
    attempts: int | None = 1

    def applies(self, cell: int, attempt: int) -> bool:
        """True when this rule faults ``attempt`` (1-based) of ``cell``."""
        if cell != self.cell:
            return False
        return self.attempts is None or attempt <= self.attempts


def parse_fault_spec(text: str) -> tuple[FaultRule, ...]:
    """Parse a :data:`FAULT_ENV`-style spec string into rules.

    Raises :class:`ValueError` for unknown modes or malformed tokens, so a
    typo in a fault spec fails loudly instead of silently injecting
    nothing.
    """
    rules: list[FaultRule] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"fault rule {token!r} is not of the form mode:cell[:attempts]")
        mode, cell_text = parts[0].strip(), parts[1].strip()
        if mode not in _MODES:
            raise ValueError(f"unknown fault mode {mode!r} in {token!r}; known: {_MODES}")
        cell = int(cell_text)
        attempts: int | None = 1
        if len(parts) == 3:
            attempts_text = parts[2].strip()
            attempts = None if attempts_text == "*" else int(attempts_text)
            if attempts is not None and attempts < 1:
                raise ValueError(f"fault rule {token!r} must fail at least one attempt")
        rules.append(FaultRule(mode=mode, cell=cell, attempts=attempts))
    return tuple(rules)


def rules_from_env() -> tuple[FaultRule, ...]:
    """The fault rules currently requested via :data:`FAULT_ENV` (often none)."""
    text = os.environ.get(FAULT_ENV, "")
    return parse_fault_spec(text) if text else ()


def active_fault(rules: tuple[FaultRule, ...], cell: int, attempt: int) -> str | None:
    """The fault mode to inject for (``cell``, ``attempt``), or None."""
    for rule in rules:
        if rule.applies(cell, attempt):
            return rule.mode
    return None


def trip_preexec_fault(mode: str | None) -> None:
    """Execute a ``crash`` or ``hang`` fault inside a worker process.

    ``crash`` terminates the process immediately without cleanup (like a
    segfault would); ``hang`` blocks far past any configured timeout so the
    supervisor's kill path has something to kill.  ``corrupt`` (and None)
    are no-ops here — corruption is applied after the artifact write.
    """
    if mode == "crash":
        os._exit(CRASH_EXIT_CODE)
    if mode == "hang":
        time.sleep(_HANG_SECONDS)
