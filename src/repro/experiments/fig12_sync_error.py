"""Figure 12: 95th-percentile synchronization error vs SNR.

The paper synchronizes two transmitters with SourceSync (§4.4/§4.5), then
measures the residual synchronization error with a high-accuracy estimator
that replaces the packet body with 200 repetitions of the joint header and
averages the per-repetition misalignment estimates (§8.1.1).  Fig. 12 plots
the 95th percentile of that error against the average SNR of the two
transmitters, showing it stays below 20 ns across the operational range of
802.11 SNRs.

This reproduction follows the same procedure: for each SNR point it builds
several random two-sender topologies, lets the wait-time tracking loop
converge, and then measures the residual misalignment of subsequent joint
headers with the repeated-measurement ground-truth estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.core.ensemble import (
    converge_tracking_batch,
    measure_delays_batch,
    run_header_exchanges_batch,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "measure_residual_sync_error"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 12 reproduction.

    ``batched`` selects the lockstep ensemble path
    (:mod:`repro.core.ensemble`): every (SNR point, topology) cell draws
    from its own spawned generator, so the batched and sequential paths
    produce the same seeded results while the batched one advances all
    cells together with stacked array operations.
    """

    snr_points_db: tuple[float, ...] = (3.0, 6.0, 9.0, 12.0, 15.0, 20.0, 25.0)
    n_topologies: int = 3
    n_measurements: int = 6
    repetitions_per_measurement: int = 4
    warmup_rounds: int = 5
    seed: int = 12
    batched: bool = True
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.snr_points_db:
            raise ValueError("snr_points_db must be non-empty")
        if self.n_topologies < 1 or self.n_measurements < 1:
            raise ValueError("n_topologies and n_measurements must be >= 1")
        if self.repetitions_per_measurement < 1:
            raise ValueError("repetitions_per_measurement must be >= 1")
        if self.warmup_rounds < 0:
            raise ValueError("warmup_rounds must be >= 0")


def measure_residual_sync_error(
    session: SourceSyncSession,
    n_measurements: int = 10,
    repetitions_per_measurement: int = 5,
    params: OFDMParams = DEFAULT_PARAMS,
) -> list[float]:
    """Residual synchronization error (ns) of converged SourceSync senders.

    Each measurement mimics the paper's ground-truth estimator: the
    misalignment of one scheduled joint transmission is estimated
    ``repetitions_per_measurement`` times (the paper repeats the header 200
    times inside one packet; here each repetition is an independent header
    reception over the same static channel) and the estimates are averaged
    to suppress estimator noise.
    """
    errors_ns: list[float] = []
    for _ in range(n_measurements):
        estimates = []
        for _ in range(repetitions_per_measurement):
            outcome = session.run_header_exchange(apply_tracking_feedback=False)
            if outcome.measured_misalignment is None:
                continue
            values = outcome.measured_misalignment.misalignments_samples
            if values:
                estimates.append(values[0])
        if estimates:
            errors_ns.append(abs(float(np.mean(estimates))) * params.sample_period_ns)
        # One tracking update per measurement keeps the loop converged, as a
        # real deployment would via ACK feedback on data packets.
        session.run_header_exchange(apply_tracking_feedback=True)
    return errors_ns


def _make_cell_session(
    snr_db: float, rng: np.random.Generator, params: OFDMParams
) -> SourceSyncSession:
    """Session for one (SNR point, topology) cell, drawn from its own generator."""
    topo = JointTopology.from_snrs(
        rng,
        lead_rx_snr_db=snr_db,
        cosender_rx_snr_db=[snr_db],
        lead_cosender_snr_db=[max(snr_db, 15.0)],
        params=params,
    )
    return SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng)


def _measure_residual_batch(
    sessions: list[SourceSyncSession],
    n_measurements: int,
    repetitions_per_measurement: int,
    params: OFDMParams,
) -> list[list[float]]:
    """Lockstep counterpart of :func:`measure_residual_sync_error`.

    All sessions advance measurement-by-measurement together; the repeated
    header receptions of one measurement are batched across sessions *and*
    repetitions, and the per-measurement tracking update runs as one more
    lockstep wave — the same per-session sequence as the sequential loop.
    """
    errors: list[list[float]] = [[] for _ in sessions]
    for _ in range(n_measurements):
        outcomes = run_header_exchanges_batch(
            sessions, repeats=repetitions_per_measurement, apply_tracking_feedback=False
        )
        for s in range(len(sessions)):
            estimates = []
            for outcome in outcomes[s]:
                if outcome.measured_misalignment is None:
                    continue
                values = outcome.measured_misalignment.misalignments_samples
                if values:
                    estimates.append(values[0])
            if estimates:
                errors[s].append(abs(float(np.mean(estimates))) * params.sample_period_ns)
        # One tracking update per measurement keeps the loop converged, as a
        # real deployment would via ACK feedback on data packets.
        run_header_exchanges_batch(sessions, repeats=1, apply_tracking_feedback=True)
    return errors


@experiment(
    name="fig12",
    description="95th percentile synchronization error vs SNR",
    config=Config,
    presets={
        "smoke": {
            "snr_points_db": (12.0,),
            "n_topologies": 1,
            "n_measurements": 2,
            "repetitions_per_measurement": 2,
            "warmup_rounds": 2,
        },
        "quick": {"snr_points_db": (6.0, 12.0, 20.0), "n_topologies": 2, "n_measurements": 4},
        "full": {"n_topologies": 6, "n_measurements": 10},
    },
    summary_keys={
        "worst_p95_ns": "largest 95th-percentile synchronization error (ns) over the SNR sweep (paper: < 20 ns)",
        "best_p95_ns": "smallest 95th-percentile synchronization error (ns) over the SNR sweep",
    },
    tags=("sync", "phy"),
    batched=True,
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 12.

    For each SNR point, random lead/co-sender/receiver topologies are built
    with both sender-receiver links at that SNR; the reported value is the
    95th percentile of the residual synchronization error across topologies
    and measurements.  Every (SNR, topology) cell has its own spawned
    generator; ``config.batched`` runs all cells in lockstep through the
    batched joint-frame core path with identical seeded results.
    """
    params = config.params
    cells = [
        (snr_db, topo_index)
        for snr_db in config.snr_points_db
        for topo_index in range(config.n_topologies)
    ]
    cell_rngs = [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(config.seed).spawn(len(cells))
    ]
    errors_per_cell: list[list[float]]
    if config.batched:
        sessions = [
            _make_cell_session(snr_db, rng, params)
            for (snr_db, _), rng in zip(cells, cell_rngs)
        ]
        measure_delays_batch(sessions)
        converge_tracking_batch(sessions, rounds=config.warmup_rounds)
        errors_per_cell = _measure_residual_batch(
            sessions, config.n_measurements, config.repetitions_per_measurement, params
        )
    else:
        errors_per_cell = []
        for (snr_db, _), rng in zip(cells, cell_rngs):
            session = _make_cell_session(snr_db, rng, params)
            session.measure_delays()
            session.converge_tracking(rounds=config.warmup_rounds)
            errors_per_cell.append(
                measure_residual_sync_error(
                    session, config.n_measurements, config.repetitions_per_measurement, params
                )
            )

    percentile_95_ns: list[float] = []
    median_ns: list[float] = []
    for p, snr_db in enumerate(config.snr_points_db):
        errors: list[float] = []
        for t in range(config.n_topologies):
            errors.extend(errors_per_cell[p * config.n_topologies + t])
        if errors:
            percentile_95_ns.append(float(np.percentile(errors, 95)))
            median_ns.append(float(np.median(errors)))
        else:
            percentile_95_ns.append(float("nan"))
            median_ns.append(float("nan"))

    return ExperimentResult(
        name="fig12",
        description="95th percentile synchronization error vs SNR",
        series={
            "snr_db": list(config.snr_points_db),
            "sync_error_p95_ns": percentile_95_ns,
            "sync_error_median_ns": median_ns,
        },
        summary={
            "worst_p95_ns": float(np.nanmax(percentile_95_ns)),
            "best_p95_ns": float(np.nanmin(percentile_95_ns)),
        },
        paper_reference={
            "claim": "95th percentile synchronization error < 20 ns across operational 802.11 SNRs",
            "figure": "Fig. 12",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
