"""Figure 12: 95th-percentile synchronization error vs SNR.

The paper synchronizes two transmitters with SourceSync (§4.4/§4.5), then
measures the residual synchronization error with a high-accuracy estimator
that replaces the packet body with 200 repetitions of the joint header and
averages the per-repetition misalignment estimates (§8.1.1).  Fig. 12 plots
the 95th percentile of that error against the average SNR of the two
transmitters, showing it stays below 20 ns across the operational range of
802.11 SNRs.

This reproduction follows the same procedure: for each SNR point it builds
several random two-sender topologies, lets the wait-time tracking loop
converge, and then measures the residual misalignment of subsequent joint
headers with the repeated-measurement ground-truth estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "measure_residual_sync_error"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 12 reproduction."""

    snr_points_db: tuple[float, ...] = (3.0, 6.0, 9.0, 12.0, 15.0, 20.0, 25.0)
    n_topologies: int = 3
    n_measurements: int = 6
    repetitions_per_measurement: int = 4
    warmup_rounds: int = 5
    seed: int = 12
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.snr_points_db:
            raise ValueError("snr_points_db must be non-empty")
        if self.n_topologies < 1 or self.n_measurements < 1:
            raise ValueError("n_topologies and n_measurements must be >= 1")
        if self.repetitions_per_measurement < 1:
            raise ValueError("repetitions_per_measurement must be >= 1")
        if self.warmup_rounds < 0:
            raise ValueError("warmup_rounds must be >= 0")


def measure_residual_sync_error(
    session: SourceSyncSession,
    n_measurements: int = 10,
    repetitions_per_measurement: int = 5,
    params: OFDMParams = DEFAULT_PARAMS,
) -> list[float]:
    """Residual synchronization error (ns) of converged SourceSync senders.

    Each measurement mimics the paper's ground-truth estimator: the
    misalignment of one scheduled joint transmission is estimated
    ``repetitions_per_measurement`` times (the paper repeats the header 200
    times inside one packet; here each repetition is an independent header
    reception over the same static channel) and the estimates are averaged
    to suppress estimator noise.
    """
    errors_ns: list[float] = []
    for _ in range(n_measurements):
        estimates = []
        for _ in range(repetitions_per_measurement):
            outcome = session.run_header_exchange(apply_tracking_feedback=False)
            if outcome.measured_misalignment is None:
                continue
            values = outcome.measured_misalignment.misalignments_samples
            if values:
                estimates.append(values[0])
        if estimates:
            errors_ns.append(abs(float(np.mean(estimates))) * params.sample_period_ns)
        # One tracking update per measurement keeps the loop converged, as a
        # real deployment would via ACK feedback on data packets.
        session.run_header_exchange(apply_tracking_feedback=True)
    return errors_ns


@experiment(
    name="fig12",
    description="95th percentile synchronization error vs SNR",
    config=Config,
    presets={
        "smoke": {
            "snr_points_db": (12.0,),
            "n_topologies": 1,
            "n_measurements": 2,
            "repetitions_per_measurement": 2,
            "warmup_rounds": 2,
        },
        "quick": {"snr_points_db": (6.0, 12.0, 20.0), "n_topologies": 2, "n_measurements": 4},
        "full": {"n_topologies": 6, "n_measurements": 10},
    },
    tags=("sync", "phy"),
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 12.

    For each SNR point, random lead/co-sender/receiver topologies are built
    with both sender-receiver links at that SNR; the reported value is the
    95th percentile of the residual synchronization error across topologies
    and measurements.
    """
    params = config.params
    rng = np.random.default_rng(config.seed)
    percentile_95_ns: list[float] = []
    median_ns: list[float] = []
    for snr_db in config.snr_points_db:
        errors: list[float] = []
        for _ in range(config.n_topologies):
            topo = JointTopology.from_snrs(
                rng,
                lead_rx_snr_db=snr_db,
                cosender_rx_snr_db=[snr_db],
                lead_cosender_snr_db=[max(snr_db, 15.0)],
                params=params,
            )
            session = SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng)
            session.measure_delays()
            session.converge_tracking(rounds=config.warmup_rounds)
            errors.extend(
                measure_residual_sync_error(
                    session, config.n_measurements, config.repetitions_per_measurement, params
                )
            )
        if errors:
            percentile_95_ns.append(float(np.percentile(errors, 95)))
            median_ns.append(float(np.median(errors)))
        else:
            percentile_95_ns.append(float("nan"))
            median_ns.append(float("nan"))

    return ExperimentResult(
        name="fig12",
        description="95th percentile synchronization error vs SNR",
        series={
            "snr_db": list(config.snr_points_db),
            "sync_error_p95_ns": percentile_95_ns,
            "sync_error_median_ns": median_ns,
        },
        summary={
            "worst_p95_ns": float(np.nanmax(percentile_95_ns)),
            "best_p95_ns": float(np.nanmin(percentile_95_ns)),
        },
        paper_reference={
            "claim": "95th percentile synchronization error < 20 ns across operational 802.11 SNRs",
            "figure": "Fig. 12",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
