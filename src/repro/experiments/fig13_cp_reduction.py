"""Figure 13: joint-transmission SNR vs cyclic prefix, SourceSync vs baseline.

Two senders transmit a joint frame to one receiver while the cyclic prefix
of the data section is swept.  With SourceSync's delay compensation the
senders arrive aligned, so the CP only has to absorb the channel's own
multipath spread; the unsynchronized baseline (co-sender joins without
compensating for detection/propagation delays) needs a much larger CP
before the effective SNR saturates.  The paper reports 117 ns vs 469 ns for
95%-of-peak SNR on its 128 MHz platform.

The effective SNR of a joint transmission is measured from the error vector
magnitude of the equalised data symbols against the known transmitted
constellation points, which captures inter-symbol interference caused by a
too-small CP on top of thermal noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import evm_to_snr_db
from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.core.ensemble import JointFrameJob, run_joint_frames_batch
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy import bits as bitutils
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.transmitter import encode_payload_to_symbols

__all__ = ["Config", "SPEC", "run", "measure_snr_vs_cp"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 13 reproduction.

    ``batched`` decodes the whole cyclic-prefix sweep as one joint-frame
    ensemble (single block-parallel Viterbi pass).  Frames are measured
    with the tracking loop *converged and frozen* — feedback is applied
    during the warm-up exchanges, not per measured frame — so the frames
    are independent and the batched and sequential paths produce identical
    seeded results.
    """

    cp_values_samples: tuple[int, ...] = (0, 2, 4, 6, 8, 12, 16, 20, 26, 32)
    snr_db: float = 20.0
    n_frames: int = 2
    seed: int = 5
    batched: bool = True
    params: OFDMParams = DEFAULT_PARAMS
    snr_fraction: float = 0.95

    def __post_init__(self) -> None:
        if not self.cp_values_samples:
            raise ValueError("cp_values_samples must be non-empty")
        if any(cp < 0 for cp in self.cp_values_samples):
            raise ValueError("cyclic-prefix lengths must be >= 0 samples")
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if not 0.0 < self.snr_fraction <= 1.0:
            raise ValueError("snr_fraction must be in (0, 1]")


def _build_session(
    snr_db: float, seed: int, params: OFDMParams
) -> tuple[SourceSyncSession, np.random.Generator]:
    rng = np.random.default_rng(seed)
    topo = JointTopology.from_snrs(
        rng,
        lead_rx_snr_db=snr_db,
        cosender_rx_snr_db=[snr_db],
        lead_cosender_snr_db=[25.0],
        lead_rx_distance_m=15.0,
        cosender_rx_distance_m=[25.0],
        lead_cosender_distance_m=[20.0],
        params=params,
    )
    return SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng), rng


def measure_snr_vs_cp(
    cp_values_samples: tuple[int, ...],
    compensate: bool,
    snr_db: float = 20.0,
    payload_bytes: int = 60,
    n_frames: int = 2,
    seed: int = 5,
    params: OFDMParams = DEFAULT_PARAMS,
    batched: bool = True,
) -> list[float]:
    """Average effective SNR at each CP value, with or without compensation.

    The tracking loop converges during warm-up exchanges and is then frozen
    for the measured frames (the channels are static, so per-frame feedback
    would only inject estimator noise into the sweep); the frames are
    therefore independent and, with ``batched``, decode as one ensemble
    through :func:`repro.core.ensemble.run_joint_frames_batch` with
    identical seeded results.
    """
    session, payload = _prepare_chain(compensate, snr_db, payload_bytes, seed, params)
    if batched:
        jobs = _sweep_jobs(payload, cp_values_samples, n_frames, compensate)
        outcomes = run_joint_frames_batch([session], [jobs])[0]
    else:
        outcomes = _run_sweep_sequential(session, payload, cp_values_samples, n_frames, compensate)
    return _fold_sweep(outcomes, payload, cp_values_samples, n_frames)


def _prepare_chain(
    compensate: bool, snr_db: float, payload_bytes: int, seed: int, params: OFDMParams
) -> tuple[SourceSyncSession, bytes]:
    """Measured, (optionally) converged session plus the sweep payload."""
    session, rng = _build_session(snr_db, seed, params)
    session.measure_delays()
    if compensate:
        session.converge_tracking(rounds=4)
    return session, bitutils.random_payload(payload_bytes, rng)


def _sweep_jobs(
    payload: bytes, cp_values_samples: tuple[int, ...], n_frames: int, compensate: bool
) -> list[JointFrameJob]:
    return [
        JointFrameJob(
            payload=payload,
            rate_mbps=6.0,
            data_cp_samples=cp,
            compensate=compensate,
            genie_timing=True,
        )
        for cp in cp_values_samples
        for _ in range(n_frames)
    ]


def _run_sweep_sequential(
    session: SourceSyncSession,
    payload: bytes,
    cp_values_samples: tuple[int, ...],
    n_frames: int,
    compensate: bool,
) -> list:
    return [
        session.run_joint_frame(
            payload,
            rate_mbps=6.0,
            data_cp_samples=cp,
            compensate=compensate,
            apply_tracking_feedback=False,
            genie_timing=True,
        )
        for cp in cp_values_samples
        for _ in range(n_frames)
    ]


def _fold_sweep(
    outcomes: list, payload: bytes, cp_values_samples: tuple[int, ...], n_frames: int
) -> list[float]:
    """Average effective SNR per CP value from the sweep's frame outcomes."""
    reference_cache: dict[int, np.ndarray] = {}

    def effective_snr(outcome) -> float:
        result = outcome.result
        if result.equalized_symbols is None:
            return float("nan")
        key = outcome.frame_config.n_data_symbols
        if key not in reference_cache:
            reference_cache[key] = encode_payload_to_symbols(payload, outcome.frame_config)
        reference = reference_cache[key]
        n = min(reference.shape[0], result.equalized_symbols.shape[0])
        return evm_to_snr_db(result.equalized_symbols[:n], reference[:n])

    snrs: list[float] = []
    for c in range(len(cp_values_samples)):
        values = [effective_snr(outcome) for outcome in outcomes[c * n_frames : (c + 1) * n_frames]]
        finite = [v for v in values if np.isfinite(v)]
        snrs.append(float(np.mean(finite)) if finite else float("nan"))
    return snrs


@experiment(
    name="fig13",
    description="Joint-transmission SNR vs cyclic prefix (SourceSync vs unsynchronized baseline)",
    config=Config,
    presets={
        "smoke": {"cp_values_samples": (0, 8, 32), "n_frames": 1},
        "quick": {"cp_values_samples": (0, 2, 4, 8, 16, 24, 32), "n_frames": 1},
        "full": {"n_frames": 4},
    },
    tags=("sync", "phy"),
    batched=True,
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 13: SNR vs CP for SourceSync and the unsynchronized baseline.

    In batched mode both chains' sweeps form *one* joint-frame ensemble, so
    the whole figure decodes with a single block-parallel Viterbi pass; the
    chains use independent generators, so the numbers match the per-chain
    sequential sweeps exactly.
    """
    cp_values_samples, params, snr_fraction = config.cp_values_samples, config.params, config.snr_fraction
    if config.batched:
        chains = [
            _prepare_chain(compensate, config.snr_db, 60, config.seed, params)
            for compensate in (True, False)
        ]
        jobs = [
            _sweep_jobs(payload, cp_values_samples, config.n_frames, compensate)
            for (session, payload), compensate in zip(chains, (True, False))
        ]
        outcomes = run_joint_frames_batch([session for session, _ in chains], jobs)
        sourcesync = _fold_sweep(
            outcomes[0], chains[0][1], cp_values_samples, config.n_frames
        )
        baseline = _fold_sweep(
            outcomes[1], chains[1][1], cp_values_samples, config.n_frames
        )
    else:
        sourcesync = measure_snr_vs_cp(
            cp_values_samples, True, config.snr_db, n_frames=config.n_frames,
            seed=config.seed, params=params, batched=False,
        )
        baseline = measure_snr_vs_cp(
            cp_values_samples, False, config.snr_db, n_frames=config.n_frames,
            seed=config.seed, params=params, batched=False,
        )
    cp_ns = [cp * params.sample_period_ns for cp in cp_values_samples]

    def cp_for_fraction(snrs: list[float]) -> float:
        values = np.asarray(snrs)
        if not np.any(np.isfinite(values)):
            return float("nan")
        peak_linear = 10 ** (np.nanmax(values) / 10.0)
        target_db = 10 * np.log10(snr_fraction * peak_linear)
        for cp, value in zip(cp_ns, values):
            if np.isfinite(value) and value >= target_db:
                return cp
        return cp_ns[-1]

    ss_cp = cp_for_fraction(sourcesync)
    base_cp = cp_for_fraction(baseline)
    return ExperimentResult(
        name="fig13",
        description="Joint-transmission SNR vs cyclic prefix (SourceSync vs unsynchronized baseline)",
        series={
            "cp_ns": cp_ns,
            "sourcesync_snr_db": sourcesync,
            "baseline_snr_db": baseline,
        },
        summary={
            "sourcesync_cp_for_95pct_peak_ns": ss_cp,
            "baseline_cp_for_95pct_peak_ns": base_cp,
            "cp_reduction_factor": base_cp / ss_cp if ss_cp and np.isfinite(ss_cp) and ss_cp > 0 else float("nan"),
        },
        paper_reference={
            "claim": "SourceSync reaches 95% of peak SNR with a 117 ns CP; the baseline needs 469 ns",
            "figure": "Fig. 13",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
