"""Figure 13: joint-transmission SNR vs cyclic prefix, SourceSync vs baseline.

Two senders transmit a joint frame to one receiver while the cyclic prefix
of the data section is swept.  With SourceSync's delay compensation the
senders arrive aligned, so the CP only has to absorb the channel's own
multipath spread; the unsynchronized baseline (co-sender joins without
compensating for detection/propagation delays) needs a much larger CP
before the effective SNR saturates.  The paper reports 117 ns vs 469 ns for
95%-of-peak SNR on its 128 MHz platform.

The effective SNR of a joint transmission is measured from the error vector
magnitude of the equalised data symbols against the known transmitted
constellation points, which captures inter-symbol interference caused by a
too-small CP on top of thermal noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import evm_to_snr_db
from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.core.ensemble import JointFrameJob, run_joint_frames_batch
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy import bits as bitutils
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.transmitter import encode_payload_to_symbols

__all__ = ["Config", "SPEC", "run", "measure_snr_vs_cp"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 13 reproduction.

    ``batched`` decodes the whole cyclic-prefix sweep as one joint-frame
    ensemble (single block-parallel Viterbi pass).  Frames are measured
    with the tracking loop *converged and frozen* — feedback is applied
    during the warm-up exchanges, not per measured frame — so the frames
    are independent and the batched and sequential paths produce identical
    seeded results.  ``n_topologies`` measures each chain over that many
    independent joint topologies and averages the per-CP SNR across them;
    every topology of both chains joins the same lockstep ensemble, so
    widening the sweep costs one wider Viterbi pass, not more Python loops.
    """

    cp_values_samples: tuple[int, ...] = (0, 2, 4, 6, 8, 12, 16, 20, 26, 32)
    snr_db: float = 20.0
    n_frames: int = 2
    n_topologies: int = 1
    seed: int = 5
    batched: bool = True
    params: OFDMParams = DEFAULT_PARAMS
    snr_fraction: float = 0.95

    def __post_init__(self) -> None:
        if not self.cp_values_samples:
            raise ValueError("cp_values_samples must be non-empty")
        if any(cp < 0 for cp in self.cp_values_samples):
            raise ValueError("cyclic-prefix lengths must be >= 0 samples")
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if self.n_topologies < 1:
            raise ValueError("n_topologies must be >= 1")
        if not 0.0 < self.snr_fraction <= 1.0:
            raise ValueError("snr_fraction must be in (0, 1]")


def _build_session(
    snr_db: float, seed: int, params: OFDMParams
) -> tuple[SourceSyncSession, np.random.Generator]:
    rng = np.random.default_rng(seed)
    topo = JointTopology.from_snrs(
        rng,
        lead_rx_snr_db=snr_db,
        cosender_rx_snr_db=[snr_db],
        lead_cosender_snr_db=[25.0],
        lead_rx_distance_m=15.0,
        cosender_rx_distance_m=[25.0],
        lead_cosender_distance_m=[20.0],
        params=params,
    )
    return SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng), rng


def _chain_seeds(seed: int, n_topologies: int) -> list:
    """Per-topology session seeds for one measurement chain.

    One topology keeps the legacy stream (the raw experiment seed, so
    historical pinned results survive); wider chains spawn one child
    sequence per topology, making every topology's stream independent.
    """
    if n_topologies == 1:
        return [seed]
    return list(np.random.SeedSequence(seed).spawn(n_topologies))


def measure_snr_vs_cp(
    cp_values_samples: tuple[int, ...],
    compensate: bool,
    snr_db: float = 20.0,
    payload_bytes: int = 60,
    n_frames: int = 2,
    seed: int = 5,
    params: OFDMParams = DEFAULT_PARAMS,
    batched: bool = True,
    n_topologies: int = 1,
) -> list[float]:
    """Average effective SNR at each CP value, with or without compensation.

    The tracking loop converges during warm-up exchanges and is then frozen
    for the measured frames (the channels are static, so per-frame feedback
    would only inject estimator noise into the sweep); the frames are
    therefore independent and, with ``batched``, decode as one ensemble
    through :func:`repro.core.ensemble.run_joint_frames_batch` with
    identical seeded results.  ``n_topologies`` widens the chain: the sweep
    is measured over that many independent joint topologies (sessions) and
    averaged per CP value, which is also what lets the lockstep engine
    amortise — every topology's frames decode in one ensemble.
    """
    folds = _measure_folds(
        cp_values_samples, compensate, snr_db, payload_bytes, n_frames, seed,
        params, batched, n_topologies,
    )
    return _mean_over_topologies(folds)


def _measure_folds(
    cp_values_samples: tuple[int, ...],
    compensate: bool,
    snr_db: float,
    payload_bytes: int,
    n_frames: int,
    seed: int,
    params: OFDMParams,
    batched: bool,
    n_topologies: int,
) -> list[list[float]]:
    """Per-topology SNR-vs-CP folds for one measurement chain."""
    chains = [
        _prepare_chain(compensate, snr_db, payload_bytes, chain_seed, params)
        for chain_seed in _chain_seeds(seed, n_topologies)
    ]
    if batched:
        jobs = [
            _sweep_jobs(payload, cp_values_samples, n_frames, compensate)
            for _, payload in chains
        ]
        outcome_lists = run_joint_frames_batch([session for session, _ in chains], jobs)
    else:
        outcome_lists = [
            _run_sweep_sequential(session, payload, cp_values_samples, n_frames, compensate)
            for session, payload in chains
        ]
    return [
        _fold_sweep(outcomes, payload, cp_values_samples, n_frames)
        for outcomes, (_, payload) in zip(outcome_lists, chains)
    ]


def _mean_over_topologies(folds: list[list[float]]) -> list[float]:
    """Per-CP mean over topology folds, ignoring NaN entries.

    A single topology passes through exactly (``x / 1 == x`` in IEEE
    arithmetic), so legacy single-session results are preserved bit for
    bit.
    """
    values = np.asarray(folds, dtype=float)
    finite = np.isfinite(values)
    counts = finite.sum(axis=0)
    sums = np.where(finite, values, 0.0).sum(axis=0)
    return [
        float(total / count) if count else float("nan")
        for total, count in zip(sums.tolist(), counts.tolist())
    ]


def _prepare_chain(
    compensate: bool, snr_db: float, payload_bytes: int, seed: int, params: OFDMParams
) -> tuple[SourceSyncSession, bytes]:
    """Measured, (optionally) converged session plus the sweep payload."""
    session, rng = _build_session(snr_db, seed, params)
    session.measure_delays()
    if compensate:
        session.converge_tracking(rounds=4)
    return session, bitutils.random_payload(payload_bytes, rng)


def _sweep_jobs(
    payload: bytes, cp_values_samples: tuple[int, ...], n_frames: int, compensate: bool
) -> list[JointFrameJob]:
    return [
        JointFrameJob(
            payload=payload,
            rate_mbps=6.0,
            data_cp_samples=cp,
            compensate=compensate,
            genie_timing=True,
        )
        for cp in cp_values_samples
        for _ in range(n_frames)
    ]


def _run_sweep_sequential(
    session: SourceSyncSession,
    payload: bytes,
    cp_values_samples: tuple[int, ...],
    n_frames: int,
    compensate: bool,
) -> list:
    return [
        session.run_joint_frame(
            payload,
            rate_mbps=6.0,
            data_cp_samples=cp,
            compensate=compensate,
            apply_tracking_feedback=False,
            genie_timing=True,
        )
        for cp in cp_values_samples
        for _ in range(n_frames)
    ]


def _fold_sweep(
    outcomes: list, payload: bytes, cp_values_samples: tuple[int, ...], n_frames: int
) -> list[float]:
    """Average effective SNR per CP value from the sweep's frame outcomes."""
    reference_cache: dict[int, np.ndarray] = {}

    def effective_snr(outcome) -> float:
        result = outcome.result
        if result.equalized_symbols is None:
            return float("nan")
        key = outcome.frame_config.n_data_symbols
        if key not in reference_cache:
            reference_cache[key] = encode_payload_to_symbols(payload, outcome.frame_config)
        reference = reference_cache[key]
        n = min(reference.shape[0], result.equalized_symbols.shape[0])
        return evm_to_snr_db(result.equalized_symbols[:n], reference[:n])

    snrs: list[float] = []
    for c in range(len(cp_values_samples)):
        values = [effective_snr(outcome) for outcome in outcomes[c * n_frames : (c + 1) * n_frames]]
        finite = [v for v in values if np.isfinite(v)]
        snrs.append(float(np.mean(finite)) if finite else float("nan"))
    return snrs


@experiment(
    name="fig13",
    description="Joint-transmission SNR vs cyclic prefix (SourceSync vs unsynchronized baseline)",
    config=Config,
    presets={
        "smoke": {"cp_values_samples": (0, 8, 32), "n_frames": 1},
        # Three topologies per chain widen the quick ensemble to 42 lockstep
        # jobs per chain, enough batch width for the joint-frame engine to
        # amortise its per-call overhead (ROADMAP follow-up to PR 3).
        "quick": {"cp_values_samples": (0, 2, 4, 8, 16, 24, 32), "n_frames": 1, "n_topologies": 3},
        "full": {"n_frames": 4, "n_topologies": 4},
    },
    tags=("sync", "phy"),
    batched=True,
    summary_keys={
        "sourcesync_cp_for_95pct_peak_ns": "smallest CP (ns) at which SourceSync reaches 95% of its peak SNR, averaged over topologies (paper: 117 ns)",
        "baseline_cp_for_95pct_peak_ns": "smallest CP (ns) at which the unsynchronized baseline reaches 95% of peak, averaged over topologies (paper: 469 ns)",
        "cp_reduction_factor": "baseline CP requirement divided by the SourceSync requirement",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 13: SNR vs CP for SourceSync and the unsynchronized baseline.

    In batched mode both chains' sweeps form *one* joint-frame ensemble, so
    the whole figure decodes with a single block-parallel Viterbi pass; the
    chains use independent generators, so the numbers match the per-chain
    sequential sweeps exactly.
    """
    cp_values_samples, params, snr_fraction = config.cp_values_samples, config.params, config.snr_fraction
    if config.batched:
        # Both chains (compensated and baseline), each over n_topologies
        # sessions, decode as ONE joint-frame ensemble: 2 * n_topologies
        # lockstep lanes and a single block-parallel Viterbi pass.
        chains = [
            (
                compensate,
                [
                    _prepare_chain(compensate, config.snr_db, 60, chain_seed, params)
                    for chain_seed in _chain_seeds(config.seed, config.n_topologies)
                ],
            )
            for compensate in (True, False)
        ]
        sessions = [session for _, prepared in chains for session, _ in prepared]
        jobs = [
            _sweep_jobs(payload, cp_values_samples, config.n_frames, compensate)
            for compensate, prepared in chains
            for _, payload in prepared
        ]
        outcome_lists = run_joint_frames_batch(sessions, jobs)
        per_chain_folds = []
        position = 0
        for _, prepared in chains:
            folds = []
            for _, payload in prepared:
                folds.append(
                    _fold_sweep(outcome_lists[position], payload, cp_values_samples, config.n_frames)
                )
                position += 1
            per_chain_folds.append(folds)
        sourcesync_folds, baseline_folds = per_chain_folds
    else:
        sourcesync_folds = _measure_folds(
            cp_values_samples, True, config.snr_db, 60, config.n_frames,
            config.seed, params, False, config.n_topologies,
        )
        baseline_folds = _measure_folds(
            cp_values_samples, False, config.snr_db, 60, config.n_frames,
            config.seed, params, False, config.n_topologies,
        )
    sourcesync = _mean_over_topologies(sourcesync_folds)
    baseline = _mean_over_topologies(baseline_folds)
    cp_ns = [cp * params.sample_period_ns for cp in cp_values_samples]

    def cp_for_fraction(snrs: list[float]) -> float:
        """Smallest swept CP (ns) whose SNR reaches ``snr_fraction`` of peak."""
        values = np.asarray(snrs)
        if not np.any(np.isfinite(values)):
            return float("nan")
        peak_linear = 10 ** (np.nanmax(values) / 10.0)
        target_db = 10 * np.log10(snr_fraction * peak_linear)
        for cp, value in zip(cp_ns, values):
            if np.isfinite(value) and value >= target_db:
                return cp
        return cp_ns[-1]

    def mean_cp_requirement(folds: list[list[float]]) -> float:
        """Average the per-topology CP requirements.

        Each topology's curve is thresholded against its *own* peak before
        averaging — averaging the curves first would blur topologies with
        different peak SNRs into a flatter sweep and overstate the CP a
        typical deployment needs.  One topology reduces to the legacy
        single-curve statistic exactly.
        """
        values = [cp_for_fraction(fold) for fold in folds]
        finite = [v for v in values if np.isfinite(v)]
        return float(np.sum(finite) / len(finite)) if finite else float("nan")

    ss_cp = mean_cp_requirement(sourcesync_folds)
    base_cp = mean_cp_requirement(baseline_folds)
    return ExperimentResult(
        name="fig13",
        description="Joint-transmission SNR vs cyclic prefix (SourceSync vs unsynchronized baseline)",
        series={
            "cp_ns": cp_ns,
            "sourcesync_snr_db": sourcesync,
            "baseline_snr_db": baseline,
        },
        summary={
            "sourcesync_cp_for_95pct_peak_ns": ss_cp,
            "baseline_cp_for_95pct_peak_ns": base_cp,
            "cp_reduction_factor": base_cp / ss_cp if ss_cp and np.isfinite(ss_cp) and ss_cp > 0 else float("nan"),
        },
        paper_reference={
            "claim": "SourceSync reaches 95% of peak SNR with a 117 ns CP; the baseline needs 469 ns",
            "figure": "Fig. 13",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
