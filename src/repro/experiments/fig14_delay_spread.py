"""Figure 14: time-domain delay spread of a single sender's channel.

The paper plots ``|H|^2`` against tap index for one transmitter's channel at
the WiGLAN platform's 128 MHz sampling rate, showing roughly 15 significant
taps — which is why SourceSync still needs a ~15-sample CP even with perfect
synchronization (the CP has to cover the channel's own multipath spread).

We reproduce the figure from the WiGLAN-rate multipath profile
(:data:`repro.channel.multipath.WIGLAN_PROFILE`), averaging the tap powers
of many channel realisations and reporting how many taps remain significant.

The whole Monte-Carlo ensemble is drawn with one batched generator call
(:func:`repro.experiments.batch.draw_tap_ensemble`), which consumes the RNG
stream in the same order as the per-realisation loop it replaced, so the
seeded channel realisations are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.multipath import WIGLAN_PROFILE, MultipathProfile
from repro.experiments.batch import draw_tap_ensemble
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment

__all__ = ["Config", "SPEC", "run", "average_tap_powers", "count_significant_taps"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 14 reproduction."""

    profile: MultipathProfile = WIGLAN_PROFILE
    n_realizations: int = 200
    n_taps_plotted: int = 70
    seed: int = 14

    def __post_init__(self) -> None:
        if self.n_realizations < 1:
            raise ValueError("n_realizations must be >= 1")
        if self.n_taps_plotted < 1:
            raise ValueError("n_taps_plotted must be >= 1")


def average_tap_powers(
    profile: MultipathProfile = WIGLAN_PROFILE,
    n_realizations: int = 200,
    n_taps_plotted: int = 70,
    seed: int = 14,
) -> np.ndarray:
    """Average ``|h_k|^2`` over channel realisations, padded to the plot length."""
    ensemble = draw_tap_ensemble(profile, n_realizations, np.random.default_rng(seed))
    tap_powers = np.abs(ensemble.taps[:, :n_taps_plotted]) ** 2
    powers = np.zeros(n_taps_plotted)
    powers[: tap_powers.shape[1]] = tap_powers.mean(axis=0)
    return powers


def count_significant_taps(tap_powers: np.ndarray, threshold_fraction: float = 0.02) -> int:
    """Number of taps holding more than a threshold fraction of the peak power."""
    tap_powers = np.asarray(tap_powers, dtype=np.float64)
    if tap_powers.size == 0:
        return 0
    peak = tap_powers.max()
    if peak <= 0:
        return 0
    significant = np.nonzero(tap_powers >= threshold_fraction * peak)[0]
    return int(significant[-1] + 1) if significant.size else 0


@experiment(
    name="fig14",
    description="Delay spread of a single sender (|H|^2 vs tap index, 128 MHz sampling)",
    config=Config,
    presets={
        "smoke": {"n_realizations": 20},
        "quick": {"n_realizations": 100},
        "full": {"n_realizations": 1000},
    },
    tags=("channel", "phy"),
    batched=True,
    summary_keys={
        "significant_taps": "number of channel taps above the significance threshold (paper: ~15)",
        "delay_spread_ns": "delay spread in ns implied by the significant-tap count (paper: ~117 ns)",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 14: channel power vs tap index."""
    n_taps_plotted = config.n_taps_plotted
    powers = average_tap_powers(config.profile, config.n_realizations, n_taps_plotted, config.seed)
    n_significant = count_significant_taps(powers)
    sample_period_ns = 1e9 / 128e6  # the WiGLAN platform samples at 128 MHz
    return ExperimentResult(
        name="fig14",
        description="Delay spread of a single sender (|H|^2 vs tap index, 128 MHz sampling)",
        series={
            "tap_index": list(range(n_taps_plotted)),
            "tap_power": powers.tolist(),
        },
        summary={
            "significant_taps": float(n_significant),
            "delay_spread_ns": float(n_significant * sample_period_ns),
        },
        paper_reference={
            "claim": "the channel has around 15 significant taps (~117 ns), setting the minimum useful CP",
            "figure": "Fig. 14",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
