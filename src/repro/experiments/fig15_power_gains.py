"""Figure 15: power gains of joint transmission across SNR regimes.

Two senders and a receiver are placed so that the individual sender-receiver
links fall in a low (<6 dB), medium (6-12 dB) or high (>12 dB) SNR regime;
the experiment compares the average SNR across subcarriers when each sender
transmits alone against the joint SourceSync transmission.  The paper
reports a 2-3 dB gain in every regime (two equal-power senders add up to
3 dB of received power).

The measurement is taken exactly the way the paper's receiver would take
it: from the per-sender channel estimates of a received joint-frame header
(lead preamble + co-sender training), so the whole synchronization and
estimation path is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.snr import SNR_REGIMES
from repro.channel.awgn import linear_to_db
from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.core.ensemble import (
    converge_tracking_batch,
    measure_delays_batch,
    run_header_exchanges_batch,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "measure_regime", "REGIME_TARGET_SNR_DB"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 15 reproduction.

    ``batched`` advances every placement of every regime in lockstep
    through the batched joint-frame core path; per-placement spawned
    generators make the batched and sequential paths produce identical
    seeded results.
    """

    n_placements: int = 4
    seed: int = 15
    batched: bool = True
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.n_placements < 1:
            raise ValueError("n_placements must be >= 1")

#: Representative average link SNRs for each regime of §8.2.
REGIME_TARGET_SNR_DB = {"low": 4.0, "medium": 9.0, "high": 16.0}


def _snr_from_channel(channel_power: np.ndarray, noise_var: float) -> float:
    """Average SNR in dB from per-subcarrier channel power and noise."""
    return float(linear_to_db(np.mean(channel_power) / max(noise_var, 1e-15)))


def _placement_session(
    target_snr_db: float, rng: np.random.Generator, params: OFDMParams
) -> SourceSyncSession:
    """Build one placement's session from that placement's own generator."""
    snr_a = target_snr_db + float(rng.uniform(-1.5, 1.5))
    snr_b = target_snr_db + float(rng.uniform(-1.5, 1.5))
    topo = JointTopology.from_snrs(
        rng,
        lead_rx_snr_db=snr_a,
        cosender_rx_snr_db=[snr_b],
        lead_cosender_snr_db=[20.0],
        params=params,
    )
    return SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng)


def _regime_values(
    channels_list: list,
    params: OFDMParams,
) -> tuple[list[float], list[float], list[np.ndarray]]:
    """Fold per-placement header channel estimates into the Fig. 15 metrics."""
    single: list[float] = []
    joint: list[float] = []
    profiles: list[np.ndarray] = []
    for channels in channels_list:
        if channels is None:
            continue
        lead_power = np.abs(channels.lead.on_bins(params.occupied_bins())) ** 2
        single.append(_snr_from_channel(lead_power, channels.noise_var))
        co_list = [ch for ch in channels.cosenders if ch is not None]
        if co_list:
            co_power = np.abs(co_list[0].on_bins(params.occupied_bins())) ** 2
            single.append(_snr_from_channel(co_power, channels.noise_var))
            joint_power = lead_power + co_power
        else:
            joint_power = lead_power
        joint.append(_snr_from_channel(joint_power, channels.noise_var))
        profiles.append(channels.per_subcarrier_snr_db())
    return single, joint, profiles


def measure_regime(
    target_snr_db: float,
    n_placements: int = 4,
    seed: int = 15,
    params: OFDMParams = DEFAULT_PARAMS,
    batched: bool = True,
    rngs: list[np.random.Generator] | None = None,
) -> tuple[list[float], list[float], list[np.ndarray]]:
    """Single-sender and joint average SNRs for placements in one regime.

    Returns ``(single_sender_snrs, joint_snrs, per_subcarrier_joint_profiles)``;
    the single-sender list contains both senders of every placement.  Each
    placement draws from its own spawned generator (``rngs`` overrides
    them), so the lockstep ``batched`` path and the sequential path produce
    the same seeded results.
    """
    if rngs is None:
        root = np.random.SeedSequence((seed, int(target_snr_db * 10)))
        rngs = [np.random.default_rng(child) for child in root.spawn(n_placements)]
    channels_list = []
    if batched:
        sessions = [_placement_session(target_snr_db, rng, params) for rng in rngs]
        measure_delays_batch(sessions)
        converge_tracking_batch(sessions, rounds=3)
        outcomes = run_header_exchanges_batch(sessions, repeats=1, apply_tracking_feedback=False)
        channels_list = [outcome[0].channels for outcome in outcomes]
    else:
        for rng in rngs:
            session = _placement_session(target_snr_db, rng, params)
            session.measure_delays()
            session.converge_tracking(rounds=3)
            channels_list.append(
                session.run_header_exchange(apply_tracking_feedback=False).channels
            )
    return _regime_values(channels_list, params)


@experiment(
    name="fig15",
    description="Average SNR of single sender vs SourceSync joint transmission per SNR regime",
    config=Config,
    presets={
        "smoke": {"n_placements": 1},
        "quick": {"n_placements": 3},
        "full": {"n_placements": 10},
    },
    tags=("phy", "diversity"),
    batched=True,
    summary_keys={
        "min_gain_db": "smallest joint-over-single average SNR gain (dB) across the regimes (paper: 2-3 dB)",
        "max_gain_db": "largest joint-over-single average SNR gain (dB) across the regimes",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 15: average SNR, single sender vs SourceSync, per regime.

    In batched mode every placement of *every* regime advances in one
    lockstep group (the per-regime spawned generators are identical either
    way, so both paths report the same seeded numbers).
    """
    regimes = list(SNR_REGIMES.keys())
    regime_rngs = {
        regime: [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(
                (config.seed, int(REGIME_TARGET_SNR_DB[regime] * 10))
            ).spawn(config.n_placements)
        ]
        for regime in regimes
    }
    per_regime: dict[str, tuple[list[float], list[float], list[np.ndarray]]] = {}
    if config.batched:
        cells = [
            (regime, _placement_session(REGIME_TARGET_SNR_DB[regime], rng, config.params))
            for regime in regimes
            for rng in regime_rngs[regime]
        ]
        sessions = [session for _, session in cells]
        measure_delays_batch(sessions)
        converge_tracking_batch(sessions, rounds=3)
        outcomes = run_header_exchanges_batch(sessions, repeats=1, apply_tracking_feedback=False)
        for regime in regimes:
            channels_list = [
                outcome[0].channels
                for (cell_regime, _), outcome in zip(cells, outcomes)
                if cell_regime == regime
            ]
            per_regime[regime] = _regime_values(channels_list, config.params)
    else:
        for regime in regimes:
            per_regime[regime] = measure_regime(
                REGIME_TARGET_SNR_DB[regime],
                config.n_placements,
                config.seed,
                config.params,
                batched=False,
                rngs=regime_rngs[regime],
            )
    single_means: list[float] = []
    joint_means: list[float] = []
    gains: list[float] = []
    for regime in regimes:
        single, joint, _ = per_regime[regime]
        single_mean = float(np.mean(single)) if single else float("nan")
        joint_mean = float(np.mean(joint)) if joint else float("nan")
        single_means.append(single_mean)
        joint_means.append(joint_mean)
        gains.append(joint_mean - single_mean)
    return ExperimentResult(
        name="fig15",
        description="Average SNR of single sender vs SourceSync joint transmission per SNR regime",
        series={
            "regime": regimes,
            "single_sender_snr_db": single_means,
            "sourcesync_snr_db": joint_means,
            "gain_db": gains,
        },
        summary={
            "min_gain_db": float(np.nanmin(gains)),
            "max_gain_db": float(np.nanmax(gains)),
        },
        paper_reference={
            "claim": "SourceSync improves average SNR by 2-3 dB in the low, medium and high regimes",
            "figure": "Fig. 15",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
