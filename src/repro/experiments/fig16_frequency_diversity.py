"""Figure 16: per-subcarrier SNR profiles — frequency diversity gains.

For a high-, medium- and low-SNR placement the paper plots the SNR of every
OFDM subcarrier for each sender transmitting alone and for the SourceSync
joint transmission, showing that the joint profile is both higher and
*flatter*: the two senders rarely fade in the same subcarrier, so combining
them removes the deep notches that hurt 802.11's convolutional code.

This experiment measures the profiles from the receiver's per-sender channel
estimates of a received joint header (the same data Fig. 15 aggregates) and
summarises flatness as the per-subcarrier SNR standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.snr import flatness_db
from repro.channel.awgn import linear_to_db
from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.fig15_power_gains import REGIME_TARGET_SNR_DB
from repro.experiments.registry import experiment
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "measure_profiles"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 16 reproduction.

    The figure needs exactly one placement per SNR regime, so the workload
    is the same at every preset; ``max_attempts`` bounds the topology
    re-draws when a placement fails to produce a co-sender estimate.
    """

    seed: int = 16
    max_attempts: int = 5
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


def measure_profiles(
    target_snr_db: float,
    seed: int = 16,
    params: OFDMParams = DEFAULT_PARAMS,
    max_attempts: int = 5,
) -> dict[str, np.ndarray] | None:
    """Per-subcarrier SNR of sender 1, sender 2 and the joint transmission."""
    rng = np.random.default_rng(seed + int(target_snr_db * 7))
    for _ in range(max_attempts):
        topo = JointTopology.from_snrs(
            rng,
            lead_rx_snr_db=target_snr_db,
            cosender_rx_snr_db=[target_snr_db],
            lead_cosender_snr_db=[20.0],
            params=params,
        )
        session = SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng)
        session.measure_delays()
        session.converge_tracking(rounds=3)
        channels = session.run_header_exchange(apply_tracking_feedback=False).channels
        if channels is None:
            continue
        co_list = [ch for ch in channels.cosenders if ch is not None]
        if not co_list:
            continue
        bins = params.occupied_bins()
        noise = max(channels.noise_var, 1e-15)
        sender1 = np.abs(channels.lead.on_bins(bins)) ** 2 / noise
        sender2 = np.abs(co_list[0].on_bins(bins)) ** 2 / noise
        joint = sender1 + sender2
        return {
            "sender1_snr_db": np.asarray(linear_to_db(sender1)),
            "sender2_snr_db": np.asarray(linear_to_db(sender2)),
            "sourcesync_snr_db": np.asarray(linear_to_db(joint)),
        }
    return None


@experiment(
    name="fig16",
    description="Per-subcarrier SNR of each sender and of the SourceSync joint transmission",
    config=Config,
    presets={"smoke": {}, "quick": {}, "full": {}},
    tags=("phy", "diversity"),
    summary_keys={
        "{regime}_single_flatness_db": "per-subcarrier SNR standard deviation of the better single sender in the {regime} regime",
        "{regime}_sourcesync_flatness_db": "per-subcarrier SNR standard deviation of the joint transmission in the {regime} regime",
        "{regime}_gain_db": "joint-transmission mean SNR gain (dB) over the senders' average in the {regime} regime",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 16(a-c): per-subcarrier SNR in the three regimes."""
    params = config.params
    series: dict[str, list[float]] = {"subcarrier_index": list(range(params.n_occupied_subcarriers))}
    summary: dict[str, float] = {}
    for regime, target in REGIME_TARGET_SNR_DB.items():
        profiles = measure_profiles(target, seed=config.seed, params=params, max_attempts=config.max_attempts)
        if profiles is None:
            continue
        for key, values in profiles.items():
            series[f"{regime}_{key}"] = values.tolist()
        single_flatness = 0.5 * (
            flatness_db(profiles["sender1_snr_db"]) + flatness_db(profiles["sender2_snr_db"])
        )
        joint_flatness = flatness_db(profiles["sourcesync_snr_db"])
        summary[f"{regime}_single_flatness_db"] = single_flatness
        summary[f"{regime}_sourcesync_flatness_db"] = joint_flatness
        summary[f"{regime}_gain_db"] = float(
            np.mean(profiles["sourcesync_snr_db"])
            - 0.5 * (np.mean(profiles["sender1_snr_db"]) + np.mean(profiles["sender2_snr_db"]))
        )
    return ExperimentResult(
        name="fig16",
        description="Per-subcarrier SNR of each sender and of the SourceSync joint transmission",
        series=series,
        summary=summary,
        paper_reference={
            "claim": "SourceSync improves per-subcarrier SNR and yields a flatter profile than either sender",
            "figure": "Fig. 16(a)-(c)",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
