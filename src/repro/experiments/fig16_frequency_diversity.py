"""Figure 16: per-subcarrier SNR profiles — frequency diversity gains.

For a high-, medium- and low-SNR placement the paper plots the SNR of every
OFDM subcarrier for each sender transmitting alone and for the SourceSync
joint transmission, showing that the joint profile is both higher and
*flatter*: the two senders rarely fade in the same subcarrier, so combining
them removes the deep notches that hurt 802.11's convolutional code.

This experiment measures the profiles from the receiver's per-sender channel
estimates of a received joint header (the same data Fig. 15 aggregates) and
summarises flatness as the per-subcarrier SNR standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.snr import flatness_db
from repro.channel.awgn import linear_to_db
from repro.core import JointTopology, SourceSyncSession, SourceSyncConfig
from repro.engine import Lane, LockstepScheduler
from repro.experiments.common import ExperimentResult
from repro.experiments.fig15_power_gains import REGIME_TARGET_SNR_DB
from repro.experiments.registry import experiment
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "measure_profiles", "measure_profiles_batched"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 16 reproduction.

    The figure needs exactly one placement per SNR regime, so the workload
    is the same at every preset; ``max_attempts`` bounds the topology
    re-draws when a placement fails to produce a co-sender estimate.
    ``batched`` runs the regimes' placement attempts in lockstep through
    the shared engine (bit-identical to the per-regime sequential path).
    """

    seed: int = 16
    max_attempts: int = 5
    params: OFDMParams = DEFAULT_PARAMS
    batched: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


def _regime_rng(target_snr_db: float, seed: int) -> np.random.Generator:
    """The regime's dedicated generator (both execution paths share it)."""
    return np.random.default_rng(seed + int(target_snr_db * 7))


def _profiles_from_channels(channels, params: OFDMParams) -> dict[str, np.ndarray] | None:
    """Per-subcarrier SNR dict from one exchange's channel estimates.

    Returns ``None`` when no co-sender channel was estimated — the caller
    treats that as a failed placement attempt.
    """
    co_list = [ch for ch in channels.cosenders if ch is not None]
    if not co_list:
        return None
    bins = params.occupied_bins()
    noise = max(channels.noise_var, 1e-15)
    sender1 = np.abs(channels.lead.on_bins(bins)) ** 2 / noise
    sender2 = np.abs(co_list[0].on_bins(bins)) ** 2 / noise
    joint = sender1 + sender2
    return {
        "sender1_snr_db": np.asarray(linear_to_db(sender1)),
        "sender2_snr_db": np.asarray(linear_to_db(sender2)),
        "sourcesync_snr_db": np.asarray(linear_to_db(joint)),
    }


def measure_profiles(
    target_snr_db: float,
    seed: int = 16,
    params: OFDMParams = DEFAULT_PARAMS,
    max_attempts: int = 5,
) -> dict[str, np.ndarray] | None:
    """Per-subcarrier SNR of sender 1, sender 2 and the joint transmission."""
    rng = _regime_rng(target_snr_db, seed)
    for _ in range(max_attempts):
        topo = JointTopology.from_snrs(
            rng,
            lead_rx_snr_db=target_snr_db,
            cosender_rx_snr_db=[target_snr_db],
            lead_cosender_snr_db=[20.0],
            params=params,
        )
        session = SourceSyncSession(topo, SourceSyncConfig(params=params), rng=rng)
        session.measure_delays()
        session.converge_tracking(rounds=3)
        channels = session.run_header_exchange(apply_tracking_feedback=False).channels
        if channels is None:
            continue
        profiles = _profiles_from_channels(channels, params)
        if profiles is not None:
            return profiles
    return None


class _RegimeLane(Lane):
    """One SNR regime's placement search, attempts advancing in lockstep.

    Each wave is one placement attempt: every live regime draws a topology
    and session from its own generator (in lane order), then the
    measurement sequence — probe legs, tracking convergence, the header
    exchange — runs through the lockstep kernels of
    :mod:`repro.core.ensemble`, which consume each session's generator in
    exactly its sequential order.  A regime finishes on its first usable
    co-sender estimate or after ``max_attempts`` tries.
    """

    stacked = True

    def __init__(
        self, target_snr_db: float, seed: int, params: OFDMParams, max_attempts: int
    ) -> None:
        self.target_snr_db = target_snr_db
        self.rng = _regime_rng(target_snr_db, seed)
        self.after = None
        self.params = params
        self.max_attempts = max_attempts
        self.attempts = 0
        self.profiles: dict[str, np.ndarray] | None = None

    @property
    def finished(self) -> bool:
        """Done on the first usable estimate or when attempts run out."""
        return self.profiles is not None or self.attempts >= self.max_attempts

    @classmethod
    def advance_lanes(cls, lanes: list["_RegimeLane"]) -> None:
        """One placement attempt per live regime; measurement runs batched."""
        from repro.core.ensemble import (
            converge_tracking_batch,
            measure_delays_batch,
            run_header_exchanges_batch,
        )

        sessions = []
        for lane in lanes:
            topo = JointTopology.from_snrs(
                lane.rng,
                lead_rx_snr_db=lane.target_snr_db,
                cosender_rx_snr_db=[lane.target_snr_db],
                lead_cosender_snr_db=[20.0],
                params=lane.params,
            )
            sessions.append(
                SourceSyncSession(topo, SourceSyncConfig(params=lane.params), rng=lane.rng)
            )
        measure_delays_batch(sessions)
        converge_tracking_batch(sessions, rounds=3)
        outcomes = run_header_exchanges_batch(
            sessions, repeats=1, apply_tracking_feedback=False
        )
        for lane, per_repeat in zip(lanes, outcomes):
            lane.attempts += 1
            channels = per_repeat[0].channels
            if channels is not None:
                lane.profiles = _profiles_from_channels(channels, lane.params)

    def result(self) -> dict[str, np.ndarray] | None:
        """The regime's profile dict (None when every attempt failed)."""
        return self.profiles


def measure_profiles_batched(
    targets: list[float],
    seed: int = 16,
    params: OFDMParams = DEFAULT_PARAMS,
    max_attempts: int = 5,
) -> list[dict[str, np.ndarray] | None]:
    """Profiles for every target regime at once, one result per target."""
    lanes = [_RegimeLane(target, seed, params, max_attempts) for target in targets]
    return LockstepScheduler().run(lanes)


@experiment(
    name="fig16",
    description="Per-subcarrier SNR of each sender and of the SourceSync joint transmission",
    config=Config,
    presets={"smoke": {}, "quick": {}, "full": {}},
    tags=("phy", "diversity"),
    batched=True,
    summary_keys={
        "{regime}_single_flatness_db": "per-subcarrier SNR standard deviation of the better single sender in the {regime} regime",
        "{regime}_sourcesync_flatness_db": "per-subcarrier SNR standard deviation of the joint transmission in the {regime} regime",
        "{regime}_gain_db": "joint-transmission mean SNR gain (dB) over the senders' average in the {regime} regime",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 16(a-c): per-subcarrier SNR in the three regimes."""
    params = config.params
    series: dict[str, list[float]] = {"subcarrier_index": list(range(params.n_occupied_subcarriers))}
    summary: dict[str, float] = {}
    if config.batched:
        batched = measure_profiles_batched(
            list(REGIME_TARGET_SNR_DB.values()),
            seed=config.seed, params=params, max_attempts=config.max_attempts,
        )
        per_regime = dict(zip(REGIME_TARGET_SNR_DB, batched))
    for regime, target in REGIME_TARGET_SNR_DB.items():
        if config.batched:
            profiles = per_regime[regime]
        else:
            profiles = measure_profiles(
                target, seed=config.seed, params=params, max_attempts=config.max_attempts
            )
        if profiles is None:
            continue
        for key, values in profiles.items():
            series[f"{regime}_{key}"] = values.tolist()
        single_flatness = 0.5 * (
            flatness_db(profiles["sender1_snr_db"]) + flatness_db(profiles["sender2_snr_db"])
        )
        joint_flatness = flatness_db(profiles["sourcesync_snr_db"])
        summary[f"{regime}_single_flatness_db"] = single_flatness
        summary[f"{regime}_sourcesync_flatness_db"] = joint_flatness
        summary[f"{regime}_gain_db"] = float(
            np.mean(profiles["sourcesync_snr_db"])
            - 0.5 * (np.mean(profiles["sender1_snr_db"]) + np.mean(profiles["sender2_snr_db"]))
        )
    return ExperimentResult(
        name="fig16",
        description="Per-subcarrier SNR of each sender and of the SourceSync joint transmission",
        series=series,
        summary=summary,
        paper_reference={
            "claim": "SourceSync improves per-subcarrier SNR and yields a flatter profile than either sender",
            "figure": "Fig. 16(a)-(c)",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
