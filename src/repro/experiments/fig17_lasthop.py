"""Figure 17: last-hop throughput CDF — single best AP vs SourceSync.

Two nodes act as APs and one as a client, placed at random; for every
placement the experiment measures the downlink throughput when the client
is served by its single best AP (selective diversity, the red curve of
Fig. 17) and when both APs transmit jointly with SourceSync (the blue
curve).  SampleRate drives rate adaptation in both cases; with SourceSync
the lead AP's adaptation sees the combined channel and usually settles at a
higher 802.11 rate, which is where the paper's median 1.57x gain comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.channel.propagation import PathLossModel
from repro.experiments.batch import run_seed_chunks, run_trials
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.lasthop.controller import SourceSyncController
from repro.lasthop.simulation import simulate_downlink
from repro.net.topology import Testbed
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "simulate_placement"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 17 reproduction.

    ``jobs`` runs the (independent, per-trial-seeded) placements across a
    process pool; results are identical for any value.  ``batched`` runs
    the placement ensemble through the lockstep last-hop engine
    (:func:`repro.routing.ensemble.simulate_downlink_ensemble`): all
    placements advance packet-by-packet in waves with SampleRate state and
    delivery-probability tables held in stacked arrays, while each
    placement's generator sees its sequential draw order — results match
    the per-placement path (``batched=False``) bit-for-bit.
    """

    n_placements: int = 25
    n_packets: int = 120
    seed: int = 17
    batched: bool = True
    jobs: int = 1
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.n_placements < 1:
            raise ValueError("n_placements must be >= 1")
        if self.n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


def _build_placement(
    rng: np.random.Generator,
    params: OFDMParams = DEFAULT_PARAMS,
    ap_separation_m: float = 45.0,
    min_reachable_snr_db: float = 5.0,
    max_attempts: int = 20,
) -> tuple[Testbed, SourceSyncController, int]:
    """Draw one admitted client placement (testbed, controller, client id).

    The two APs are a fixed distance apart and the client falls at random in
    the band between and around them — the "poor connectivity to multiple
    nearby APs" regime the paper targets (§7.1).  Placements where the
    client is unreachable even from its best AP are re-drawn, since they
    would never be admitted to a real WLAN.
    """
    for _ in range(max_attempts):
        positions = [
            (0.0, 0.0),
            (ap_separation_m, 0.0),
            (
                float(rng.uniform(0.15, 0.85) * ap_separation_m),
                float(rng.uniform(5.0, 40.0)),
            ),
        ]
        testbed = Testbed.from_positions(
            positions,
            rng=rng,
            params=params,
            path_loss=PathLossModel(exponent=3.5, shadowing_sigma_db=6.0),
        )
        client = 2
        best_snr = max(
            testbed.link_average_snr_db(0, client), testbed.link_average_snr_db(1, client)
        )
        if best_snr >= min_reachable_snr_db:
            break
    controller = SourceSyncController(testbed, ap_ids=[0, 1], max_aps_per_client=2)
    return testbed, controller, client


def simulate_placement(
    rng: np.random.Generator,
    n_packets: int = 150,
    params: OFDMParams = DEFAULT_PARAMS,
    ap_separation_m: float = 45.0,
    min_reachable_snr_db: float = 5.0,
    max_attempts: int = 20,
) -> tuple[float, float]:
    """(best-AP throughput, SourceSync throughput) for one random placement."""
    testbed, controller, client = _build_placement(
        rng, params, ap_separation_m, min_reachable_snr_db, max_attempts
    )
    best = simulate_downlink(testbed, controller, client, scheme="best_ap", n_packets=n_packets, rng=rng)
    joint = simulate_downlink(testbed, controller, client, scheme="sourcesync", n_packets=n_packets, rng=rng)
    return best.throughput_mbps, joint.throughput_mbps


def _placement_ensemble_chunk(
    children: list[np.random.SeedSequence],
    n_packets: int,
    params: OFDMParams,
) -> list[tuple[float, float]]:
    """Run a chunk of placement trials through the lockstep last-hop engine.

    Per lane the draw order matches a sequential :func:`simulate_placement`
    exactly: placement/admission draws, then the best-AP stream, then the
    SourceSync stream.  The two schemes share one generator, so each
    placement contributes a *chained* lane pair (``after=``) and the whole
    chunk — both schemes of every placement — advances as one ensemble
    call whose retry sub-waves gather probabilities and airtimes across
    schemes from one stacked table.
    """
    from repro.routing.ensemble import DownlinkLane, simulate_downlink_ensemble

    rngs = [np.random.default_rng(child) for child in children]
    placements = [_build_placement(rng, params) for rng in rngs]
    lanes: list[DownlinkLane] = []
    for (testbed, controller, client), rng in zip(placements, rngs):
        best = DownlinkLane(testbed, controller, client, "best_ap", rng, n_packets=n_packets)
        joint = DownlinkLane(
            testbed, controller, client, "sourcesync", rng, n_packets=n_packets, after=best
        )
        lanes.extend([best, joint])
    results = simulate_downlink_ensemble(lanes)
    return [
        (results[2 * i].throughput_mbps, results[2 * i + 1].throughput_mbps)
        for i in range(len(placements))
    ]


def _run_placement_ensemble(
    n_placements: int,
    n_packets: int,
    seed: int,
    params: OFDMParams,
    jobs: int = 1,
) -> list[tuple[float, float]]:
    """Lockstep counterpart of the ``run_trials`` placement loop.

    Per-trial seeding is shared with the sequential path through
    :func:`repro.experiments.batch.run_seed_chunks`, which also shards the
    lanes across a process pool (``jobs > 1``) without changing any output.
    """
    return run_seed_chunks(_placement_ensemble_chunk, n_placements, seed, jobs, n_packets, params)


def _placement_trial(
    _index: int, rng: np.random.Generator, n_packets: int, params: OFDMParams
) -> tuple[float, float]:
    """Module-level trial body so ``run_trials`` can pickle it for ``jobs > 1``."""
    return simulate_placement(rng, n_packets=n_packets, params=params)


@experiment(
    name="fig17",
    description="Last-hop downlink throughput CDF: single best AP vs SourceSync",
    config=Config,
    presets={
        "smoke": {"n_placements": 2, "n_packets": 24},
        "quick": {"n_placements": 12, "n_packets": 80},
        "full": {"n_placements": 40, "n_packets": 150},
    },
    tags=("mac", "diversity"),
    batched=True,
    summary_keys={
        "best_ap_median_mbps": "median downlink throughput when the client is served by its single best AP",
        "sourcesync_median_mbps": "median downlink throughput under joint multi-AP SourceSync transmission",
        "median_gain": "SourceSync median throughput divided by the best-AP median (paper: 1.57x)",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 17: CDFs of last-hop throughput for both schemes.

    Placements are independent trials, each with its own generator spawned
    from the experiment seed — seeded results are independent of trial
    execution order and parallelise over ``config.jobs`` processes without
    changing.  Each trial contains a rate-adaptation feedback loop, so a
    trial's packet stream stays sequential; with ``config.batched`` the
    placements advance packet-by-packet in lockstep through
    :func:`repro.routing.ensemble.simulate_downlink_ensemble`, which holds
    the SampleRate decision state and the per-rate delivery/airtime tables
    of every lane in stacked arrays (bit-identical results either way).
    """
    n_placements = config.n_placements
    if config.batched:
        pairs = _run_placement_ensemble(
            n_placements,
            n_packets=config.n_packets,
            seed=config.seed,
            params=config.params,
            jobs=config.jobs,
        )
    else:
        pairs = run_trials(
            partial(_placement_trial, n_packets=config.n_packets, params=config.params),
            n_placements,
            seed=config.seed,
            jobs=config.jobs,
        )
    best_values = [best for best, _ in pairs]
    joint_values = [joint for _, joint in pairs]

    best_cdf = EmpiricalCDF(best_values)
    joint_cdf = EmpiricalCDF(joint_values)
    fractions = [i / max(n_placements - 1, 1) for i in range(n_placements)]
    return ExperimentResult(
        name="fig17",
        description="Last-hop downlink throughput CDF: single best AP vs SourceSync",
        series={
            "cdf_fraction": fractions,
            "best_ap_mbps": sorted(best_values),
            "sourcesync_mbps": sorted(joint_values),
        },
        summary={
            "best_ap_median_mbps": best_cdf.median,
            "sourcesync_median_mbps": joint_cdf.median,
            "median_gain": joint_cdf.median_gain_over(best_cdf),
        },
        paper_reference={
            "claim": "sender diversity across two APs yields a median throughput gain of 1.57x over the single best AP",
            "figure": "Fig. 17",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
