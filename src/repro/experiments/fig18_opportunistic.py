"""Figure 18: opportunistic routing throughput CDFs at 6 and 12 Mbps.

Five-node topologies (source, destination and three relays placed between
them) are generated at random; for each topology three schemes transfer a
batch of packets from source to destination:

* single-path routing over the best ETX route;
* ExOR, which exploits receiver diversity only;
* ExOR + SourceSync, which additionally lets every relay holding a packet
  join the forwarder's transmission (sender diversity).

The paper reports, per bit rate, a median gain of 1.26-1.4x for ExOR over
single path and a further 1.35-1.45x for SourceSync over ExOR (1.7-2x over
single path).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.channel.propagation import PathLossModel
from repro.experiments.batch import run_seed_chunks, run_trials
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.net.topology import Testbed
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.routing.ensemble import (
    ExorLane,
    prime_testbeds_lockstep,
    simulate_exor_ensemble,
    simulate_single_path_ensemble,
)
from repro.routing.exor import ExorConfig, simulate_exor
from repro.routing.exor_sourcesync import simulate_exor_sourcesync
from repro.routing.single_path import simulate_single_path

__all__ = ["Config", "SPEC", "run", "random_relay_topology", "simulate_topology"]


@dataclass(frozen=True)
class Config:
    """Parameters of the Fig. 18 reproduction.

    Topologies are independent trials with spawned per-trial generators
    (seeded results do not depend on execution order; ``jobs`` runs them
    across a process pool without changing any output).  ``batched`` runs
    the whole topology ensemble through the lockstep mesh engine
    (:mod:`repro.routing.ensemble`): link priming, the source-broadcast
    phase, the priority-ordered forwarding rounds and the per-attempt
    probability tables all become stacked array operations, while every
    topology's generator is consumed in its sequential order — results
    match the per-topology path (``batched=False``) bit-for-bit.  Both
    ExOR schemes of a topology run as one chained lane pair inside a
    single ensemble call.  ``chunk_topologies`` caps how many topologies
    one lockstep call carries (0 = one shard per job), bounding memory on
    hundreds-of-topologies sweeps without changing any output.
    """

    rates_mbps: tuple[float, ...] = (6.0, 12.0)
    n_topologies: int = 20
    batch_size: int = 24
    seed: int = 18
    batched: bool = True
    jobs: int = 1
    chunk_topologies: int = 0
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.rates_mbps:
            raise ValueError("rates_mbps must be non-empty")
        if any(rate <= 0 for rate in self.rates_mbps):
            raise ValueError("bit rates must be positive")
        if self.n_topologies < 1:
            raise ValueError("n_topologies must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.chunk_topologies < 0:
            raise ValueError("chunk_topologies must be >= 0 (0 = one shard per job)")

#: Distance between source and destination; chosen so the direct link is
#: lossy and relays in between have intermediate loss rates, like the lossy
#: mesh deployments the paper targets (Fig. 10 uses 50% loss links).
_SRC_DST_DISTANCE_M = 85.0


def random_relay_topology(
    rng: np.random.Generator,
    params: OFDMParams = DEFAULT_PARAMS,
    n_relays: int = 3,
) -> Testbed:
    """Source at the origin, destination far away, relays scattered between."""
    positions = [(0.0, 0.0), (_SRC_DST_DISTANCE_M, 0.0)]
    for _ in range(n_relays):
        positions.append(
            (
                float(rng.uniform(0.3, 0.7) * _SRC_DST_DISTANCE_M),
                float(rng.uniform(-15.0, 15.0)),
            )
        )
    return Testbed.from_positions(
        positions,
        rng=rng,
        params=params,
        # Extra reference loss stands in for the walls and cabinets of the
        # paper's office testbed, giving relay links loss rates comparable to
        # the ~50% lossy links of Fig. 10.
        path_loss=PathLossModel(exponent=3.3, reference_loss_db=43.0, shadowing_sigma_db=5.0),
    )


def simulate_topology(
    testbed: Testbed,
    rate_mbps: float,
    rng: np.random.Generator,
    batch_size: int = 24,
    batched: bool = True,
) -> tuple[float, float, float]:
    """(single path, ExOR, ExOR+SourceSync) throughput for one topology."""
    src, dst = 0, 1
    relays = [n for n in testbed.node_ids if n not in (src, dst)]
    config = ExorConfig(batch_size=batch_size, batched=batched)
    single = simulate_single_path(testbed, src, dst, rate_mbps, n_packets=batch_size, rng=rng)
    exor = simulate_exor(testbed, src, dst, rate_mbps, relays, config=config, rng=rng)
    joint = simulate_exor_sourcesync(testbed, src, dst, rate_mbps, relays, config=config, rng=rng)
    return single.throughput_mbps, exor.throughput_mbps, joint.throughput_mbps


def _topology_trial(
    _index: int,
    rng: np.random.Generator,
    rate_mbps: float,
    batch_size: int,
    batched: bool,
    params: OFDMParams,
) -> tuple[float, float, float]:
    """One independent (topology, all three schemes) trial for ``run_trials``."""
    testbed = random_relay_topology(rng, params=params)
    return simulate_topology(testbed, rate_mbps, rng, batch_size, batched=batched)


def _topology_ensemble_chunk(
    children: list[np.random.SeedSequence],
    rate_mbps: float,
    batch_size: int,
    params: OFDMParams,
) -> list[tuple[float, float, float]]:
    """Run a chunk of topology trials through the lockstep mesh engine.

    Each lane's generator sees the identical draw order as a sequential
    :func:`_topology_trial`: topology placement, canonical link priming,
    the single-path transfer, then the two ExOR schemes — so a chunk of
    any size (``jobs`` shards the children) reproduces the per-topology
    path bit-for-bit.
    """
    rngs = [np.random.default_rng(child) for child in children]
    testbeds = [random_relay_topology(rng, params=params) for rng in rngs]
    config = ExorConfig(batch_size=batch_size)
    prime_testbeds_lockstep(testbeds, config.probe_rate_mbps, config.payload_bytes)
    # Probe priming above materialised every pair's fading profile, so the
    # data-rate pass below consumes no generator draws — it is one stacked
    # EESM pass over all topologies instead of a scalar pass per testbed
    # inside the single-path loop.
    prime_testbeds_lockstep(testbeds, rate_mbps, config.payload_bytes)
    relays = [
        [n for n in testbed.node_ids if n not in (0, 1)] for testbed in testbeds
    ]
    singles = [
        result.throughput_mbps
        for result in simulate_single_path_ensemble(
            [
                ExorLane(testbed, 0, 1, rate_mbps, lane_relays, config, rng)
                for testbed, lane_relays, rng in zip(testbeds, relays, rngs)
            ]
        )
    ]
    # Both ExOR schemes share each topology's generator, so the SourceSync
    # lane chains behind the plain-ExOR lane and the whole chunk runs as one
    # heterogeneous ensemble call.
    joint_config = replace(config, sender_diversity=True)
    lanes: list[ExorLane] = []
    for testbed, lane_relays, rng in zip(testbeds, relays, rngs):
        exor_lane = ExorLane(testbed, 0, 1, rate_mbps, lane_relays, config, rng)
        joint_lane = ExorLane(
            testbed, 0, 1, rate_mbps, lane_relays, joint_config, rng, after=exor_lane
        )
        lanes.extend([exor_lane, joint_lane])
    results = simulate_exor_ensemble(lanes)
    return [
        (single, results[2 * i].throughput_mbps, results[2 * i + 1].throughput_mbps)
        for i, single in enumerate(singles)
    ]


def _run_topology_ensemble(
    n_topologies: int,
    rate_mbps: float,
    batch_size: int,
    seed: int,
    params: OFDMParams,
    jobs: int = 1,
    chunk_topologies: int = 0,
) -> list[tuple[float, float, float]]:
    """Lockstep counterpart of the ``run_trials`` topology loop.

    Per-trial seeding is shared with the sequential path through
    :func:`repro.experiments.batch.run_seed_chunks`, which also shards the
    lanes across a process pool (``jobs > 1``) and — for hundreds-of-
    topologies sweeps — caps the per-ensemble lane width at
    ``chunk_topologies`` without changing any output.
    """
    return run_seed_chunks(
        _topology_ensemble_chunk,
        n_topologies,
        seed,
        jobs,
        rate_mbps,
        batch_size,
        params,
        chunk_size=chunk_topologies or None,
    )


@experiment(
    name="fig18",
    description="Opportunistic routing throughput CDFs (single path, ExOR, ExOR+SourceSync)",
    config=Config,
    presets={
        "smoke": {"rates_mbps": (12.0,), "n_topologies": 2, "batch_size": 8},
        "quick": {"n_topologies": 10, "batch_size": 16},
        # Hundreds of topologies per rate: the lockstep mesh engine amortises
        # link priming and forwarding turns across the whole ensemble, so the
        # paper-scale CDFs come from a dense population, not 40 samples.
        "full": {"n_topologies": 200},
    },
    tags=("routing", "diversity"),
    batched=True,
    summary_keys={
        "exor_over_single_{rate}mbps": "median ExOR throughput gain over single-path routing at {rate} Mbps",
        "sourcesync_over_exor_{rate}mbps": "median ExOR+SourceSync gain over plain ExOR at {rate} Mbps",
        "sourcesync_over_single_{rate}mbps": "median ExOR+SourceSync gain over single-path routing at {rate} Mbps",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate Fig. 18(a) and (b): throughput CDFs per scheme and rate."""
    n_topologies, batch_size = config.n_topologies, config.batch_size
    series: dict[str, list[float]] = {}
    summary: dict[str, float] = {}
    for rate in config.rates_mbps:
        if config.batched:
            triples = _run_topology_ensemble(
                n_topologies,
                rate_mbps=rate,
                batch_size=batch_size,
                seed=config.seed + int(rate),
                params=config.params,
                jobs=config.jobs,
                chunk_topologies=config.chunk_topologies,
            )
        else:
            triples = run_trials(
                partial(
                    _topology_trial,
                    rate_mbps=rate,
                    batch_size=batch_size,
                    batched=False,
                    params=config.params,
                ),
                n_topologies,
                seed=config.seed + int(rate),
                jobs=config.jobs,
            )
        single_values = [single for single, _, _ in triples]
        exor_values = [exor for _, exor, _ in triples]
        joint_values = [joint for _, _, joint in triples]
        tag = f"{rate:g}mbps"
        series[f"single_path_{tag}"] = sorted(single_values)
        series[f"exor_{tag}"] = sorted(exor_values)
        series[f"sourcesync_{tag}"] = sorted(joint_values)
        single_cdf = EmpiricalCDF(single_values)
        exor_cdf = EmpiricalCDF(exor_values)
        joint_cdf = EmpiricalCDF(joint_values)
        summary[f"exor_over_single_{tag}"] = exor_cdf.median_gain_over(single_cdf)
        summary[f"sourcesync_over_exor_{tag}"] = joint_cdf.median_gain_over(exor_cdf)
        summary[f"sourcesync_over_single_{tag}"] = joint_cdf.median_gain_over(single_cdf)
    series["cdf_fraction"] = [i / max(n_topologies - 1, 1) for i in range(n_topologies)]
    return ExperimentResult(
        name="fig18",
        description="Opportunistic routing throughput CDFs (single path, ExOR, ExOR+SourceSync)",
        series=series,
        summary=summary,
        paper_reference={
            "claim": (
                "ExOR gains 1.26-1.4x over single path; SourceSync adds 1.35-1.45x over ExOR "
                "and 1.7-2x over single path, at 6 and 12 Mbps"
            ),
            "figure": "Fig. 18(a), 18(b)",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
