"""Figure 19 (extension): flow-level traffic — FCT and saturation under load.

The paper's evaluation pushes fixed packet batches; this experiment opens
the *serving* axis: an open-loop Poisson population of mice/elephant flows
offers rising load to one lossy relay mesh, and an N-senders→1-victim
incast burst stresses a victim mesh, under each routing scheme — single
path, ExOR, and ExOR+SourceSync.  Reported per scheme: flow-completion
time percentiles and CDFs versus offered load, goodput, utilization, and
the estimated saturation load (where the FIFO service queue reaches
utilization 1), plus the incast burst's FCT tail.

Common random numbers across the load axis: every load point shares one
flow population (one workload seed), so arrivals scale exactly with the
load knob while sizes and per-flow service draws are identical — per-load
differences are pure queueing, the utilization-vs-load fit is noise-free,
and the expensive mesh service simulation runs **once** per scheme for
the whole load sweep (precompute once, answer any load query).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.analysis.fct import (
    FctSummary,
    extract_fct,
    jains_index,
    saturation_load,
    sender_goodput_shares,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.params import DEFAULT_PARAMS, OFDMParams
from repro.traffic.service import FlowService, incast_mesh, relay_mesh, simulate_flow_services
from repro.traffic.sizes import SIZE_MIX_NAMES, make_size_mix
from repro.traffic.workload import TrafficWorkload, derive_seed, incast_workload, poisson_workload

__all__ = ["Config", "SPEC", "run"]

#: The schemes this experiment sweeps — the original three, pinned locally
#: so the canonical scheme list growing (link_local lives in
#: fig20_link_dynamics) cannot move this experiment's draws or results.
_SCHEMES = ("single_path", "exor", "sourcesync")

#: Scheme → key label (summary-key placeholders cannot carry underscores).
_LABELS = {"single_path": "single", "exor": "exor", "sourcesync": "sourcesync"}


@dataclass(frozen=True)
class Config:
    """Parameters of the traffic-load experiment.

    ``loads`` is the offered-load axis (offered payload bits over the
    nominal link rate; the measured saturation point lands well below 1.0
    on a lossy multi-hop mesh).  ``batched`` serves flows through the
    lockstep mesh engine (flows as lanes, chained schemes); the per-flow
    sequential path (``batched=False``) is the bit-identical oracle.
    ``jobs``/``chunk_flows`` shard the flow set across processes / bound
    lane width without changing any output — every flow's service stream
    is keyed by (workload seed, flow index) alone.
    """

    loads: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8)
    n_flows: int = 40
    n_senders: int = 8
    rate_mbps: float = 12.0
    payload_bytes: int = 1460
    size_mix: str = "mice_elephant"
    fixed_packets: int = 8
    mice_packets: int = 2
    elephant_packets: int = 24
    elephant_fraction: float = 0.15
    #: (sizes, weights) table of the ``empirical`` size mix — e.g. a
    #: digitised flow-size CDF; unused by the other mixes.
    empirical_packets: tuple[int, ...] = (1, 4, 16, 64)
    empirical_weights: tuple[float, ...] = (0.5, 0.3, 0.15, 0.05)
    incast: bool = True
    incast_jitter_us: float = 100.0
    n_relays: int = 3
    incast_relays: int = 2
    seed: int = 19
    batched: bool = True
    jobs: int = 1
    chunk_flows: int = 0
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.loads or any(load <= 0 for load in self.loads):
            raise ValueError("loads must be non-empty and positive")
        if len(set(self.loads)) != len(self.loads):
            raise ValueError("loads must be distinct")
        if self.n_flows < 2:
            raise ValueError("n_flows must be >= 2 (FCT percentiles need a population)")
        if self.n_senders < 1:
            raise ValueError("n_senders must be >= 1")
        if self.rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if self.payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        if self.size_mix not in SIZE_MIX_NAMES:
            raise ValueError(f"size_mix must be one of {SIZE_MIX_NAMES}")
        if self.incast_jitter_us < 0:
            raise ValueError("incast_jitter_us must be non-negative")
        if self.n_relays < 1 or self.incast_relays < 1:
            raise ValueError("relay counts must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.chunk_flows < 0:
            raise ValueError("chunk_flows must be >= 0 (0 = one shard per job)")


def _serve(
    config: Config,
    workload: TrafficWorkload,
    factory,
    dst: int,
) -> dict[str, list[FlowService]]:
    """Serve a workload under every scheme with the config's execution plan."""
    return simulate_flow_services(
        workload,
        factory,
        dst,
        schemes=_SCHEMES,
        lockstep=config.batched,
        jobs=config.jobs,
        chunk_flows=config.chunk_flows,
    )


def _summarise(workload: TrafficWorkload, services: list[FlowService]) -> FctSummary:
    """FCT summary of one (workload, scheme) serving."""
    return extract_fct(
        workload.arrivals_us(),
        [service.service_us for service in services],
        [service.delivered_packets for service in services],
        [service.size_packets for service in services],
        payload_bytes=workload.payload_bytes,
    )


@experiment(
    name="fig19_traffic_load",
    description="Flow-level traffic: FCT and saturation under load (single path, ExOR, ExOR+SourceSync)",
    config=Config,
    presets={
        "smoke": {
            "loads": (0.2,),
            "n_flows": 4,
            "n_senders": 3,
            "elephant_packets": 8,
            "n_relays": 2,
            "incast_jitter_us": 50.0,
        },
        "quick": {"loads": (0.05, 0.2, 0.8), "n_flows": 16, "n_senders": 6, "elephant_packets": 16},
        # Paper-scale serving: one 200-flow population answers the whole
        # load axis (services are simulated once per scheme), and a
        # 32-sender incast burst stresses the victim mesh.
        "full": {
            "loads": (0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.2),
            "n_flows": 200,
            "n_senders": 32,
        },
    },
    tags=("routing", "traffic", "load"),
    batched=True,
    summary_keys={
        "saturation_load_{scheme}": (
            "offered load at which the scheme's FIFO service queue saturates "
            "(utilization = 1), from the least-squares utilization-vs-load fit"
        ),
        "p95_fct_ms_{scheme}": "95th-percentile flow-completion time at the highest swept load, in ms",
        "goodput_mbps_{scheme}": "delivered goodput at the highest swept load, in Mb/s",
        "incast_p99_fct_ms_{scheme}": "99th-percentile FCT of the N-senders-to-1-victim incast burst, in ms",
        "incast_fairness_jain_{scheme}": (
            "Jain fairness index over the incast senders' delivered goodput "
            "shares (1 = perfectly even, 1/N = one sender takes everything)"
        ),
        "fct_p95_gain_sourcesync_vs_single": (
            "single-path p95 FCT over ExOR+SourceSync p95 FCT at the highest load "
            "(> 1 means SourceSync completes flows faster)"
        ),
        "saturation_gain_sourcesync_vs_single": (
            "ExOR+SourceSync saturation load over single-path saturation load "
            "(> 1 means sender diversity extends the mesh's serving capacity)"
        ),
    },
)
def _run(config: Config) -> ExperimentResult:
    """Serve the Poisson load sweep and the incast burst; extract FCT metrics."""
    mix = make_size_mix(
        config.size_mix,
        fixed_packets=config.fixed_packets,
        mice_packets=config.mice_packets,
        elephant_packets=config.elephant_packets,
        elephant_fraction=config.elephant_fraction,
        empirical_packets=config.empirical_packets,
        empirical_weights=config.empirical_weights,
    )
    series: dict[str, list[float]] = {"load": list(config.loads)}
    summary: dict[str, float] = {}

    # --- Poisson open-loop load sweep over the relay mesh (src 0 → dst 1).
    factory = partial(
        relay_mesh, derive_seed(config.seed, 0), n_relays=config.n_relays, params=config.params
    )
    population_seed = derive_seed(config.seed, 1)
    workloads = [
        poisson_workload(
            config.n_flows, load, mix, config.rate_mbps, config.payload_bytes,
            seed=population_seed,
        )
        for load in config.loads
    ]
    # One population serves every load point: flow sizes and service
    # streams depend only on (population seed, index), so the services of
    # workloads[0] are bit-identical for all loads.
    services = _serve(config, workloads[0], factory, dst=1)
    top = len(config.loads) - 1
    summaries: dict[str, list[FctSummary]] = {
        scheme: [_summarise(workload, services[scheme]) for workload in workloads]
        for scheme in _SCHEMES
    }
    for scheme in _SCHEMES:
        label = _LABELS[scheme]
        per_load = summaries[scheme]
        series[f"fct_p50_ms_{label}"] = [s.p50_us / 1e3 for s in per_load]
        series[f"fct_p95_ms_{label}"] = [s.p95_us / 1e3 for s in per_load]
        series[f"fct_p99_ms_{label}"] = [s.p99_us / 1e3 for s in per_load]
        series[f"goodput_mbps_{label}"] = [s.goodput_mbps for s in per_load]
        series[f"utilization_{label}"] = [s.utilization for s in per_load]
        series[f"fct_cdf_ms_{label}"] = sorted(value / 1e3 for value in per_load[top].fct_us)
        summary[f"saturation_load_{label}"] = saturation_load(
            config.loads, [s.utilization for s in per_load]
        )
        summary[f"p95_fct_ms_{label}"] = per_load[top].p95_us / 1e3
        summary[f"goodput_mbps_{label}"] = per_load[top].goodput_mbps
    series["fct_cdf_fraction"] = [
        i / max(config.n_flows - 1, 1) for i in range(config.n_flows)
    ]
    summary["fct_p95_gain_sourcesync_vs_single"] = (
        summaries["single_path"][top].p95_us / summaries["sourcesync"][top].p95_us
    )
    summary["saturation_gain_sourcesync_vs_single"] = (
        summary["saturation_load_sourcesync"] / summary["saturation_load_single"]
    )

    # --- Incast burst: N senders on a ring fire at one victim (node 0).
    if config.incast:
        incast_factory = partial(
            incast_mesh,
            derive_seed(config.seed, 2),
            n_senders=config.n_senders,
            n_relays=config.incast_relays,
            params=config.params,
        )
        burst = incast_workload(
            tuple(range(1, config.n_senders + 1)),
            mix,
            config.rate_mbps,
            config.payload_bytes,
            seed=derive_seed(config.seed, 3),
            jitter_us=config.incast_jitter_us,
        )
        incast_services = _serve(config, burst, incast_factory, dst=0)
        burst_senders = [flow.sender for flow in burst.flows]
        for scheme in _SCHEMES:
            label = _LABELS[scheme]
            incast_summary = _summarise(burst, incast_services[scheme])
            series[f"incast_fct_ms_{label}"] = sorted(
                value / 1e3 for value in incast_summary.fct_us
            )
            summary[f"incast_p99_fct_ms_{label}"] = incast_summary.p99_us / 1e3
            shares = sender_goodput_shares(
                burst_senders,
                [service.delivered_packets for service in incast_services[scheme]],
                config.payload_bytes,
                incast_summary.makespan_us,
            )
            summary[f"incast_fairness_jain_{label}"] = jains_index(list(shares.values()))
        series["incast_cdf_fraction"] = [
            i / max(config.n_senders - 1, 1) for i in range(config.n_senders)
        ]

    return ExperimentResult(
        name="fig19_traffic_load",
        description="Flow-level traffic: FCT and saturation under load (single path, ExOR, ExOR+SourceSync)",
        series=series,
        summary=summary,
        paper_reference={
            "claim": (
                "Sender diversity extends the mesh's serving capacity: under rising "
                "offered load, ExOR+SourceSync sustains higher goodput, saturates at "
                "higher load and completes flows faster than ExOR and single-path "
                "routing (extension of the §8.4 mesh evaluation to flow-level traffic)"
            ),
            "figure": "§8.4 (flow-level extension)",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
