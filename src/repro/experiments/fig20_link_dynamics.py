"""Figure 20 (extension): bursty link dynamics — recovery schemes under faults.

The §8.4 mesh evaluation (and its flow-level extension, fig19) runs over
*static* link draws; this experiment injects time-correlated faults: every
directed link follows a Gilbert–Elliott burst process
(:mod:`repro.channel.dynamics`), optionally stacked with a link-speed ×
loss-rate grid, and four recovery schemes serve the same multi-sender
flow population over the degraded incast mesh — single path, ExOR,
ExOR+SourceSync, and LinkGuardian-style link-local retransmission with
graceful end-to-end fallback (:mod:`repro.routing.link_local`).

The swept grid is loss depth × burst length: ``loss_rates`` sets how much
a bad burst suppresses delivery (bad-state multiplier ``1 - loss``) and
``burst_slots`` how long bursts dwell, at a fixed stationary bad fraction.
Short shallow bursts favour cheap local retransmission; long deep bursts
favour diversity (SourceSync) — the ARQ-vs-diversity tradeoff the figure
quantifies via goodput, FCT tails, delivered fraction and per-sender
fairness per scheme.

Common random numbers across the whole grid: one flow population (one
workload seed) serves every (loss, burst) cell, and a cell's dynamics only
modulate delivery probabilities (each flow's trajectory is one fixed-size
draw from its own service stream), so cells differ purely in the injected
fault process — never in which flows arrive or how their draws line up.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.analysis.fct import (
    FctSummary,
    extract_fct,
    jains_index,
    sender_goodput_shares,
)
from repro.channel.dynamics import GilbertElliott, LinkDynamics, LossRateGrid
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.phy.params import DEFAULT_PARAMS, OFDMParams
from repro.routing.link_local import LinkLocalConfig
from repro.traffic.service import SCHEMES, FlowService, incast_mesh, simulate_flow_services
from repro.traffic.sizes import SIZE_MIX_NAMES, make_size_mix
from repro.traffic.workload import TrafficWorkload, derive_seed, poisson_workload

__all__ = ["Config", "SPEC", "run"]

#: Scheme → key label (summary-key placeholders cannot carry underscores).
_LABELS = {
    "single_path": "single",
    "exor": "exor",
    "sourcesync": "sourcesync",
    "link_local": "linklocal",
}


@dataclass(frozen=True)
class Config:
    """Parameters of the link-dynamics experiment.

    ``loss_rates`` is the swept loss-depth axis: during a bad burst every
    link's delivery probability is scaled by ``1 - loss``.  ``burst_slots``
    sweeps the mean burst dwell time (in transmission slots) at the fixed
    stationary ``bad_fraction``.  The optional speed × loss grid
    (``grid_speeds_mbps``/``grid_loss_rates``) stacks a static, rate-
    dependent extra loss on top.  The link-local scheme's protection
    budget is the ``local_retry_limit``/``e2e_retry_limit``/
    ``timeout_fraction``/``backoff_factor`` block.  ``batched`` serves
    flows through the lockstep mesh engine; the per-flow sequential path
    (``batched=False``) is the bit-identical oracle, and
    ``jobs``/``chunk_flows`` shard flows without changing any output.
    """

    loss_rates: tuple[float, ...] = (0.2, 0.5, 0.8)
    burst_slots: tuple[float, ...] = (2.0, 16.0)
    bad_fraction: float = 0.2
    horizon_slots: int = 256
    grid_speeds_mbps: tuple[float, ...] = ()
    grid_loss_rates: tuple[float, ...] = ()
    local_retry_limit: int = 4
    e2e_retry_limit: int = 2
    timeout_fraction: float = 0.25
    backoff_factor: float = 2.0
    n_flows: int = 24
    load: float = 0.4
    n_senders: int = 4
    n_relays: int = 2
    rate_mbps: float = 12.0
    payload_bytes: int = 1460
    size_mix: str = "mice_elephant"
    fixed_packets: int = 8
    mice_packets: int = 2
    elephant_packets: int = 24
    elephant_fraction: float = 0.15
    empirical_packets: tuple[int, ...] = (1, 4, 16, 64)
    empirical_weights: tuple[float, ...] = (0.5, 0.3, 0.15, 0.05)
    seed: int = 20
    batched: bool = True
    jobs: int = 1
    chunk_flows: int = 0
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.loss_rates or any(not 0.0 <= v <= 1.0 for v in self.loss_rates):
            raise ValueError("loss_rates must be non-empty with values in [0, 1]")
        if any(b <= a for a, b in zip(self.loss_rates, self.loss_rates[1:])):
            raise ValueError("loss_rates must be strictly increasing")
        if not self.burst_slots or any(v < 1.0 for v in self.burst_slots):
            raise ValueError("burst_slots must be non-empty with values >= 1")
        if any(b <= a for a, b in zip(self.burst_slots, self.burst_slots[1:])):
            raise ValueError("burst_slots must be strictly increasing")
        if not 0.0 < self.bad_fraction < 1.0:
            raise ValueError("bad_fraction must be in (0, 1)")
        if self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")
        if len(self.grid_speeds_mbps) != len(self.grid_loss_rates):
            raise ValueError("grid_speeds_mbps and grid_loss_rates must be equal length")
        if self.n_flows < 2:
            raise ValueError("n_flows must be >= 2 (FCT percentiles need a population)")
        if self.load <= 0:
            raise ValueError("load must be positive")
        if self.n_senders < 2:
            raise ValueError("n_senders must be >= 2 (fairness needs competing senders)")
        if self.n_relays < 1:
            raise ValueError("n_relays must be >= 1")
        if self.rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if self.payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        if self.size_mix not in SIZE_MIX_NAMES:
            raise ValueError(f"size_mix must be one of {SIZE_MIX_NAMES}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.chunk_flows < 0:
            raise ValueError("chunk_flows must be >= 0 (0 = one shard per job)")
        # Validate the protection budget eagerly: a bad knob must fail at
        # config time, not one cell into the sweep.
        self.link_local_config()

    def link_local_config(self) -> LinkLocalConfig:
        """The link-local scheme's protection budget as a config object."""
        return LinkLocalConfig(
            payload_bytes=self.payload_bytes,
            local_retry_limit=self.local_retry_limit,
            e2e_retry_limit=self.e2e_retry_limit,
            timeout_fraction=self.timeout_fraction,
            backoff_factor=self.backoff_factor,
        )

    def grid(self) -> LossRateGrid | None:
        """The optional static speed × loss grid (``None`` when unset)."""
        if not self.grid_speeds_mbps:
            return None
        return LossRateGrid(tuple(self.grid_speeds_mbps), tuple(self.grid_loss_rates))

    def dynamics_for(self, loss_rate: float, burst: float) -> LinkDynamics:
        """The fault-injection spec of one (loss depth, burst length) cell."""
        return LinkDynamics(
            gilbert_elliott=GilbertElliott.from_burst(
                burst, self.bad_fraction, bad_multiplier=1.0 - loss_rate
            ),
            grid=self.grid(),
            horizon_slots=self.horizon_slots,
        )


def _summarise(workload: TrafficWorkload, services: list[FlowService]) -> FctSummary:
    """FCT summary of one (workload, scheme) serving."""
    return extract_fct(
        workload.arrivals_us(),
        [service.service_us for service in services],
        [service.delivered_packets for service in services],
        [service.size_packets for service in services],
        payload_bytes=workload.payload_bytes,
    )


@experiment(
    name="fig20_link_dynamics",
    description=(
        "Bursty link dynamics: Gilbert-Elliott fault injection versus recovery "
        "scheme (single path, ExOR, ExOR+SourceSync, link-local retransmission)"
    ),
    config=Config,
    presets={
        "smoke": {
            "loss_rates": (0.6,),
            "burst_slots": (4.0,),
            "horizon_slots": 64,
            "n_flows": 4,
            "n_senders": 2,
            "elephant_packets": 8,
        },
        "quick": {
            "loss_rates": (0.2, 0.8),
            "burst_slots": (2.0, 16.0),
            "horizon_slots": 128,
            "n_flows": 10,
            "n_senders": 3,
            "elephant_packets": 16,
        },
        # Paper-scale grid: a 4-depth x 3-dwell fault surface over a
        # 64-flow, 8-sender population.
        "full": {
            "loss_rates": (0.1, 0.3, 0.6, 0.9),
            "burst_slots": (2.0, 8.0, 32.0),
            "n_flows": 64,
            "n_senders": 8,
            "n_relays": 3,
        },
    },
    tags=("routing", "traffic", "robustness"),
    batched=True,
    summary_keys={
        "goodput_mbps_{scheme}_worst": (
            "delivered goodput at the worst swept cell (deepest loss, longest "
            "burst), in Mb/s"
        ),
        "p95_fct_ms_{scheme}_worst": (
            "95th-percentile flow-completion time at the worst swept cell, in ms"
        ),
        "delivered_fraction_{scheme}_worst": (
            "fraction of offered packets delivered at the worst swept cell"
        ),
        "fairness_jain_{scheme}_worst": (
            "Jain fairness index over per-sender goodput shares at the worst "
            "swept cell (1 = perfectly even)"
        ),
        "linklocal_over_single_worst": (
            "link-local goodput over single-path goodput at the worst cell "
            "(> 1 means local retransmission beats plain per-hop retry under bursts)"
        ),
        "sourcesync_over_linklocal_worst": (
            "ExOR+SourceSync goodput over link-local goodput at the worst cell "
            "(> 1 means sender diversity still wins once local budgets exhaust)"
        ),
    },
)
def _run(config: Config) -> ExperimentResult:
    """Sweep the loss × burst fault grid under all four recovery schemes."""
    mix = make_size_mix(
        config.size_mix,
        fixed_packets=config.fixed_packets,
        mice_packets=config.mice_packets,
        elephant_packets=config.elephant_packets,
        elephant_fraction=config.elephant_fraction,
        empirical_packets=config.empirical_packets,
        empirical_weights=config.empirical_weights,
    )
    factory = partial(
        incast_mesh,
        derive_seed(config.seed, 0),
        n_senders=config.n_senders,
        n_relays=config.n_relays,
        params=config.params,
    )
    senders = tuple(range(1, config.n_senders + 1))
    workload = poisson_workload(
        config.n_flows, config.load, mix, config.rate_mbps, config.payload_bytes,
        seed=derive_seed(config.seed, 1), senders=senders,
    )
    flow_senders = [flow.sender for flow in workload.flows]
    ll_config = config.link_local_config()

    series: dict[str, list[float]] = {"loss_rate": list(config.loss_rates)}
    summary: dict[str, float] = {}
    worst_goodput: dict[str, float] = {}
    for burst in config.burst_slots:
        per_scheme: dict[str, list[FctSummary]] = {scheme: [] for scheme in SCHEMES}
        per_scheme_fairness: dict[str, list[float]] = {scheme: [] for scheme in SCHEMES}
        for loss in config.loss_rates:
            services = simulate_flow_services(
                workload,
                factory,
                dst=0,
                schemes=SCHEMES,
                lockstep=config.batched,
                jobs=config.jobs,
                chunk_flows=config.chunk_flows,
                dynamics=config.dynamics_for(loss, burst),
                link_local=ll_config,
            )
            for scheme in SCHEMES:
                cell = _summarise(workload, services[scheme])
                per_scheme[scheme].append(cell)
                shares = sender_goodput_shares(
                    flow_senders,
                    [service.delivered_packets for service in services[scheme]],
                    config.payload_bytes,
                    cell.makespan_us,
                )
                per_scheme_fairness[scheme].append(jains_index(list(shares.values())))
        tag = f"burst{burst:g}"
        for scheme in SCHEMES:
            label = _LABELS[scheme]
            cells = per_scheme[scheme]
            series[f"goodput_mbps_{label}_{tag}"] = [c.goodput_mbps for c in cells]
            series[f"fct_p95_ms_{label}_{tag}"] = [c.p95_us / 1e3 for c in cells]
            series[f"delivered_fraction_{label}_{tag}"] = [
                c.delivered_fraction for c in cells
            ]
            series[f"fairness_jain_{label}_{tag}"] = per_scheme_fairness[scheme]
        if burst == config.burst_slots[-1]:
            # Worst cell: deepest loss at the longest burst dwell.
            for scheme in SCHEMES:
                label = _LABELS[scheme]
                worst = per_scheme[scheme][-1]
                summary[f"goodput_mbps_{label}_worst"] = worst.goodput_mbps
                summary[f"p95_fct_ms_{label}_worst"] = worst.p95_us / 1e3
                summary[f"delivered_fraction_{label}_worst"] = worst.delivered_fraction
                summary[f"fairness_jain_{label}_worst"] = per_scheme_fairness[scheme][-1]
                worst_goodput[scheme] = worst.goodput_mbps

    def _ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator > 0 else float("inf")

    summary["linklocal_over_single_worst"] = _ratio(
        worst_goodput["link_local"], worst_goodput["single_path"]
    )
    summary["sourcesync_over_linklocal_worst"] = _ratio(
        worst_goodput["sourcesync"], worst_goodput["link_local"]
    )

    return ExperimentResult(
        name="fig20_link_dynamics",
        description=(
            "Bursty link dynamics: Gilbert-Elliott fault injection versus recovery "
            "scheme (single path, ExOR, ExOR+SourceSync, link-local retransmission)"
        ),
        series=series,
        summary=summary,
        paper_reference={
            "claim": (
                "Under time-correlated loss bursts, link-local retransmission with "
                "graceful end-to-end fallback recovers short bursts cheaply, while "
                "sender diversity (ExOR+SourceSync) stays the most robust recovery "
                "path as bursts deepen and lengthen (robustness extension of the "
                "§8.4 mesh evaluation)"
            ),
            "figure": "§8.4 (link-dynamics extension)",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
