"""Synchronization overhead table (§4.4).

The paper quantifies SourceSync's overhead — the SIFS gap plus two
channel-estimation symbols per co-sender — as 1.7% of the frame airtime for
two concurrent senders and 2.8% for five, with 1460-byte packets at
12 Mbps.  This experiment regenerates that table across sender counts and
also reports the overhead at other rates and packet sizes, since overhead
grows with rate (shorter data section) and shrinks with packet size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.net.mac import MacTiming
from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = ["Config", "SPEC", "run", "overhead_fraction"]


@dataclass(frozen=True)
class Config:
    """Parameters of the §4.4 overhead table.

    The computation is closed-form and draws no random numbers; ``seed`` is
    kept so registry-wide overrides and sweeps (``--set seed=...``) apply
    uniformly to every experiment.
    """

    sender_counts: tuple[int, ...] = (1, 2, 3, 4, 5)
    rate_mbps: float = 12.0
    payload_bytes: int = 1460
    seed: int = 0
    params: OFDMParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not self.sender_counts:
            raise ValueError("sender_counts must be non-empty")
        if any(n < 1 for n in self.sender_counts):
            raise ValueError("sender counts must be >= 1")
        if self.rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if self.payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")


def overhead_fraction(
    n_senders: int,
    rate_mbps: float = 12.0,
    payload_bytes: int = 1460,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float:
    """Fractional airtime overhead of a joint frame with ``n_senders`` senders."""
    if n_senders < 1:
        raise ValueError("n_senders must be at least 1")
    timing = MacTiming(params=params)
    return timing.joint_overhead_fraction(payload_bytes, rate_mbps, n_cosenders=n_senders - 1)


@experiment(
    name="overhead",
    description="Synchronization overhead vs number of concurrent senders (§4.4)",
    config=Config,
    presets={
        "smoke": {},
        "quick": {},
        "full": {"sender_counts": (1, 2, 3, 4, 5, 6, 7, 8)},
    },
    tags=("mac", "overhead"),
    summary_keys={
        "two_senders_percent": "airtime overhead of synchronization headers with two concurrent senders (paper: 1.7%)",
        "five_senders_percent": "airtime overhead with five concurrent senders (paper: 2.8%)",
    },
)
def _run(config: Config) -> ExperimentResult:
    """Regenerate the §4.4 overhead numbers."""
    sender_counts = config.sender_counts
    fractions = [
        overhead_fraction(n, config.rate_mbps, config.payload_bytes, config.params)
        for n in sender_counts
    ]
    percents = [100.0 * f for f in fractions]
    two = percents[sender_counts.index(2)] if 2 in sender_counts else float("nan")
    five = percents[sender_counts.index(5)] if 5 in sender_counts else float("nan")
    return ExperimentResult(
        name="overhead",
        description="Synchronization overhead vs number of concurrent senders (§4.4)",
        series={
            "n_senders": list(sender_counts),
            "overhead_percent": percents,
        },
        summary={
            "two_senders_percent": float(two),
            "five_senders_percent": float(five),
        },
        paper_reference={
            "claim": "overhead is 1.7% for two concurrent senders and 2.8% for five (1460 B, 12 Mbps)",
            "section": "§4.4",
        },
    )


SPEC = _run.spec


def run(**kwargs) -> ExperimentResult:
    """Legacy entry point: ``run(**kwargs)`` is ``SPEC.run(Config(**kwargs))``."""
    return SPEC.run(Config(**kwargs))
