"""Declarative experiment registry: typed specs, presets and registration.

Every experiment in :mod:`repro.experiments` is described by an
:class:`ExperimentSpec`: a frozen record holding the experiment's name,
description, typed ``Config`` dataclass, ``smoke``/``quick``/``full``
presets, classification tags and the implementation function.  Specs are
created with the :func:`experiment` decorator::

    @dataclass(frozen=True)
    class Config:
        n_trials: int = 100
        seed: int = 7

    @experiment(
        name="my_experiment",
        description="what the experiment shows",
        config=Config,
        presets={"smoke": {"n_trials": 5}, "quick": {"n_trials": 20}, "full": {}},
        tags=("phy",),
    )
    def _run(config: Config) -> ExperimentResult:
        ...

Registration validates the spec eagerly — the name must be unique, all
three standard presets must be present, and every preset must instantiate
a valid ``Config`` — so a broken experiment definition fails at import
time, not at the end of a long run.

The registry is the single source of truth consumed by the runner
(:mod:`repro.experiments.runner`), the CLI
(``python -m repro.experiments``), the generated ``EXPERIMENTS.md``
(:mod:`repro.experiments.docs`) and the benchmark harness in
``benchmarks/``.
"""

from __future__ import annotations

import dataclasses
import importlib
import re
import typing
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Iterable, Mapping

from repro.experiments.common import ExperimentResult, collect_provenance

__all__ = [
    "PRESETS",
    "ExperimentSpec",
    "experiment",
    "get",
    "names",
    "specs",
    "specs_by_tag",
    "all_tags",
    "load_all",
    "config_to_jsonable",
    "coerce_field",
    "coerce_sweep_values",
    "parse_overrides",
]

#: The three standard presets every experiment must define.  ``full`` is the
#: paper-scale workload, ``quick`` regenerates the figure's shape in well
#: under a second, ``smoke`` is the smallest end-to-end run used by CI.
PRESETS = ("smoke", "quick", "full")

#: Modules that register experiments; imported by :func:`load_all`.
_EXPERIMENT_MODULES = (
    "repro.experiments.fig12_sync_error",
    "repro.experiments.fig13_cp_reduction",
    "repro.experiments.fig14_delay_spread",
    "repro.experiments.fig15_power_gains",
    "repro.experiments.fig16_frequency_diversity",
    "repro.experiments.fig17_lasthop",
    "repro.experiments.fig18_opportunistic",
    "repro.experiments.fig19_traffic_load",
    "repro.experiments.fig20_link_dynamics",
    "repro.experiments.overhead",
    "repro.experiments.ablation_combining",
    "repro.experiments.ablation_slope",
)

#: Central name -> spec mapping.  Mutated only by :func:`experiment`.
_REGISTRY: dict[str, "ExperimentSpec"] = {}


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a config value to JSON-compatible types."""
    import numpy as np

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def config_to_jsonable(config: Any) -> dict[str, Any]:
    """Flatten a ``Config`` dataclass instance into a JSON-compatible dict."""
    if not dataclasses.is_dataclass(config):
        raise TypeError(f"expected a Config dataclass instance, got {type(config).__name__}")
    return {f.name: _jsonable(getattr(config, f.name)) for f in dataclasses.fields(config)}


_SIMPLE_TYPES = (bool, int, float, str)


@lru_cache(maxsize=None)
def _summary_key_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a summary-key pattern: ``{placeholder}`` matches one value.

    Placeholders stand for configuration-derived segments (a bit rate, an
    SNR regime name); everything else matches literally.
    """
    parts = re.split(r"\{[a-zA-Z_][a-zA-Z0-9_]*\}", pattern)
    return re.compile("[A-Za-z0-9.+-]+".join(re.escape(part) for part in parts))


def _coerce_scalar(text: str, target: type) -> Any:
    """Parse one CLI token as ``target`` (one of bool/int/float/str)."""
    if target is bool:
        lowered = text.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"expected a boolean, got {text!r}")
    if target is int:
        return int(text)
    if target is float:
        return float(text)
    if target is str:
        return text
    raise ValueError(f"field type {target!r} is not settable from the command line")


def coerce_field(config_cls: type, key: str, text: str) -> Any:
    """Coerce the CLI string ``text`` to the declared type of ``key``.

    Supports the scalar types bool/int/float/str and homogeneous
    ``tuple[X, ...]`` fields (comma-separated on the command line).
    Structured fields such as ``params`` must be set programmatically.
    """
    hints = typing.get_type_hints(config_cls)
    if key not in hints:
        known = sorted(f.name for f in dataclasses.fields(config_cls))
        raise ValueError(f"unknown config field {key!r} for {config_cls.__qualname__}; known: {known}")
    hint = hints[key]
    origin = typing.get_origin(hint)
    if origin is tuple:
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis and args[0] in _SIMPLE_TYPES:
            if not text.strip():
                return ()
            return tuple(_coerce_scalar(part, args[0]) for part in text.split(","))
        raise ValueError(f"field {key!r} has unsupported tuple type {hint!r}")
    if hint in _SIMPLE_TYPES:
        return _coerce_scalar(text, hint)
    raise ValueError(
        f"field {key!r} of type {hint!r} is not settable from the command line; "
        "construct the Config programmatically instead"
    )


def coerce_sweep_values(config_cls: type, key: str, text: str) -> list[Any]:
    """Parse one ``--sweep key=v1,v2,...`` token into a list of grid values.

    For scalar fields each comma-separated token is one grid value; for
    tuple-typed fields the whole token is a single tuple value (pass the
    flag repeatedly to sweep tuples).
    """
    hints = typing.get_type_hints(config_cls)
    if key in hints and typing.get_origin(hints[key]) is tuple:
        return [coerce_field(config_cls, key, text)]
    return [coerce_field(config_cls, key, part) for part in text.split(",")]


def parse_overrides(config_cls: type, pairs: Iterable[str]) -> dict[str, Any]:
    """Parse ``key=value`` CLI tokens into typed config overrides."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, text = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"override {pair!r} is not of the form key=value")
        overrides[key.strip()] = coerce_field(config_cls, key.strip(), text)
    return overrides


@dataclass(frozen=True)
class ExperimentSpec:
    """Immutable description of one registered experiment.

    Attributes
    ----------
    name:
        Unique registry key, e.g. ``"fig12"``.
    description:
        One-line summary of what the experiment reproduces.
    config_cls:
        Frozen dataclass of typed, validated parameters.  Instantiating it
        runs the experiment's field validation.
    fn:
        Implementation: ``fn(config) -> ExperimentResult``.
    presets:
        Mapping of preset name to config-field overrides.  Must contain all
        of :data:`PRESETS`; ``full`` conventionally maps to ``{}`` or to
        explicit paper-scale values.
    tags:
        Classification labels (``phy``, ``mac``, ``routing``, ...) used by
        ``--tag`` filters.
    batched:
        Whether the experiment's Monte-Carlo core runs through the batched
        ensemble kernels of :mod:`repro.experiments.batch`.
    summary_keys:
        Documentation of the scalar ``summary`` keys the experiment's
        artifacts carry: mapping of key *pattern* to a one-line description.
        Patterns may contain ``{placeholder}`` segments for keys that are
        generated per configuration value (e.g. ``exor_over_single_{rate}mbps``);
        :meth:`documents_summary_key` matches a concrete key against them,
        and the smoke tests assert every produced key is documented.
    """

    name: str
    description: str
    config_cls: type
    fn: Callable[[Any], ExperimentResult]
    presets: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    batched: bool = False
    summary_keys: Mapping[str, str] = field(default_factory=dict)

    def documents_summary_key(self, key: str) -> bool:
        """True when ``key`` matches one of the declared summary-key patterns."""
        return any(_summary_key_regex(pattern).fullmatch(key) for pattern in self.summary_keys)

    def make_config(self, preset: str = "quick", overrides: Mapping[str, Any] | None = None) -> Any:
        """Instantiate the config for ``preset`` with optional field overrides."""
        if preset not in self.presets:
            raise ValueError(
                f"unknown preset {preset!r} for experiment {self.name!r}; "
                f"known: {sorted(self.presets)}"
            )
        kwargs = dict(self.presets[preset])
        if overrides:
            known = {f.name for f in dataclasses.fields(self.config_cls)}
            unknown = sorted(set(overrides) - known)
            if unknown:
                raise ValueError(
                    f"unknown config fields {unknown} for experiment {self.name!r}; "
                    f"known: {sorted(known)}"
                )
            kwargs.update(overrides)
        return self.config_cls(**kwargs)

    def run(self, config: Any = None) -> ExperimentResult:
        """Run the experiment and attach config + provenance to the result.

        ``config`` defaults to the ``quick`` preset.  The legacy
        ``module.run(**kwargs)`` shims delegate here, so both entry points
        produce identical seeded results.
        """
        if config is None:
            config = self.make_config("quick")
        if not isinstance(config, self.config_cls):
            raise TypeError(
                f"experiment {self.name!r} expects a {self.config_cls.__qualname__}, "
                f"got {type(config).__name__}"
            )
        result = self.fn(config)
        result.config = config_to_jsonable(config)
        result.provenance = {
            "experiment": self.name,
            "seed": getattr(config, "seed", None),
            **collect_provenance(),
        }
        return result

    def parse_overrides(self, pairs: Iterable[str]) -> dict[str, Any]:
        """Parse ``key=value`` CLI tokens against this experiment's config."""
        return parse_overrides(self.config_cls, pairs)

    def cli_example(self, preset: str = "quick") -> str:
        """The CLI one-liner that runs this experiment."""
        return f"python -m repro.experiments run {self.name} --preset {preset}"


def experiment(
    *,
    name: str,
    description: str,
    config: type,
    presets: Mapping[str, Mapping[str, Any]],
    tags: Iterable[str] = (),
    batched: bool = False,
    summary_keys: Mapping[str, str] | None = None,
) -> Callable[[Callable[[Any], ExperimentResult]], Callable[[Any], ExperimentResult]]:
    """Register the decorated ``fn(config) -> ExperimentResult`` function.

    Returns the function unchanged with the created spec attached as
    ``fn.spec``.  Raises :class:`ValueError` at import time for duplicate
    names, missing standard presets, or presets that do not produce a valid
    config.
    """
    if not name:
        raise ValueError("experiment name must be non-empty")
    if not dataclasses.is_dataclass(config) or not isinstance(config, type):
        raise TypeError(f"config for experiment {name!r} must be a dataclass type")
    missing = [p for p in PRESETS if p not in presets]
    if missing:
        raise ValueError(f"experiment {name!r} is missing required presets {missing}")

    def register(fn: Callable[[Any], ExperimentResult]) -> Callable[[Any], ExperimentResult]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} is already registered")
        spec = ExperimentSpec(
            name=name,
            description=description,
            config_cls=config,
            fn=fn,
            presets={k: dict(v) for k, v in presets.items()},
            tags=tuple(tags),
            batched=batched,
            summary_keys=dict(summary_keys or {}),
        )
        for preset in spec.presets:
            spec.make_config(preset)  # validates the preset's field values
        _REGISTRY[name] = spec
        fn.spec = spec  # type: ignore[attr-defined]
        return fn

    return register


def get(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}") from exc


def names() -> list[str]:
    """All registered experiment names, in registration order."""
    load_all()
    return list(_REGISTRY)


def specs() -> list[ExperimentSpec]:
    """All registered specs, in registration order."""
    load_all()
    return list(_REGISTRY.values())


def specs_by_tag(tag: str) -> list[ExperimentSpec]:
    """Registered specs carrying ``tag``."""
    return [spec for spec in specs() if tag in spec.tags]


def all_tags() -> list[str]:
    """Sorted union of every registered experiment's tags."""
    return sorted({tag for spec in specs() for tag in spec.tags})


def load_all() -> None:
    """Import every experiment module so their specs are registered.

    Idempotent: modules register on first import only.  Called lazily by the
    registry accessors and eagerly by the package ``__init__``.
    """
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
