"""Registry-driven experiment runner: selection, validation, fault tolerance.

``run_all`` resolves experiment names (or ``--tag`` filters) against the
central registry (:mod:`repro.experiments.registry`), validates *every*
requested name, preset and config override up front — one
:class:`ValueError` lists every unknown name, instead of a partial run
failing midway — and then executes the selected experiments sequentially
or across supervised worker processes (``jobs > 1``).  Execution always
follows **registry order** regardless of the order names are passed in;
duplicate names are rejected.  Every experiment seeds its own RNGs from
its config, so parallel and sequential execution produce identical
results.

``sweep`` expands ``field=value`` grids into the cartesian product of
configs for one experiment; ``run_sweep`` is the fault-tolerant engine
behind the CLI's ``sweep`` command: grid cells run under a supervised
scheduler (:mod:`repro.experiments.supervisor`) with per-cell
timeout/retry/backoff, completed cells land in a content-addressed
artifact cache (:mod:`repro.experiments.cache`), terminal cell states are
journalled to a JSONL run manifest, and an interrupted or partially
failed run can be resumed with ``sweep --resume`` — converging to the
bit-identical artifacts of an uninterrupted run.

``python -m repro.experiments.runner`` is kept as a legacy alias for
``python -m repro.experiments run`` (see :mod:`repro.experiments.cli`).
"""

from __future__ import annotations

import hashlib
import itertools
import re
import typing
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.experiments import registry
from repro.experiments.cache import CACHE_DIR_NAME, ArtifactCache, cache_key
from repro.experiments.common import ExperimentResult
from repro.experiments.supervisor import (
    CellOutcome,
    Job,
    RetryPolicy,
    RunManifest,
    SweepFailure,
    failure_report,
    run_supervised,
)

__all__ = [
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "sweep",
    "run_sweep",
    "SweepPoint",
    "SweepRun",
    "slugify_label",
    "sweep_definition_from_manifest",
]


def _quick_factory(name: str) -> Callable[[], ExperimentResult]:
    def factory() -> ExperimentResult:
        return run_experiment(name)

    return factory


#: Backward-compatible registry view: name -> zero-argument callable running
#: the experiment's ``quick`` preset.  New code should use
#: :mod:`repro.experiments.registry` directly.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    name: _quick_factory(name) for name in registry.names()
}


def run_experiment(
    name: str,
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
) -> ExperimentResult:
    """Run a single experiment by name at the given preset."""
    spec = registry.get(name)
    return spec.run(spec.make_config(preset, overrides))


def _resolve_names(
    names: Sequence[str] | None,
    tags: Iterable[str] | None = None,
) -> list[str]:
    """Requested names in registry order, validated up front.

    Unknown names are collected and reported in a single ``ValueError`` so a
    typo in the last of ten names is caught before the first experiment runs.
    Duplicate names are an error too — each experiment runs exactly once and
    execution follows registry order, so a silently deduplicated or
    reordered request would not do what it looks like it does.
    """
    known = registry.names()
    if names is None:
        selected = list(known)
    else:
        unknown = [n for n in names if n not in known]
        if unknown:
            raise ValueError(
                f"unknown experiments {unknown}; known: {sorted(known)}"
            )
        duplicates = sorted(n for n, count in Counter(names).items() if count > 1)
        if duplicates:
            raise ValueError(
                f"duplicate experiment names {duplicates}; each experiment runs "
                "once, in registry order"
            )
        selected = [n for n in known if n in set(names)]
    if tags:
        wanted = set(tags)
        unknown_tags = sorted(wanted - set(registry.all_tags()))
        if unknown_tags:
            raise ValueError(
                f"unknown tags {unknown_tags}; known: {registry.all_tags()}"
            )
        selected = [n for n in selected if wanted & set(registry.get(n).tags)]
    return selected


def _run_job(job: tuple[str, str, dict[str, Any] | None]) -> ExperimentResult:
    """In-process entry point: run one (name, preset, overrides) job."""
    name, preset, overrides = job
    spec = registry.get(name)
    return spec.run(spec.make_config(preset, overrides))


def _execute(
    jobs: list[tuple[str, str, dict[str, Any] | None]],
    n_jobs: int,
    policy: RetryPolicy | None = None,
) -> list[ExperimentResult]:
    """Run jobs in-process or under the supervised scheduler, preserving order.

    ``n_jobs == 1`` with no policy runs in-process (exceptions propagate
    unchanged); otherwise the jobs run on supervised worker processes —
    per-cell timeout/retry per ``policy``, crash-isolated, raising
    :class:`repro.experiments.supervisor.SweepFailure` on permanent
    failure.
    """
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")
    if policy is None and (n_jobs == 1 or len(jobs) <= 1):
        return [_run_job(job) for job in jobs]
    supervised = [
        Job(cell=index, name=name, preset=preset, overrides=overrides)
        for index, (name, preset, overrides) in enumerate(jobs)
    ]
    outcomes = run_supervised(
        supervised,
        workers=min(n_jobs, len(jobs)),
        policy=policy,
    )
    return [outcome.result for outcome in outcomes]


def run_all(
    names: Sequence[str] | None = None,
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
    tags: Iterable[str] | None = None,
) -> dict[str, ExperimentResult]:
    """Run all (or selected) experiments and return their results by name.

    Experiments execute in **registry order** (the order ``list`` prints),
    not the order of ``names``; duplicates in ``names`` raise.
    ``overrides`` apply to every selected experiment; a field unknown to any
    selected experiment's config raises before anything runs.  With
    ``jobs > 1`` the experiments run across supervised worker processes.
    """
    selected = _resolve_names(names, tags)
    job_list: list[tuple[str, str, dict[str, Any] | None]] = []
    for name in selected:
        spec = registry.get(name)
        spec.make_config(preset, overrides)  # up-front preset/override validation
        job_list.append((name, preset, dict(overrides) if overrides else None))
    results = _execute(job_list, jobs)
    return dict(zip(selected, results))


#: Characters allowed verbatim in an artifact filename label.
_LABEL_SAFE = re.compile(r"[^A-Za-z0-9._=+-]+")

#: Longest label embedded verbatim; longer ones are truncated + hash-suffixed.
_LABEL_MAX_CHARS = 80


def slugify_label(label: str) -> str:
    """Filesystem-safe version of a sweep label, collision-proofed by hash.

    Labels made only of safe characters (letters, digits, ``._=+-``) and at
    most :data:`_LABEL_MAX_CHARS` long pass through unchanged, so ordinary
    sweep filenames stay human-readable.  Anything else — path separators,
    spaces, exotic values, overlong grids — is sanitized and suffixed with
    a 10-hex-digit hash of the *original* label, so two labels that
    sanitize to the same text still get distinct filenames.
    """
    cleaned = _LABEL_SAFE.sub("-", label)
    if cleaned == label and 0 < len(cleaned) <= _LABEL_MAX_CHARS:
        return cleaned
    digest = hashlib.sha256(label.encode()).hexdigest()[:10]
    stem = cleaned[:_LABEL_MAX_CHARS].strip("-.")
    return f"{stem}--{digest}" if stem else f"label--{digest}"


class SweepPoint:
    """One grid point of a parameter sweep: the full overrides and the result.

    ``overrides`` holds the merged fixed + grid fields actually applied to
    the config, so :meth:`label` (and therefore artifact filenames) stays
    unique across sweeps that differ only in their fixed ``--set`` fields.
    """

    __slots__ = ("overrides", "result")

    def __init__(self, overrides: dict[str, Any], result: ExperimentResult):
        self.overrides = overrides
        self.result = result

    def label(self) -> str:
        """Stable ``key=value`` label, e.g. ``"n_trials=8__seed=1"``."""
        return "__".join(f"{k}={v}" for k, v in self.overrides.items())

    def filename_label(self) -> str:
        """The label sanitized for use in artifact filenames (see :func:`slugify_label`)."""
        return slugify_label(self.label())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepPoint({self.label()})"


def _expand_grid(
    spec: "registry.ExperimentSpec",
    grid: Mapping[str, Sequence[Any]],
    preset: str,
    overrides: Mapping[str, Any] | None,
) -> list[dict[str, Any]]:
    """Cartesian-product grid expansion with up-front validation."""
    if not grid:
        raise ValueError("sweep grid must name at least one field")
    keys = list(grid)
    combos = [dict(zip(keys, values)) for values in itertools.product(*(grid[k] for k in keys))]
    merged_combos = []
    for combo in combos:
        merged = {**(overrides or {}), **combo}
        spec.make_config(preset, merged)  # validate every grid point up front
        merged_combos.append(merged)
    return merged_combos


@dataclass
class SweepRun:
    """Everything a fault-tolerant sweep produced: outcomes, points, report.

    ``outcomes`` has one entry per grid cell in grid order.  ``points``
    narrows to the successful cells (completed or cache-served) as
    :class:`SweepPoint` values — the same shape the legacy :func:`sweep`
    returns.  When ``run_dir`` was given, ``manifest`` and ``cache`` point
    at the journal and artifact store that make the run resumable.
    """

    name: str
    preset: str
    outcomes: list[CellOutcome] = field(default_factory=list)
    manifest: RunManifest | None = None
    cache: ArtifactCache | None = None

    @property
    def points(self) -> list[SweepPoint]:
        """Successful grid points in grid order (failed cells are omitted)."""
        return [
            SweepPoint(dict(outcome.job.overrides or {}), outcome.result)
            for outcome in self.outcomes
            if outcome.result is not None
        ]

    @property
    def failures(self) -> list[CellOutcome]:
        """Cells that permanently failed (empty on a fully successful run)."""
        return [outcome for outcome in self.outcomes if outcome.failed]

    def failure_report(self) -> str:
        """Human-readable summary of the failed cells."""
        return failure_report(self.outcomes)


def run_sweep(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
    *,
    policy: RetryPolicy | None = None,
    run_dir: "str | Path | None" = None,
) -> SweepRun:
    """Run one experiment over a grid under the fault-tolerant engine.

    ``grid`` maps config field names to the values to sweep; ``overrides``
    are fixed fields applied to every point.  With ``run_dir`` set, the
    run is *resumable*: each cell's artifact is stored in a
    content-addressed cache under ``run_dir/cache/`` (keyed by experiment
    name, resolved config, seed and schema/code version) and every
    terminal cell state is appended to ``run_dir/manifest.jsonl`` — re-run
    the same sweep against the same ``run_dir`` and completed cells are
    served from the cache without simulation.

    ``policy`` controls per-cell timeout, retries, backoff and whether a
    permanently failed cell aborts the run
    (:class:`repro.experiments.supervisor.RetryPolicy`).  With
    ``policy.keep_going`` the returned :class:`SweepRun` carries partial
    results plus a failure report instead of raising
    :class:`repro.experiments.supervisor.SweepFailure`.
    """
    spec = registry.get(name)
    merged_combos = _expand_grid(spec, grid, preset, overrides)

    manifest: RunManifest | None = None
    cache: ArtifactCache | None = None
    if run_dir is not None:
        run_dir = Path(run_dir)
        manifest = RunManifest.in_dir(run_dir)
        cache = ArtifactCache(run_dir / CACHE_DIR_NAME)
        manifest.append_header(
            experiment=name, preset=preset,
            grid=grid, fixed=overrides, cells=len(merged_combos),
        )

    job_list = []
    for index, merged in enumerate(merged_combos):
        key = None
        if cache is not None:
            config = registry.config_to_jsonable(spec.make_config(preset, merged))
            key = cache_key(name, config)
        job_list.append(
            Job(
                cell=index, name=name, preset=preset, overrides=merged,
                key=key, label=SweepPoint(merged, None).label(),
            )
        )
    outcomes = run_supervised(
        job_list,
        workers=min(max(jobs, 1), len(job_list)),
        policy=policy,
        cache=cache,
        manifest=manifest,
    )
    return SweepRun(
        name=name, preset=preset, outcomes=outcomes,
        manifest=manifest, cache=cache,
    )


def sweep(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Run one experiment over the cartesian product of ``grid`` values.

    ``grid`` maps config field names to the values to sweep; ``overrides``
    are fixed fields applied to every point.  Points run process-parallel
    with ``jobs > 1`` and are returned in grid order.  This is the simple
    in-memory path; for timeouts, retries, caching and resumability use
    :func:`run_sweep`.
    """
    spec = registry.get(name)
    merged_combos = _expand_grid(spec, grid, preset, overrides)
    job_list = [(name, preset, merged) for merged in merged_combos]
    results = _execute(job_list, jobs)
    return [SweepPoint(merged, result) for merged, result in zip(merged_combos, results)]


def _coerce_json_overrides(config_cls: type, mapping: Mapping[str, Any]) -> dict[str, Any]:
    """Undo the JSON round-trip of override values (lists back to tuples)."""
    hints = typing.get_type_hints(config_cls)
    coerced: dict[str, Any] = {}
    for key, value in mapping.items():
        hint = hints.get(key)
        if hint is not None and typing.get_origin(hint) is tuple and isinstance(value, list):
            value = tuple(value)
        coerced[key] = value
    return coerced


def sweep_definition_from_manifest(
    manifest: RunManifest,
) -> tuple[str, dict[str, list[Any]], str, dict[str, Any] | None]:
    """Reconstruct (name, grid, preset, fixed overrides) from a run manifest.

    The values pass through a JSON round-trip in the manifest, so
    tuple-typed config fields are restored from lists using the
    experiment's declared field types.  Raises :class:`ValueError` when
    the manifest is missing or has no run-definition header.
    """
    header = manifest.header()
    if header is None:
        raise ValueError(
            f"{manifest.path} has no sweep definition; was this directory "
            "written by `python -m repro.experiments sweep`?"
        )
    name = header["experiment"]
    spec = registry.get(name)
    grid_raw = header.get("grid") or {}
    # Manifest records are written with sorted keys; restore the original
    # axis order (it determines the cartesian-product cell order) from the
    # header's explicit key list when present.
    grid_keys = header.get("grid_keys") or list(grid_raw)
    grid = {
        key: list(
            _coerce_json_overrides(spec.config_cls, {key: value})[key]
            for value in grid_raw[key]
        )
        for key in grid_keys
    }
    fixed_raw = header.get("fixed")
    fixed = _coerce_json_overrides(spec.config_cls, fixed_raw) if fixed_raw else None
    return name, grid, header["preset"], fixed


def main() -> None:  # pragma: no cover - CLI convenience
    """Legacy entry point: forwards to ``python -m repro.experiments run``."""
    import sys

    from repro.experiments.cli import main as cli_main

    sys.exit(cli_main(["run", *sys.argv[1:], "--no-save"]))


if __name__ == "__main__":  # pragma: no cover
    main()
