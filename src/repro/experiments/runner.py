"""Run every experiment and collect the paper-vs-measured comparison.

``python -m repro.experiments.runner`` regenerates all figures with small
default workloads and prints one report per experiment; the benchmark
harness in ``benchmarks/`` wraps the same entry points with
pytest-benchmark so the figures can be regenerated and timed with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablation_combining,
    ablation_slope,
    fig12_sync_error,
    fig13_cp_reduction,
    fig14_delay_spread,
    fig15_power_gains,
    fig16_frequency_diversity,
    fig17_lasthop,
    fig18_opportunistic,
    overhead,
)
from repro.experiments.common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_all", "run_experiment"]

#: Registry of experiment name -> zero-argument callable with quick defaults.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig12": lambda: fig12_sync_error.run(
        snr_points_db=(6.0, 12.0, 20.0), n_topologies=2, n_measurements=4
    ),
    "fig13": lambda: fig13_cp_reduction.run(cp_values_samples=(0, 2, 4, 8, 16, 24, 32), n_frames=1),
    "fig14": lambda: fig14_delay_spread.run(n_realizations=100),
    "fig15": lambda: fig15_power_gains.run(n_placements=3),
    "fig16": lambda: fig16_frequency_diversity.run(),
    "fig17": lambda: fig17_lasthop.run(n_placements=12, n_packets=80),
    "fig18": lambda: fig18_opportunistic.run(n_topologies=10, batch_size=16),
    "overhead": lambda: overhead.run(),
    "ablation_combining": lambda: ablation_combining.run(n_realizations=150),
    "ablation_slope": lambda: ablation_slope.run(n_trials=8),
}


def run_experiment(name: str) -> ExperimentResult:
    """Run a single experiment by name with quick defaults."""
    try:
        factory = EXPERIMENTS[name]
    except KeyError as exc:
        raise ValueError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}") from exc
    return factory()


def run_all(names: list[str] | None = None) -> dict[str, ExperimentResult]:
    """Run all (or selected) experiments and return their results."""
    selected = list(EXPERIMENTS) if names is None else names
    return {name: run_experiment(name) for name in selected}


def main() -> None:  # pragma: no cover - CLI convenience
    """Command-line entry point printing every experiment report."""
    import sys

    names = sys.argv[1:] or None
    for name, result in run_all(names).items():
        print(result.report())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
