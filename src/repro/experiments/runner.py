"""Registry-driven experiment runner: selection, validation, parallelism.

``run_all`` resolves experiment names (or ``--tag`` filters) against the
central registry (:mod:`repro.experiments.registry`), validates *every*
requested name, preset and config override up front — one
:class:`ValueError` lists every unknown name, instead of a partial run
failing midway — and then executes the selected experiments sequentially
or across a process pool (``jobs > 1``).  Every experiment seeds its own
RNGs from its config, so parallel and sequential execution produce
identical results.

``sweep`` expands ``field=value`` grids into the cartesian product of
configs for one experiment and runs the grid points with the same
machinery.

``python -m repro.experiments.runner`` is kept as a legacy alias for
``python -m repro.experiments run`` (see :mod:`repro.experiments.cli`).
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.experiments import registry
from repro.experiments.common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_all", "run_experiment", "sweep", "SweepPoint"]


def _quick_factory(name: str) -> Callable[[], ExperimentResult]:
    def factory() -> ExperimentResult:
        return run_experiment(name)

    return factory


#: Backward-compatible registry view: name -> zero-argument callable running
#: the experiment's ``quick`` preset.  New code should use
#: :mod:`repro.experiments.registry` directly.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    name: _quick_factory(name) for name in registry.names()
}


def run_experiment(
    name: str,
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
) -> ExperimentResult:
    """Run a single experiment by name at the given preset."""
    spec = registry.get(name)
    return spec.run(spec.make_config(preset, overrides))


def _resolve_names(
    names: Sequence[str] | None,
    tags: Iterable[str] | None = None,
) -> list[str]:
    """Requested names in registry order, validated up front.

    Unknown names are collected and reported in a single ``ValueError`` so a
    typo in the last of ten names is caught before the first experiment runs.
    """
    known = registry.names()
    if names is None:
        selected = list(known)
    else:
        unknown = [n for n in names if n not in known]
        if unknown:
            raise ValueError(
                f"unknown experiments {unknown}; known: {sorted(known)}"
            )
        selected = [n for n in known if n in set(names)]
    if tags:
        wanted = set(tags)
        unknown_tags = sorted(wanted - set(registry.all_tags()))
        if unknown_tags:
            raise ValueError(
                f"unknown tags {unknown_tags}; known: {registry.all_tags()}"
            )
        selected = [n for n in selected if wanted & set(registry.get(n).tags)]
    return selected


def _run_job(job: tuple[str, str, dict[str, Any] | None]) -> ExperimentResult:
    """Process-pool entry point: run one (name, preset, overrides) job."""
    name, preset, overrides = job
    spec = registry.get(name)
    return spec.run(spec.make_config(preset, overrides))


def _execute(jobs: list[tuple[str, str, dict[str, Any] | None]], n_jobs: int) -> list[ExperimentResult]:
    """Run jobs sequentially or across a process pool, preserving order."""
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")
    if n_jobs == 1 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(jobs))) as pool:
        return list(pool.map(_run_job, jobs))


def run_all(
    names: Sequence[str] | None = None,
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
    tags: Iterable[str] | None = None,
) -> dict[str, ExperimentResult]:
    """Run all (or selected) experiments and return their results by name.

    ``overrides`` apply to every selected experiment; a field unknown to any
    selected experiment's config raises before anything runs.  With
    ``jobs > 1`` the experiments run process-parallel.
    """
    selected = _resolve_names(names, tags)
    job_list: list[tuple[str, str, dict[str, Any] | None]] = []
    for name in selected:
        spec = registry.get(name)
        spec.make_config(preset, overrides)  # up-front preset/override validation
        job_list.append((name, preset, dict(overrides) if overrides else None))
    results = _execute(job_list, jobs)
    return dict(zip(selected, results))


class SweepPoint:
    """One grid point of a parameter sweep: the full overrides and the result.

    ``overrides`` holds the merged fixed + grid fields actually applied to
    the config, so :meth:`label` (and therefore artifact filenames) stays
    unique across sweeps that differ only in their fixed ``--set`` fields.
    """

    __slots__ = ("overrides", "result")

    def __init__(self, overrides: dict[str, Any], result: ExperimentResult):
        self.overrides = overrides
        self.result = result

    def label(self) -> str:
        """Stable ``key=value`` label, e.g. ``"n_trials=8__seed=1"``."""
        return "__".join(f"{k}={v}" for k, v in self.overrides.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepPoint({self.label()})"


def sweep(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    preset: str = "quick",
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Run one experiment over the cartesian product of ``grid`` values.

    ``grid`` maps config field names to the values to sweep; ``overrides``
    are fixed fields applied to every point.  Points run process-parallel
    with ``jobs > 1`` and are returned in grid order.
    """
    spec = registry.get(name)
    if not grid:
        raise ValueError("sweep grid must name at least one field")
    keys = list(grid)
    combos = [dict(zip(keys, values)) for values in itertools.product(*(grid[k] for k in keys))]
    job_list = []
    merged_combos = []
    for combo in combos:
        merged = {**(overrides or {}), **combo}
        spec.make_config(preset, merged)  # validate every grid point up front
        job_list.append((name, preset, merged))
        merged_combos.append(merged)
    results = _execute(job_list, jobs)
    return [SweepPoint(merged, result) for merged, result in zip(merged_combos, results)]


def main() -> None:  # pragma: no cover - CLI convenience
    """Legacy entry point: forwards to ``python -m repro.experiments run``."""
    import sys

    from repro.experiments.cli import main as cli_main

    sys.exit(cli_main(["run", *sys.argv[1:], "--no-save"]))


if __name__ == "__main__":  # pragma: no cover
    main()
