"""Supervised job scheduler: fault-tolerant execution of experiment grids.

This module replaces the runner's bare ``ProcessPoolExecutor.map`` with a
supervisor that owns its worker processes and survives their failures.
Each worker is a long-lived child process fed one cell at a time over a
private pipe, so the supervisor always knows *which* cell a worker is
running and *when* it started — the two facts a pool ``map`` throws away
and exactly what per-cell timeouts and crash attribution need.

Recovery paths (all exercised by the fault-injection suite,
``tests/experiments/test_sweep_fault.py``):

* **Worker crash** (segfault, OOM kill, ``BrokenProcessPool``-style death):
  detected as EOF on the worker's pipe; the dead worker is respawned, the
  cell's attempt is recorded as ``crash`` and the cell is retried with
  exponential backoff.  Other in-flight cells are unaffected — a single
  death never poisons the pool.
* **Hang**: a cell that exceeds the per-cell wall-clock timeout has its
  worker killed (SIGKILL) and respawned; the attempt is recorded as
  ``timeout`` and the cell retried.
* **Corrupt artifact**: after a worker reports success, the supervisor
  re-validates the cell's cache entry; an unreadable entry is quarantined
  by :class:`repro.experiments.cache.ArtifactCache` and the attempt is
  recorded as ``corrupt`` and retried.
* **Permanent failure**: a cell that fails ``retries + 1`` attempts is
  recorded as ``failed`` in the run manifest.  With
  ``RetryPolicy.keep_going`` the sweep completes every other cell and
  returns partial results plus a failure report; without it the sweep
  aborts (pending cells cancelled, in-flight workers killed) and raises
  :class:`SweepFailure`.

Every completed, cached or failed cell is journalled to an append-only
JSONL run manifest (:class:`RunManifest`), written line-atomically so an
interrupted sweep can be resumed: completed cells are skipped via the
content-addressed artifact cache and only the remainder is re-executed.

Determinism: retries, backoff jitter, scheduling order and worker count
never change *results* — every experiment seeds its RNGs from its config,
so a resumed, retried, rescheduled grid converges to the bit-identical
artifacts of an uninterrupted run.
"""

from __future__ import annotations

import heapq
import json
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments import faults, registry
from repro.experiments.cache import ArtifactCache
from repro.experiments.common import ExperimentResult, _decode_value, _encode_value

__all__ = [
    "Job",
    "RetryPolicy",
    "Attempt",
    "CellOutcome",
    "RunManifest",
    "SweepFailure",
    "run_supervised",
    "failure_report",
    "MANIFEST_SCHEMA",
]

#: Version of the JSONL manifest layout.
MANIFEST_SCHEMA = 1

#: Poll interval of the supervision loop, seconds.  Small enough that
#: timeouts are enforced promptly, large enough not to spin.
_TICK_S = 0.05


@dataclass(frozen=True)
class Job:
    """One schedulable grid cell: an experiment run plus its identity.

    ``cell`` is the stable zero-based index of the cell within the run —
    the unit fault rules, manifest records and retry state are keyed by.
    ``key`` is the content address of the cell's artifact (None disables
    caching for the job); ``label`` is the human-readable cell name used
    in manifests and failure reports.
    """

    cell: int
    name: str
    preset: str
    overrides: Mapping[str, Any] | None = None
    key: str | None = None
    label: str | None = None

    def describe(self) -> str:
        """Short human-readable identity for logs and failure reports."""
        text = f"cell {self.cell} ({self.name}"
        if self.label:
            text += f"[{self.label}]"
        return text + f", preset {self.preset})"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell fault-handling knobs of a supervised run.

    ``timeout_s``
        Wall-clock budget of one attempt; None disables the timeout.
    ``retries``
        Extra attempts after the first (0 = fail on first error).
    ``backoff_base_s`` / ``backoff_factor`` / ``backoff_jitter``
        A failed attempt ``k`` (1-based) waits
        ``base * factor**(k-1) * (1 + jitter * u)`` before retrying, with
        ``u`` drawn deterministically from the (cell, attempt) pair so
        backoff schedules are reproducible and decorrelated across cells.
    ``keep_going``
        True: permanently failed cells are recorded and the sweep carries
        on, returning partial results.  False: the first permanent failure
        aborts the run and raises :class:`SweepFailure`.
    """

    timeout_s: float | None = None
    retries: int = 0
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    keep_going: bool = False

    def backoff_delay(self, cell: int, failed_attempts: int) -> float:
        """Seconds to wait before retry number ``failed_attempts`` of ``cell``."""
        base = self.backoff_base_s * self.backoff_factor ** max(failed_attempts - 1, 0)
        jitter_u = random.Random(f"repro-backoff:{cell}:{failed_attempts}").random()
        return base * (1.0 + self.backoff_jitter * jitter_u)


@dataclass
class Attempt:
    """Record of one execution attempt of one cell."""

    outcome: str  #: "ok", "crash", "timeout", "corrupt" or "error"
    error: str | None = None
    duration_s: float | None = None

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible manifest representation."""
        record: dict[str, Any] = {"outcome": self.outcome}
        if self.error is not None:
            record["error"] = self.error
        if self.duration_s is not None:
            record["duration_s"] = round(self.duration_s, 3)
        return record


@dataclass
class CellOutcome:
    """Final state of one cell after supervision: status, attempts, result.

    ``status`` is ``"completed"`` (ran to success), ``"cached"`` (served
    from the artifact cache without simulation) or ``"failed"``
    (exhausted retries).  ``result`` is None exactly when failed.
    """

    job: Job
    status: str
    attempts: list[Attempt] = field(default_factory=list)
    result: ExperimentResult | None = None

    @property
    def failed(self) -> bool:
        """True when the cell permanently failed."""
        return self.status == "failed"


class SweepFailure(RuntimeError):
    """A supervised run had permanently failed cells (and keep_going is off).

    Carries the partial ``outcomes`` collected before the failure so
    callers can still inspect or persist completed cells.
    """

    def __init__(self, message: str, outcomes: list[CellOutcome]):
        super().__init__(message)
        self.outcomes = outcomes


class RunManifest:
    """Append-only JSONL journal of a sweep run directory.

    One record per line.  The first ``sweep`` record stores the run
    definition (experiment, preset, grid, fixed overrides) so
    ``sweep --resume DIR`` can reconstruct the grid without re-supplying
    the command line; each completed/cached/failed cell appends a ``cell``
    record.  Appends are single ``write`` calls of one line, and the
    reader drops an unparsable trailing line, so a crash mid-append can
    never make the manifest unreadable.
    """

    #: Conventional manifest filename inside a sweep output directory.
    FILENAME = "manifest.jsonl"

    def __init__(self, path: "str | Path"):
        self.path = Path(path)

    @classmethod
    def in_dir(cls, directory: "str | Path") -> "RunManifest":
        """The manifest of sweep output directory ``directory``."""
        return cls(Path(directory) / cls.FILENAME)

    def exists(self) -> bool:
        """True when the manifest file is present on disk."""
        return self.path.exists()

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one JSON record as a single line (atomic enough for JSONL).

        Values pass through the artifact layer's strict-JSON encoding, so
        non-finite floats (e.g. a swept ``-inf`` config value) survive the
        round trip without emitting bare ``NaN`` tokens.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(_encode_value(dict(record)), sort_keys=True, allow_nan=False)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append_header(
        self,
        *,
        experiment: str,
        preset: str,
        grid: Mapping[str, Sequence[Any]] | None,
        fixed: Mapping[str, Any] | None,
        cells: int,
    ) -> None:
        """Append the run-definition record consumed by ``sweep --resume``."""
        self.append(
            {
                "event": "sweep",
                "schema": MANIFEST_SCHEMA,
                "experiment": experiment,
                "preset": preset,
                "grid": {k: list(v) for k, v in grid.items()} if grid else None,
                # append() sorts keys, which would alphabetize the grid axes
                # and permute the cell order on resume; the explicit key list
                # preserves the original axis order.
                "grid_keys": list(grid) if grid else None,
                "fixed": dict(fixed) if fixed else None,
                "cells": cells,
            }
        )

    def records(self) -> list[dict[str, Any]]:
        """Every parsable record, dropping a truncated trailing line."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        records: list[dict[str, Any]] = []
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(_decode_value(json.loads(line)))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # torn tail write from an interrupted append
                raise ValueError(f"{self.path}:{index + 1}: corrupt manifest line")
        return records

    def header(self) -> dict[str, Any] | None:
        """The first ``sweep`` run-definition record, or None."""
        for record in self.records():
            if record.get("event") == "sweep":
                return record
        return None

    def cell_records(self) -> dict[int, dict[str, Any]]:
        """Latest ``cell`` record per cell index (later runs supersede)."""
        latest: dict[int, dict[str, Any]] = {}
        for record in self.records():
            if record.get("event") == "cell" and isinstance(record.get("cell"), int):
                latest[record["cell"]] = record
        return latest


def failure_report(outcomes: Sequence[CellOutcome]) -> str:
    """Human-readable summary of the failed cells of a supervised run."""
    failed = [outcome for outcome in outcomes if outcome.failed]
    if not failed:
        return "all cells completed"
    lines = [f"{len(failed)} cell(s) permanently failed:"]
    for outcome in failed:
        history = ", ".join(
            attempt.outcome + (f" ({attempt.error})" if attempt.error else "")
            for attempt in outcome.attempts
        )
        lines.append(f"  {outcome.job.describe()}: {history}")
    lines.append("re-run with `sweep --resume <output-dir>` to retry failed cells")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _worker_main(conn) -> None:
    """Worker-process loop: receive (job, attempt) tasks, send results.

    Messages back to the supervisor are ``("done", cell, attempt,
    duration_s, result)`` or ``("error", cell, attempt, duration_s,
    message)``.  A fault-injected crash sends nothing (the process dies);
    a hang sends nothing until killed.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if task is None:
            return
        cell, attempt, name, preset, overrides, cache_root, key = task
        fault = faults.active_fault(faults.rules_from_env(), cell, attempt)
        faults.trip_preexec_fault(fault)  # crash / hang; no-op otherwise
        start = time.perf_counter()
        try:
            spec = registry.get(name)
            result = spec.run(spec.make_config(preset, overrides))
            if cache_root is not None and key is not None:
                cache = ArtifactCache(cache_root)
                path = cache.put(key, result)
                if fault == "corrupt":
                    # Simulate on-disk corruption *after* the atomic write:
                    # the entry exists but is truncated mid-payload.
                    # Deliberately non-atomic: this *is* the fault.
                    path.write_text(path.read_text()[:24])  # repro-lint: disable=R005
            message = ("done", cell, attempt, time.perf_counter() - start, result)
        except KeyboardInterrupt:
            return
        except Exception as exc:  # noqa: BLE001 - report, don't kill the worker
            message = (
                "error", cell, attempt, time.perf_counter() - start,
                f"{type(exc).__name__}: {exc}",
            )
        try:
            conn.send(message)
        except (BrokenPipeError, EOFError, KeyboardInterrupt):
            return


class _WorkerHandle:
    """Supervisor-side view of one worker process and its private pipe."""

    __slots__ = ("proc", "conn", "job", "attempt", "deadline")

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.job: Job | None = None
        self.attempt = 0
        self.deadline: float | None = None

    @property
    def busy(self) -> bool:
        return self.job is not None

    def assign(self, job: Job, attempt: int, cache_root: str | None, timeout_s: float | None) -> None:
        self.conn.send(
            (
                job.cell, attempt, job.name, job.preset,
                dict(job.overrides) if job.overrides else None,
                cache_root, job.key,
            )
        )
        self.job = job
        self.attempt = attempt
        self.deadline = (time.monotonic() + timeout_s) if timeout_s else None

    def clear(self) -> None:
        self.job = None
        self.attempt = 0
        self.deadline = None

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(5.0)
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Graceful shutdown: ask the worker to exit, escalate to kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(1.0)
        if self.proc.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


# --------------------------------------------------------------------------
# Supervisor loop
# --------------------------------------------------------------------------


def run_supervised(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    cache: ArtifactCache | None = None,
    manifest: RunManifest | None = None,
) -> list[CellOutcome]:
    """Execute ``jobs`` under supervision; return one outcome per job.

    Cells whose cache key already resolves to a valid entry are served
    from the cache without simulation (status ``"cached"``).  The rest run
    on ``workers`` respawnable worker processes under ``policy``'s
    timeout/retry/backoff rules; every terminal cell state is journalled
    to ``manifest`` when given.  Outcomes are returned in job order.

    Raises :class:`SweepFailure` when a cell permanently fails and
    ``policy.keep_going`` is False (pending cells are cancelled and
    in-flight workers killed first — their cells simply remain unrecorded
    and re-run on resume).
    """
    policy = policy or RetryPolicy()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    outcomes: dict[int, CellOutcome] = {}
    attempts: dict[int, list[Attempt]] = {job.cell: [] for job in jobs}
    by_cell = {job.cell: job for job in jobs}
    if len(by_cell) != len(jobs):
        raise ValueError("job cell indices must be unique")

    def record(outcome: CellOutcome) -> None:
        outcomes[outcome.job.cell] = outcome
        if manifest is not None:
            manifest.append(
                {
                    "event": "cell",
                    "cell": outcome.job.cell,
                    "experiment": outcome.job.name,
                    "label": outcome.job.label,
                    "key": outcome.job.key,
                    "status": outcome.status,
                    "attempts": [attempt.to_json() for attempt in outcome.attempts],
                }
            )

    # Cache fast path: completed cells (this run or any previous one with
    # the same keys) are lookups, not simulations.
    pending: deque[tuple[Job, int]] = deque()
    for job in jobs:
        hit = cache.get(job.key) if (cache is not None and job.key) else None
        if hit is not None:
            record(CellOutcome(job=job, status="cached", result=hit))
        else:
            pending.append((job, 1))

    if not pending:
        return [outcomes[job.cell] for job in jobs]

    ctx = get_context()
    cache_root = str(cache.root) if cache is not None else None
    pool = [_WorkerHandle(ctx) for _ in range(min(workers, len(pending)))]
    waiting: list[tuple[float, int, Job, int]] = []  # (ready_at, seq, job, attempt)
    waiting_seq = 0
    aborted: SweepFailure | None = None

    def handle_failure(job: Job, attempt_no: int, outcome: str, error: str | None, duration: float | None) -> None:
        nonlocal waiting_seq, aborted
        attempts[job.cell].append(Attempt(outcome=outcome, error=error, duration_s=duration))
        if attempt_no <= policy.retries:
            delay = policy.backoff_delay(job.cell, attempt_no)
            waiting_seq += 1
            heapq.heappush(waiting, (time.monotonic() + delay, waiting_seq, job, attempt_no + 1))
            return
        record(
            CellOutcome(job=job, status="failed", attempts=list(attempts[job.cell]))
        )
        if not policy.keep_going and aborted is None:
            aborted = SweepFailure(
                f"{job.describe()} failed after {attempt_no} attempt(s) "
                f"(last: {outcome}{': ' + error if error else ''}); "
                "use keep_going/--keep-going for partial results",
                [],
            )

    def handle_success(worker: _WorkerHandle, job: Job, attempt_no: int, duration: float, result: ExperimentResult) -> None:
        if cache is not None and job.key:
            validated = cache.get(job.key)
            if validated is None:
                # Entry unreadable right after the worker wrote it: corrupt
                # artifact (quarantined by cache.get).  Count as a failed
                # attempt and retry.
                handle_failure(job, attempt_no, "corrupt", "cache entry failed validation", duration)
                return
            result = validated
        attempts[job.cell].append(Attempt(outcome="ok", duration_s=duration))
        record(
            CellOutcome(
                job=job, status="completed",
                attempts=list(attempts[job.cell]), result=result,
            )
        )

    try:
        while (pending or waiting or any(w.busy for w in pool)) and aborted is None:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _, _, job, attempt_no = heapq.heappop(waiting)
                pending.append((job, attempt_no))
            for worker in pool:
                if pending and not worker.busy:
                    job, attempt_no = pending.popleft()
                    worker.assign(job, attempt_no, cache_root, policy.timeout_s)

            busy = [worker for worker in pool if worker.busy]
            if busy:
                readable = set(
                    _connection_wait([worker.conn for worker in busy], timeout=_TICK_S)
                )
            else:
                readable = set()
                time.sleep(min(_TICK_S, max(waiting[0][0] - now, 0.0)) if waiting else _TICK_S)

            now = time.monotonic()
            for index, worker in enumerate(pool):
                if not worker.busy:
                    continue
                job, attempt_no = worker.job, worker.attempt
                if worker.conn in readable:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        # Worker died without reporting: crash.  Respawn the
                        # slot; only this cell's attempt is charged.
                        worker.kill()
                        pool[index] = _WorkerHandle(ctx)
                        handle_failure(job, attempt_no, "crash", "worker process died", None)
                        continue
                    worker.clear()
                    kind, _cell, _attempt, duration, payload = message
                    if kind == "done":
                        handle_success(worker, job, attempt_no, duration, payload)
                    else:
                        handle_failure(job, attempt_no, "error", payload, duration)
                elif not worker.proc.is_alive():
                    worker.kill()
                    pool[index] = _WorkerHandle(ctx)
                    handle_failure(job, attempt_no, "crash", "worker process died", None)
                elif worker.deadline is not None and now > worker.deadline:
                    worker.kill()
                    pool[index] = _WorkerHandle(ctx)
                    handle_failure(
                        job, attempt_no, "timeout",
                        f"exceeded {policy.timeout_s:g}s wall-clock timeout", None,
                    )
    finally:
        for worker in pool:
            worker.stop()

    if aborted is not None:
        aborted.outcomes = [outcomes[job.cell] for job in jobs if job.cell in outcomes]
        raise aborted

    ordered = [outcomes[job.cell] for job in jobs]
    failed = [outcome for outcome in ordered if outcome.failed]
    if failed and not policy.keep_going:
        raise SweepFailure(failure_report(ordered), ordered)
    return ordered
