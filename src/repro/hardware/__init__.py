"""Radio hardware models: detection latency, turnaround delay, sample clocks."""

from repro.hardware.clock import SampleClock
from repro.hardware.frontend import DetectionLatencyModel, RadioFrontend

__all__ = ["SampleClock", "RadioFrontend", "DetectionLatencyModel"]
