"""Hardware sample clock / tick counter model.

Nodes measure local time by counting ticks of their own sample clock
(the paper's prototype FPGA is clocked at 128 MHz; our simulated nodes count
baseband samples).  The clock of each node runs at a slightly different rate
because it is derived from the same imperfect crystal as the carrier
(:mod:`repro.channel.oscillator`), which this model captures through a ppm
error term.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SampleClock"]


@dataclass
class SampleClock:
    """A free-running tick counter with a rate error.

    Attributes
    ----------
    nominal_rate_hz:
        Nominal tick rate (defaults to the 20 MHz baseband sample rate).
    ppm:
        Rate error of this clock in parts per million.
    """

    nominal_rate_hz: float = 20e6
    ppm: float = 0.0

    @property
    def actual_rate_hz(self) -> float:
        """True tick rate including the ppm error."""
        return self.nominal_rate_hz * (1.0 + self.ppm * 1e-6)

    def ticks_for_duration(self, duration_s: float) -> float:
        """Number of local ticks this clock counts over a true duration."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return duration_s * self.actual_rate_hz

    def duration_for_ticks(self, ticks: float) -> float:
        """True elapsed time corresponding to a local tick count."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        return ticks / self.actual_rate_hz

    def nominal_duration_for_ticks(self, ticks: float) -> float:
        """Duration the node *believes* elapsed (using its nominal rate)."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        return ticks / self.nominal_rate_hz

    def measurement_error_s(self, duration_s: float) -> float:
        """Error a node makes when it measures a true duration with this clock.

        The node counts ticks at its actual rate but converts them back to
        seconds using the nominal rate; the difference is the measurement
        error that accumulates with the measured duration.
        """
        ticks = self.ticks_for_duration(duration_s)
        return self.nominal_duration_for_ticks(ticks) - duration_s
