"""Radio front-end model: detection latency and turnaround delay.

The paper's central observation (§1, §4.2) is that a node does not detect a
packet at the instant the signal reaches its antenna; detection happens a
random, SNR-dependent time later (on the order of hundreds of nanoseconds,
citing Williams et al.), and switching from receive to transmit takes a
node-specific hardware turnaround time that 802.11 bounds only loosely
(up to 10 us, far longer than a 4 us OFDM symbol).  SourceSync must measure
and cancel both.  This module models those two quantities per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.rng import require_rng

__all__ = ["RadioFrontend", "DetectionLatencyModel"]


@dataclass(frozen=True)
class DetectionLatencyModel:
    """Statistical model of packet-detection latency.

    Detection latency is the number of samples between the arrival of the
    first packet sample and the instant the detector fires.  It shrinks as
    SNR grows (the correlator needs fewer samples to accumulate confidence)
    but never reaches zero, and it has packet-to-packet jitter.

    The default constants are chosen so the latency is a few hundred
    nanoseconds with tens of nanoseconds of jitter at 20 Msps, matching the
    variability the paper cites (~hundreds of ns, [42]).
    """

    base_samples: float = 3.0
    snr_slope_samples: float = 8.0
    snr_scale_db: float = 8.0
    jitter_samples: float = 1.5
    max_samples: float = 24.0

    def mean_latency_samples(self, snr_db: float) -> float:
        """Average detection latency at a given SNR, in samples."""
        excess = self.snr_slope_samples * np.exp(-max(snr_db, 0.0) / self.snr_scale_db)
        return float(min(self.base_samples + excess, self.max_samples))

    def sample(self, snr_db: float, rng: np.random.Generator) -> float:
        """Draw one detection latency realisation (non-negative, in samples)."""
        latency = rng.normal(self.mean_latency_samples(snr_db), self.jitter_samples)
        return float(np.clip(latency, 0.0, self.max_samples))


@dataclass
class RadioFrontend:
    """Per-node radio hardware characteristics.

    Attributes
    ----------
    turnaround_samples:
        Time to switch the node from reception to transmission, in samples.
        Constant for a given node (§4.2b) but differing across nodes — the
        802.11 specifications allow up to 10 us.
    detection_model:
        The detection-latency statistics of this node's receiver.
    sample_rate_hz:
        Baseband sample rate, used by the convenience converters.
    """

    turnaround_samples: float
    detection_model: DetectionLatencyModel = DetectionLatencyModel()
    sample_rate_hz: float = 20e6

    @classmethod
    def random(
        cls,
        rng: np.random.Generator | None = None,
        min_turnaround_us: float = 2.0,
        max_turnaround_us: float = 8.0,
        sample_rate_hz: float = 20e6,
    ) -> "RadioFrontend":
        """Draw a front end with a random (but then fixed) turnaround delay."""
        rng = require_rng(rng, "RadioFrontend.random")
        turnaround_us = float(rng.uniform(min_turnaround_us, max_turnaround_us))
        return cls(
            turnaround_samples=turnaround_us * 1e-6 * sample_rate_hz,
            sample_rate_hz=sample_rate_hz,
        )

    @property
    def turnaround_s(self) -> float:
        """Turnaround delay in seconds."""
        return self.turnaround_samples / self.sample_rate_hz

    @property
    def turnaround_ns(self) -> float:
        """Turnaround delay in nanoseconds."""
        return self.turnaround_s * 1e9

    def detection_delay_samples(self, snr_db: float, rng: np.random.Generator) -> float:
        """Draw the packet-detection delay for one reception at a given SNR."""
        return self.detection_model.sample(snr_db, rng)

    def measure_turnaround_samples(self, quantization_samples: float = 0.0) -> float:
        """The node's own measurement of its turnaround delay.

        The paper notes (§4.2b) the turnaround is constant per node and can
        be measured by counting hardware clock ticks, so the measurement is
        essentially exact up to clock quantisation.
        """
        if quantization_samples <= 0:
            return float(self.turnaround_samples)
        ticks = round(self.turnaround_samples / quantization_samples)
        return float(ticks * quantization_samples)
