"""Last-hop sender diversity: multi-AP downlink with a wired controller (§7.1)."""

from repro.lasthop.controller import Association, SourceSyncController
from repro.lasthop.rate_adaptation import SampleRate
from repro.lasthop.simulation import LastHopResult, simulate_downlink

__all__ = [
    "Association",
    "SourceSyncController",
    "SampleRate",
    "LastHopResult",
    "simulate_downlink",
]
