"""SourceSync last-hop controller and AP association (§7.1, Fig. 9).

A SourceSync WLAN deployment places a controller on the wired network.  The
controller forwards every downlink packet to all APs a client is associated
with, designates the AP with the best link as the *lead AP*, fixes the
static codeword ordering of the other APs, and collects ACKs (received over
uplink receiver-diversity) back to the lead AP, which drives
retransmissions and rate adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import Testbed

__all__ = ["Association", "SourceSyncController"]


@dataclass(frozen=True)
class Association:
    """A client's association with its neighbourhood of APs.

    Attributes
    ----------
    client:
        Client node id.
    lead_ap:
        The AP with the best downlink to the client; it carrier-senses,
        transmits the synchronization header and runs rate adaptation.
    cosender_aps:
        The other associated APs in codeword order (codeword ``i + 1``).
    """

    client: int
    lead_ap: int
    cosender_aps: tuple[int, ...]

    @property
    def all_aps(self) -> tuple[int, ...]:
        """Lead AP followed by the co-sender APs."""
        return (self.lead_ap, *self.cosender_aps)

    @property
    def k(self) -> int:
        """Number of APs the client is associated with."""
        return 1 + len(self.cosender_aps)


@dataclass
class SourceSyncController:
    """Wired-side controller coordinating multi-AP downlink transmissions.

    Parameters
    ----------
    testbed:
        Link model containing the APs and clients.
    ap_ids:
        Node ids acting as access points.
    max_aps_per_client:
        The tunable ``K`` of §7.1: how many APs a client associates with.
    """

    testbed: Testbed
    ap_ids: list[int]
    max_aps_per_client: int = 2
    associations: dict[int, Association] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.ap_ids:
            raise ValueError("at least one AP is required")
        if self.max_aps_per_client < 1:
            raise ValueError("max_aps_per_client must be at least 1")

    # ------------------------------------------------------------------
    def associate(self, client: int, probe_rate_mbps: float = 6.0) -> Association:
        """Associate a client with its best ``K`` APs (§7.1 MAC and association).

        The AP with the best downlink delivery probability becomes the lead;
        the next best ``K - 1`` APs join as co-senders.  The ordering also
        fixes each AP's space-time codeword.
        """
        if client in self.ap_ids:
            raise ValueError("a client cannot also be an AP")
        ranked = sorted(
            self.ap_ids,
            key=lambda ap: self.testbed.delivery_probability(ap, client, probe_rate_mbps),
            reverse=True,
        )
        chosen = ranked[: self.max_aps_per_client]
        association = Association(client=client, lead_ap=chosen[0], cosender_aps=tuple(chosen[1:]))
        self.associations[client] = association
        return association

    def association_for(self, client: int) -> Association:
        """The stored association of a client (associating it if necessary)."""
        if client not in self.associations:
            return self.associate(client)
        return self.associations[client]

    def best_single_ap(self, client: int, probe_rate_mbps: float = 6.0) -> int:
        """The single best AP for a client — the selective-diversity baseline of §8.3."""
        return max(
            self.ap_ids,
            key=lambda ap: self.testbed.delivery_probability(ap, client, probe_rate_mbps),
        )

    # ------------------------------------------------------------------
    def downlink_senders(self, client: int) -> list[int]:
        """Senders participating in a joint downlink transmission to a client."""
        association = self.association_for(client)
        return list(association.all_aps)
