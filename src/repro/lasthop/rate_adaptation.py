"""SampleRate bit-rate adaptation (Bicket, 2005) — §8(a) of the paper.

SampleRate picks the rate that has recently offered the lowest average
per-packet transmission time (including backoff and retransmissions) and
periodically "samples" other rates to discover whether conditions changed.
The paper uses SampleRate for the last-hop experiments, modified so that
only the lead AP runs the adaptation and the chosen rate is announced to
the other APs in the synchronization header (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.mac import MacTiming
from repro.phy.rates import Rate, rates_sorted
from repro.rng import require_rng

__all__ = ["SampleRate"]


@dataclass
class _RateStats:
    """Running statistics for one candidate rate."""

    attempts: int = 0
    successes: int = 0
    total_tx_time_us: float = 0.0
    successive_failures: int = 0

    def average_tx_time_us(self) -> float:
        """Average transmission time per *successful* packet at this rate."""
        if self.successes == 0:
            return float("inf")
        return self.total_tx_time_us / self.successes


@dataclass
class SampleRate:
    """The SampleRate algorithm for one link.

    Parameters
    ----------
    payload_bytes:
        Packet size used to compute per-rate transmission times.  Per-rate
        airtimes are precomputed at construction, so ``payload_bytes`` and
        ``timing`` must not be mutated afterwards — build a new adapter for
        a different packet size.
    timing:
        MAC timing model used to translate attempts into airtime.
    sample_every:
        One in every ``sample_every`` packets is sent at a randomly chosen
        non-current rate to keep statistics fresh (SampleRate uses ~10%).
    max_successive_failures:
        Rates with this many successive failures are excluded until they are
        sampled again.
    rng:
        Random source for the probe-rate sampling decisions.  Required:
        the adapter never mints its own entropy.
    """

    payload_bytes: int = 1460
    timing: MacTiming = field(default_factory=MacTiming)
    sample_every: int = 10
    max_successive_failures: int = 4
    rng: np.random.Generator | None = None
    _stats: dict[float, _RateStats] = field(default_factory=dict, repr=False)
    _packets_sent: int = 0

    def __post_init__(self) -> None:
        self.rng = require_rng(self.rng, "SampleRate")
        self._rates = rates_sorted()
        self._lossless_us = {
            rate.mbps: self.timing.single_transaction_us(self.payload_bytes, rate)
            for rate in self._rates
        }
        for rate in self._rates:
            self._stats[rate.mbps] = _RateStats()

    # ------------------------------------------------------------------
    def _lossless_tx_time_us(self, rate: Rate) -> float:
        # Precomputed at init: this is called several times per simulated
        # packet and the airtime model is static for a given payload size.
        return self._lossless_us[rate.mbps]

    def _current_best(self) -> Rate:
        """Rate with the lowest average transmission time so far.

        Rates that have never succeeded are ranked by their lossless
        transmission time, which makes the algorithm start optimistic (high
        rates) and fall back as failures accumulate — the standard
        SampleRate behaviour.
        """
        candidates = []
        for rate in self._rates:
            stats = self._stats[rate.mbps]
            if stats.successive_failures >= self.max_successive_failures:
                continue
            average = stats.average_tx_time_us()
            if not np.isfinite(average):
                average = self._lossless_tx_time_us(rate) * 1.2
            candidates.append((average, -rate.mbps, rate))
        if not candidates:
            return self._rates[0]
        candidates.sort()
        return candidates[0][2]

    # ------------------------------------------------------------------
    def choose_rate(self) -> Rate:
        """Rate to use for the next packet."""
        self._packets_sent += 1
        if self.sample_every > 0 and self._packets_sent % self.sample_every == 0:
            best = self._current_best()
            others = [r for r in self._rates if r.mbps != best.mbps]
            if others:
                # Sample a rate that could plausibly beat the current best:
                # SampleRate does not waste samples on rates whose lossless
                # time already exceeds the current average.
                best_avg = self._stats[best.mbps].average_tx_time_us()
                viable = [r for r in others if self._lossless_tx_time_us(r) < best_avg] or others
                return viable[int(self.rng.integers(0, len(viable)))]
        return self._current_best()

    def report(self, rate: Rate, success: bool, n_attempts: int = 1) -> None:
        """Feed back the outcome of a packet transmission."""
        if n_attempts < 1:
            raise ValueError("n_attempts must be at least 1")
        stats = self._stats[rate.mbps]
        airtime = self._lossless_tx_time_us(rate) * n_attempts
        stats.attempts += n_attempts
        stats.total_tx_time_us += airtime
        if success:
            stats.successes += 1
            stats.successive_failures = 0
        else:
            stats.successive_failures += 1

    # ------------------------------------------------------------------
    def statistics(self) -> dict[float, tuple[int, int, float]]:
        """Per-rate (attempts, successes, average tx time) for diagnostics."""
        return {
            mbps: (s.attempts, s.successes, s.average_tx_time_us())
            for mbps, s in self._stats.items()
        }
