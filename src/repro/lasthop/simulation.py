"""Last-hop downlink simulation: single best AP vs SourceSync multi-AP (§8.3).

For each client placement the experiment of Fig. 17 compares:

* **selective diversity** — the client is served by its single best AP,
  which runs SampleRate and retransmits until the packet is acknowledged;
* **SourceSync** — all associated APs transmit jointly; the lead AP runs
  SampleRate (the combined channel often sustains a higher rate than either
  AP alone, which is where most of the gain comes from), and every joint
  transmission is charged the §4.4 synchronization overhead.

Both modes deliver a stream of packets and report goodput over consumed
medium time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lasthop.controller import SourceSyncController
from repro.lasthop.rate_adaptation import SampleRate
from repro.net.mac import CsmaState, MacTiming
from repro.net.topology import Testbed
from repro.rng import require_rng

__all__ = ["LastHopResult", "simulate_downlink"]


@dataclass(frozen=True)
class LastHopResult:
    """Downlink goodput for one client placement under one scheme."""

    throughput_mbps: float
    delivered_packets: int
    total_packets: int
    transmissions: int
    scheme: str
    senders: tuple[int, ...]

    @property
    def delivery_ratio(self) -> float:
        """Fraction of offered packets eventually delivered."""
        if self.total_packets == 0:
            return 0.0
        return self.delivered_packets / self.total_packets


def simulate_downlink(
    testbed: Testbed,
    controller: SourceSyncController,
    client: int,
    scheme: str = "sourcesync",
    n_packets: int = 200,
    payload_bytes: int = 1460,
    retry_limit: int = 7,
    rng: np.random.Generator | None = None,
    timing: MacTiming | None = None,
) -> LastHopResult:
    """Simulate a downlink packet stream to one client.

    Parameters
    ----------
    scheme:
        ``"sourcesync"`` for joint multi-AP transmission, ``"best_ap"`` for
        the selective-diversity baseline (single best AP), or
        ``"single_ap:<id>"`` to force a specific AP (used to report each
        AP's stand-alone throughput).
    """
    rng = require_rng(rng, "simulate_downlink")
    timing = timing if timing is not None else MacTiming(params=testbed.params)

    if scheme == "sourcesync":
        senders = controller.downlink_senders(client)
    elif scheme == "best_ap":
        senders = [controller.best_single_ap(client)]
    elif scheme.startswith("single_ap:"):
        senders = [int(scheme.split(":", 1)[1])]
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    n_cosenders = len(senders) - 1
    adapter = SampleRate(payload_bytes=payload_bytes, timing=timing, rng=rng)
    mac = CsmaState()
    delivered = 0

    for _ in range(n_packets):
        success = False
        attempts = 0
        rate = adapter.choose_rate()
        while attempts < retry_limit and not success:
            attempts += 1
            if n_cosenders > 0:
                airtime = timing.joint_transaction_us(payload_bytes, rate, n_cosenders)
            else:
                airtime = timing.single_transaction_us(payload_bytes, rate)
            success = testbed.attempt_delivery(senders, client, rate, payload_bytes, rng)
            mac.account(airtime, success)
        adapter.report(rate, success, attempts)
        if success:
            delivered += 1

    throughput = mac.throughput_mbps(delivered * payload_bytes * 8)
    return LastHopResult(
        throughput_mbps=throughput,
        delivered_packets=delivered,
        total_packets=n_packets,
        transmissions=mac.transmissions,
        scheme=scheme,
        senders=tuple(senders),
    )
