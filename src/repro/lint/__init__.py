"""Determinism static analysis and RNG draw auditing.

The bit-identical-replay contract (lockstep == sequential == chunked ==
resumed, under one seed) is enforced twice:

* **Statically** — an AST rule engine (:mod:`repro.lint.engine`,
  :mod:`repro.lint.rules`) with stable ``R0xx`` codes, inline
  ``# repro-lint: disable=R0xx`` suppressions and a checked-in baseline
  (:mod:`repro.lint.baseline`), run as ``python -m repro.lint`` and
  gated by ``tests/lint/test_repro_lint_clean.py``.  Rule codes and the
  suppression syntax are documented in ``docs/LINT.md``.
* **At runtime** — the draw-ledger auditor (:mod:`repro.lint.ledger`)
  wraps ``numpy.random.Generator`` to record every draw with its stack
  site, so when two runs that should be bit-identical diverge, the
  differ names the exact first divergent draw instead of "arrays
  differ".
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import Finding, Rule, lint_paths, lint_source
from repro.lint.rules import DEFAULT_RULES, rules_by_code

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "lint_paths",
    "lint_source",
    "DEFAULT_RULES",
    "rules_by_code",
]
