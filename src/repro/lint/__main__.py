"""``python -m repro.lint`` entry point."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
