"""Baseline file support: grandfather existing findings, fail on new ones.

A baseline entry identifies a finding by ``(code, path, context)`` —
rule code, file path and the *stripped source line* — plus a count, so
entries survive unrelated edits that only shift line numbers.  The
workflow is the usual ratchet:

* ``python -m repro.lint --write-baseline`` records the current findings
  into ``LINT_BASELINE.json`` (checked in at the repo root);
* subsequent runs subtract baselined findings and fail only on *new*
  ones;
* deleting entries (or the fixes that make them stale) shrinks the
  baseline monotonically — stale entries are reported so they do not
  linger after the offending code is gone.

The acceptance bar for rule ``R001`` (unseeded ``default_rng``) is an
*empty* baseline: those findings are fixed at the source, never
grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.lint.engine import Finding

__all__ = ["BaselineEntry", "Baseline", "DEFAULT_BASELINE_NAME"]

#: File name of the checked-in baseline at the repository root.
DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"

#: Schema version of the baseline file.
_BASELINE_SCHEMA = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: rule code, path, source line, count."""

    code: str
    path: str
    context: str
    count: int = 1


@dataclass
class Baseline:
    """A loaded baseline: entries plus apply/save logic."""

    entries: list[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        """A baseline with no grandfathered findings."""
        return cls(entries=[])

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        """Read a baseline file written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        schema = payload.get("version")
        if schema != _BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported baseline schema {schema!r} (expected {_BASELINE_SCHEMA})"
            )
        entries = [
            BaselineEntry(
                code=entry["code"],
                path=entry["path"],
                context=entry["context"],
                count=int(entry.get("count", 1)),
            )
            for entry in payload.get("entries", [])
        ]
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Build a baseline that grandfathers exactly the given findings."""
        counts: Counter[tuple[str, str, str]] = Counter(
            (f.code, f.path, f.context) for f in findings
        )
        entries = [
            BaselineEntry(code=code, path=path, context=context, count=count)
            for (code, path, context), count in sorted(counts.items())
        ]
        return cls(entries=entries)

    def save(self, path: "str | Path") -> Path:
        """Write the baseline file (atomically, like every other artifact)."""
        from repro.experiments.common import atomic_write_text

        payload = {
            "version": _BASELINE_SCHEMA,
            "entries": [
                {
                    "code": entry.code,
                    "path": entry.path,
                    "context": entry.context,
                    "count": entry.count,
                }
                for entry in self.entries
            ],
        }
        return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int, list[BaselineEntry]]:
        """Split findings into (new, n_baselined, stale_entries).

        Each baseline entry absorbs up to ``count`` findings with the same
        ``(code, path, context)``; anything left over on the findings side
        is *new* (and should fail the gate), anything left over on the
        baseline side is *stale* (the grandfathered code is gone — prune
        the entry).
        """
        budget: Counter[tuple[str, str, str]] = Counter()
        for entry in self.entries:
            budget[(entry.code, entry.path, entry.context)] += entry.count
        new: list[Finding] = []
        baselined = 0
        for finding in findings:
            key = (finding.code, finding.path, finding.context)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale = [
            BaselineEntry(code=code, path=path, context=context, count=count)
            for (code, path, context), count in sorted(budget.items())
            if count > 0
        ]
        return new, baselined, stale
