"""Command line for the determinism linter.

``python -m repro.lint [paths...]``:

* default paths: ``src/repro`` when run from the repo root (falling back
  to the current directory);
* ``--baseline FILE`` uses a specific baseline (default: the checked-in
  ``LINT_BASELINE.json`` next to the current directory, when present);
  ``--no-baseline`` ignores it, ``--write-baseline`` regenerates it from
  the current findings;
* ``--format json`` emits a machine-readable report;
* ``--select R001,R005`` restricts the rule set;
* ``--list-rules`` prints every rule code with its description.

Exit status: ``0`` when no non-baselined findings remain, ``1``
otherwise (and ``2`` for usage errors, via argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.lint.engine import lint_paths
from repro.lint.rules import DEFAULT_RULES, rules_by_code

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism static analysis for the reproduction tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule codes and descriptions, then exit",
    )
    return parser


def _default_paths() -> list[str]:
    """``src/repro`` when it exists (repo root), else the current directory."""
    if Path("src/repro").is_dir():
        return ["src/repro"]
    return ["."]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code instead of raising."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.code} [{rule.name}]: {rule.description}")
        return 0

    try:
        rules = rules_by_code(args.select.split(",") if args.select else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()
    findings, n_files = lint_paths(paths, rules, root=Path.cwd())

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {baseline_path} ({len(findings)} grandfathered findings)")
        return 0

    if args.no_baseline or not baseline_path.exists():
        baseline = Baseline.empty()
    else:
        baseline = Baseline.load(baseline_path)
    new, baselined, stale = baseline.apply(findings)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": n_files,
                    "findings": [f.to_dict() for f in new],
                    "baselined": baselined,
                    "stale_baseline": [
                        {"code": e.code, "path": e.path, "context": e.context, "count": e.count}
                        for e in stale
                    ],
                },
                indent=2,
            )
        )
        return 1 if new else 0

    for finding in new:
        print(finding.format())
    for entry in stale:
        print(
            f"stale baseline entry: {entry.code} {entry.path} ({entry.context!r} x{entry.count}) "
            "- the finding is gone; prune it",
            file=sys.stderr,
        )
    summary = f"{n_files} files, {len(new)} findings"
    if baselined:
        summary += f", {baselined} baselined"
    print(summary)
    return 1 if new else 0
