"""AST rule engine for the determinism linter.

The engine is deliberately small: a :class:`Rule` is an object with a
stable ``R0xx`` code that inspects one parsed module
(:class:`FileContext`) and yields ``(node, message)`` pairs; the engine
turns those into :class:`Finding` records with file/line/column
positions, honours inline ``# repro-lint: disable=R0xx`` suppressions on
the offending line, and sorts everything for stable output.  Rules never
do I/O and never import the code under analysis — everything is a pure
:mod:`ast` walk, so linting the tree is safe and fast.

Entry points
------------
:func:`lint_paths`
    Lint files and/or directory trees, returning sorted findings.
:func:`lint_source`
    Lint one in-memory source string (used by the fixture tests).

Baseline filtering of grandfathered findings lives in
:mod:`repro.lint.baseline`; the command line in :mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = ["Finding", "FileContext", "Rule", "lint_source", "lint_paths", "dotted_name"]

#: Inline suppression syntax: ``# repro-lint: disable=R001`` (or a
#: comma-separated list, or ``all``) on the line of the finding.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source position.

    Attributes
    ----------
    path:
        File path (as normalised by the caller of the engine — the CLI
        uses paths relative to the working directory, the test gate uses
        repo-root-relative paths), posix separators.
    line, col:
        1-based line and 0-based column of the offending node.
    code:
        Stable rule code (``R001`` ...), the unit of suppression and
        baselining.
    name:
        Human-readable rule slug (``unseeded-default-rng``).
    message:
        What is wrong and what to do instead.
    context:
        The stripped source line, used for line-number-independent
        baseline matching.
    """

    path: str
    line: int
    col: int
    code: str
    name: str
    message: str
    context: str = ""

    def format(self) -> str:
        """Render as a classic ``path:line:col: CODE [slug] message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.name}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "name": self.name,
            "message": self.message,
            "context": self.context,
        }


@dataclass
class FileContext:
    """Everything a rule may look at for one module.

    Attributes
    ----------
    path:
        Normalised (posix) path string used in findings.
    tree:
        The parsed module.
    lines:
        Raw source lines (1-based access via ``lines[line - 1]``).
    """

    path: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def module_matches(self, suffixes: Iterable[str]) -> bool:
        """Whether this module's path ends with any of the given suffixes.

        Rules use this for explicit allowlists (e.g. the sweep supervisor
        is allowed wall-clock time for its retry/backoff machinery).
        """
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def source_line(self, lineno: int) -> str:
        """The stripped source text of a 1-based line (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code` (stable ``R0xx`` identifier),
    :attr:`name` (kebab-case slug) and :attr:`description`, and implement
    :meth:`check` as a generator of ``(node, message)`` pairs over the
    module's AST.
    """

    code: str = "R000"
    name: str = "base-rule"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Yield ``(node, message)`` for every violation in the module."""
        return iter(())


def dotted_name(node: ast.AST) -> str | None:
    """Resolve an attribute chain to ``"a.b.c"`` (None for anything else).

    ``np.random.default_rng`` resolves to ``"np.random.default_rng"``;
    subscripts, calls and other expressions resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _suppressions(lines: Sequence[str]) -> dict[int, set[str]]:
    """Per-line suppressed rule codes from inline ``repro-lint`` comments."""
    table: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            table[i] = {c.lower() if c.lower() == "all" else c.upper() for c in codes}
    return table


def _run_rules(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    """Run every rule over one parsed module, applying inline suppressions."""
    suppressed = _suppressions(ctx.lines)
    findings: list[Finding] = []
    for rule in rules:
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            codes = suppressed.get(line, ())
            if "all" in codes or rule.code in codes:
                continue
            findings.append(
                Finding(
                    path=ctx.path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    code=rule.code,
                    name=rule.name,
                    message=message,
                    context=ctx.source_line(line),
                )
            )
    return findings


def lint_source(
    source: str, rules: Sequence[Rule], path: str = "<string>"
) -> list[Finding]:
    """Lint one source string; returns findings sorted by position."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, tree=tree, lines=source.splitlines())
    return sorted(_run_rules(ctx, rules), key=lambda f: (f.path, f.line, f.col, f.code))


def _iter_python_files(target: Path) -> Iterator[Path]:
    """All ``*.py`` files under a file-or-directory target, sorted."""
    if target.is_dir():
        yield from sorted(target.rglob("*.py"))
    elif target.suffix == ".py":
        yield target


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    root: str | Path | None = None,
) -> tuple[list[Finding], int]:
    """Lint files and directory trees.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked for ``*.py``.
    rules:
        The rule set to run.
    root:
        When given, finding paths are reported relative to this directory
        (falling back to the absolute path for files outside it).  This is
        what keeps baseline entries stable no matter where the linter is
        invoked from.

    Returns
    -------
    ``(findings, n_files)`` — findings sorted by position, and the number
    of files scanned.
    """
    root_path = Path(root).resolve() if root is not None else None
    findings: list[Finding] = []
    n_files = 0
    for target in paths:
        for file_path in _iter_python_files(Path(target)):
            n_files += 1
            resolved = file_path.resolve()
            if root_path is not None:
                try:
                    rel = resolved.relative_to(root_path).as_posix()
                except ValueError:
                    rel = resolved.as_posix()
            else:
                rel = file_path.as_posix()
            source = file_path.read_text()
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        code="E999",
                        name="syntax-error",
                        message=f"could not parse: {exc.msg}",
                    )
                )
                continue
            ctx = FileContext(path=rel, tree=tree, lines=source.splitlines())
            findings.extend(_run_rules(ctx, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, n_files
