"""RNG draw-ledger auditor: localise the first divergent draw.

The equivalence tests assert that lockstep, sequential, chunked and
resumed runs are bit-identical — but when one fails, "arrays differ"
says nothing about *where* the streams forked.  This module turns that
into a one-line localization:

* :class:`RecordingGenerator` is a ``numpy.random.Generator`` subclass
  (so ``isinstance`` checks and ``default_rng(generator)`` passthrough
  keep working) that appends one :class:`DrawRecord` per draw — method,
  argument summary, output shape/digest and the *consumer*: the first
  stack frame outside this module, i.e. the library line that asked for
  the randomness.
* :class:`DrawAudit` patches ``np.random.default_rng`` for the duration
  of a ``with`` block, so every generator an experiment mints internally
  (root seeds, ``SeedSequence.spawn`` children, per-lane streams)
  records into one shared append-only :class:`DrawLedger`.
* :func:`first_divergence` compares two ledgers draw-by-draw (for runs
  with the same call structure, e.g. an injected extra draw);
  :func:`first_value_divergence` compares the concatenated *value
  streams* instead, so a lockstep run (one size-N draw) and a sequential
  run (N size-1 draws) can be aligned even though their call shapes
  differ, and the first divergent value is mapped back to the consuming
  draw on each side.
* :func:`compare_runs` packages the whole workflow: run two callables
  (e.g. the lockstep and sequential paths of one experiment) under
  separate audits and report both divergence views.

Typical use::

    from repro.lint.ledger import compare_runs

    diff = compare_runs(lambda: run(lockstep=True), lambda: run(lockstep=False))
    print(diff.report())   # names the first divergent draw and its stack site
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "DrawRecord",
    "DrawLedger",
    "RecordingGenerator",
    "DrawAudit",
    "audit_run",
    "Divergence",
    "first_divergence",
    "first_value_divergence",
    "LedgerDiff",
    "compare_runs",
]

#: ``numpy.random.Generator`` methods that consume the stream.  Methods a
#: given numpy version does not provide are skipped at class-build time.
_DRAW_METHODS = (
    "random",
    "integers",
    "choice",
    "bytes",
    "shuffle",
    "permutation",
    "permuted",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "standard_exponential",
    "poisson",
    "binomial",
    "geometric",
    "gamma",
    "standard_gamma",
    "beta",
    "chisquare",
    "dirichlet",
    "multinomial",
    "multivariate_normal",
    "lognormal",
    "laplace",
    "logistic",
    "gumbel",
    "pareto",
    "rayleigh",
    "standard_cauchy",
    "standard_t",
    "triangular",
    "vonmises",
    "wald",
    "weibull",
    "zipf",
)

_THIS_FILE = str(Path(__file__).resolve())
#: Frame filenames can be relative (they are baked in at compile time, so
#: a module first imported through a relative ``sys.path`` entry keeps the
#: relative spelling) — match this module by suffix as well.
_THIS_FILE_SUFFIX = "/".join(("repro", "lint", "ledger.py"))


def _consumer_site() -> str:
    """``path:lineno (function)`` of the innermost frame outside this module."""
    for frame in reversed(traceback.extract_stack()):
        if frame.filename == _THIS_FILE or frame.filename.replace("\\", "/").endswith(
            _THIS_FILE_SUFFIX
        ):
            continue
        path = frame.filename
        try:
            path = str(Path(path).resolve().relative_to(Path.cwd()))
        except ValueError:
            pass
        return f"{path}:{frame.lineno} ({frame.name})"
    return "<unknown>"


def _summarise_args(args: tuple, kwargs: dict) -> str:
    """Compact, stable rendering of a draw call's arguments."""
    parts = [repr(a) if not isinstance(a, np.ndarray) else f"array{a.shape}" for a in args]
    parts += [
        f"{k}={v!r}" if not isinstance(v, np.ndarray) else f"{k}=array{v.shape}"
        for k, v in sorted(kwargs.items())
    ]
    text = ", ".join(parts)
    return text if len(text) <= 80 else text[:77] + "..."


@dataclass(frozen=True)
class DrawRecord:
    """One recorded RNG draw.

    Attributes
    ----------
    index:
        Position in the ledger (0-based, append order).
    method:
        Generator method name (``"normal"``, ``"integers"``, ...).
    args:
        Compact rendering of the call arguments (``"size=(3, 2)"``).
    shape:
        Shape of the returned array (``()`` for scalars, ``None`` for
        in-place methods like ``shuffle``).
    n_values:
        Number of scalar values the draw produced.
    digest:
        Short blake2b digest of the raw output bytes — two draws with the
        same digest produced bit-identical output.
    consumer:
        ``path:lineno (function)`` of the code that asked for the draw.
    values:
        Flattened ``float64`` copy of the output when the ledger stores
        values (needed for cross-chunking stream alignment), else None.
    """

    index: int
    method: str
    args: str
    shape: "tuple[int, ...] | None"
    n_values: int
    digest: str
    consumer: str
    values: "np.ndarray | None" = None

    def describe(self) -> str:
        """One-line human rendering: ``draw #i method(args) -> shape @ site``."""
        shape = "in-place" if self.shape is None else f"shape {self.shape}"
        return f"draw #{self.index} {self.method}({self.args}) -> {shape} at {self.consumer}"


class DrawLedger:
    """Append-only record of every draw made through recording generators."""

    def __init__(self, store_values: bool = True):
        self.store_values = store_values
        self.records: list[DrawRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def record(self, method: str, args: tuple, kwargs: dict, out: Any) -> None:
        """Append one draw (called by :class:`RecordingGenerator`)."""
        if out is None:
            arr = None
        elif isinstance(out, bytes):
            arr = np.frombuffer(out, dtype=np.uint8)
        else:
            arr = np.asarray(out)
        if arr is None:
            shape, n_values, digest, values = None, 0, "-", None
        else:
            shape = tuple(arr.shape)
            n_values = int(arr.size)
            digest = hashlib.blake2b(np.ascontiguousarray(arr).tobytes(), digest_size=8).hexdigest()
            values = None
            if self.store_values:
                flat = arr.ravel()
                if np.iscomplexobj(flat):
                    values = np.concatenate([flat.real, flat.imag]).astype(np.float64)
                else:
                    values = flat.astype(np.float64, copy=True)
        self.records.append(
            DrawRecord(
                index=len(self.records),
                method=method,
                args=_summarise_args(args, kwargs),
                shape=shape,
                n_values=n_values,
                digest=digest,
                consumer=_consumer_site(),
                values=values,
            )
        )

    def total_values(self) -> int:
        """Total number of scalar values drawn across the whole ledger."""
        return sum(r.n_values for r in self.records)

    def summary(self) -> str:
        """Human summary: draw count, value count, per-method totals."""
        per_method: dict[str, int] = {}
        for record in self.records:
            per_method[record.method] = per_method.get(record.method, 0) + 1
        methods = ", ".join(f"{m}x{c}" for m, c in sorted(per_method.items()))
        return f"{len(self.records)} draws, {self.total_values()} values ({methods})"


def _make_recorded(name: str):
    """Build the recording override for one ``Generator`` draw method."""
    base = getattr(np.random.Generator, name)

    def method(self, *args, **kwargs):
        out = base(self, *args, **kwargs)
        self._ledger.record(name, args, kwargs, out)
        return out

    method.__name__ = name
    method.__qualname__ = f"RecordingGenerator.{name}"
    method.__doc__ = f"Recorded wrapper around ``numpy.random.Generator.{name}``."
    return method


class RecordingGenerator(np.random.Generator):
    """A ``numpy.random.Generator`` that appends every draw to a ledger.

    Being a real ``Generator`` subclass keeps every ``isinstance`` check
    and ``default_rng(existing_generator)`` passthrough in the library
    working; the draws themselves are delegated to the base class, so the
    recorded run is bit-identical to an unrecorded one.
    """

    def __init__(self, bit_generator: np.random.BitGenerator, ledger: DrawLedger):
        super().__init__(bit_generator)
        self._ledger = ledger

    def spawn(self, n_children: int) -> "list[RecordingGenerator]":
        """Spawn child generators that record into the same ledger."""
        children = [
            RecordingGenerator(bg, self._ledger)
            for bg in self.bit_generator.spawn(n_children)
        ]
        self._ledger.record("spawn", (n_children,), {}, None)
        return children


for _name in _DRAW_METHODS:
    if hasattr(np.random.Generator, _name):
        setattr(RecordingGenerator, _name, _make_recorded(_name))
del _name


class DrawAudit:
    """Context manager that routes every ``default_rng`` into one ledger.

    Inside the ``with`` block, ``np.random.default_rng(seed)`` returns a
    :class:`RecordingGenerator` (seeded identically to the generator it
    replaces), so experiments that mint their own generators internally —
    root seeds, spawned children, per-lane streams — are audited without
    any code change.
    """

    def __init__(self, store_values: bool = True):
        self.ledger = DrawLedger(store_values=store_values)
        self._original: Callable[..., np.random.Generator] | None = None

    def generator(self, seed: Any = None) -> RecordingGenerator:
        """A recording generator seeded like ``np.random.default_rng(seed)``."""
        if isinstance(seed, RecordingGenerator):
            return seed
        if isinstance(seed, np.random.Generator):
            return RecordingGenerator(seed.bit_generator, self.ledger)
        if isinstance(seed, np.random.BitGenerator):
            return RecordingGenerator(seed, self.ledger)
        return RecordingGenerator(np.random.PCG64(seed), self.ledger)

    def __enter__(self) -> "DrawAudit":
        self._original = np.random.default_rng

        def _recording_default_rng(seed: Any = None) -> RecordingGenerator:
            return self.generator(seed)

        np.random.default_rng = _recording_default_rng
        return self

    def __exit__(self, *exc_info) -> None:
        if self._original is not None:
            np.random.default_rng = self._original
            self._original = None


def audit_run(
    fn: Callable[..., Any], *args: Any, store_values: bool = True, **kwargs: Any
) -> tuple[Any, DrawLedger]:
    """Run ``fn`` under a :class:`DrawAudit`; return ``(result, ledger)``."""
    with DrawAudit(store_values=store_values) as audit:
        result = fn(*args, **kwargs)
    return result, audit.ledger


@dataclass(frozen=True)
class Divergence:
    """Where two ledgers first disagree.

    ``kind`` is ``"method"``/``"shape"``/``"values"`` for a mismatched
    draw, ``"missing"`` when one ledger is a strict prefix of the other,
    or ``"value-stream"`` for the chunking-independent comparison.
    ``offset`` is only set for value-stream divergences: the index of the
    first differing scalar in the concatenated draw output.
    """

    kind: str
    left: "DrawRecord | None"
    right: "DrawRecord | None"
    offset: "int | None" = None

    def describe(self) -> str:
        """One-line localization of the divergence."""
        if self.kind == "missing":
            present = self.left if self.left is not None else self.right
            side = "left" if self.right is None else "right"
            assert present is not None
            return (
                f"ledgers diverge at draw #{present.index}: only the {side} run has "
                f"{present.method}({present.args}) at {present.consumer}"
            )
        if self.kind == "value-stream":
            assert self.left is not None and self.right is not None
            return (
                f"first divergent value at stream offset {self.offset}: "
                f"left {self.left.describe()} vs right {self.right.describe()}"
            )
        assert self.left is not None and self.right is not None
        return (
            f"ledgers diverge ({self.kind}) at draw #{self.left.index}: "
            f"left {self.left.method}({self.left.args}) at {self.left.consumer} vs "
            f"right {self.right.method}({self.right.args}) at {self.right.consumer}"
        )


def first_divergence(a: DrawLedger, b: DrawLedger) -> "Divergence | None":
    """First draw where two ledgers disagree, aligned record-by-record.

    Use when both runs should make the *same sequence of calls* (e.g. two
    sequential runs, one with an injected extra draw).  Returns None when
    the ledgers are draw-for-draw identical.
    """
    for left, right in zip(a.records, b.records):
        if left.method != right.method:
            return Divergence(kind="method", left=left, right=right)
        if left.shape != right.shape:
            return Divergence(kind="shape", left=left, right=right)
        if left.digest != right.digest:
            return Divergence(kind="values", left=left, right=right)
    if len(a.records) != len(b.records):
        longer, side_left = (a, True) if len(a.records) > len(b.records) else (b, False)
        record = longer.records[min(len(a.records), len(b.records))]
        return Divergence(
            kind="missing",
            left=record if side_left else None,
            right=None if side_left else record,
        )
    return None


def _value_stream(ledger: DrawLedger) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated draw values plus per-record end offsets."""
    chunks = [r.values for r in ledger.records if r.values is not None and r.n_values]
    if not chunks:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    ends = np.cumsum([c.size for c in chunks])
    return np.concatenate(chunks), ends


def _record_at_offset(ledger: DrawLedger, offset: int) -> DrawRecord:
    """The record whose stored values cover the given stream offset."""
    total = 0
    for record in ledger.records:
        if record.values is None or not record.n_values:
            continue
        if offset < total + record.values.size:
            return record
        total += record.values.size
    return ledger.records[-1]


def first_value_divergence(a: DrawLedger, b: DrawLedger) -> "Divergence | None":
    """First divergent *value* across two ledgers, ignoring call chunking.

    A lockstep engine draws once with ``size=N`` where the sequential
    path draws N times with ``size=1``; the records differ but the
    concatenated output stream must not.  Requires both ledgers to have
    been recorded with ``store_values=True``.  Returns None when the
    streams are identical (including equal length).
    """
    stream_a, _ = _value_stream(a)
    stream_b, _ = _value_stream(b)
    n = min(stream_a.size, stream_b.size)
    # np.array_equal treats NaN != NaN; compare bit patterns instead so a
    # deterministic NaN draw does not read as a divergence.
    bits_a = stream_a[:n].view(np.uint64)
    bits_b = stream_b[:n].view(np.uint64)
    mismatch = np.nonzero(bits_a != bits_b)[0]
    if mismatch.size:
        offset = int(mismatch[0])
    elif stream_a.size != stream_b.size:
        offset = n
    else:
        return None
    left = _record_at_offset(a, min(offset, max(stream_a.size - 1, 0)))
    right = _record_at_offset(b, min(offset, max(stream_b.size - 1, 0)))
    return Divergence(kind="value-stream", left=left, right=right, offset=offset)


@dataclass
class LedgerDiff:
    """Result of :func:`compare_runs`: both ledgers plus both divergence views."""

    ledger_a: DrawLedger
    ledger_b: DrawLedger
    record_divergence: "Divergence | None" = None
    value_divergence: "Divergence | None" = None
    result_a: Any = None
    result_b: Any = None

    @property
    def identical(self) -> bool:
        """Whether the two runs consumed bit-identical value streams."""
        return self.value_divergence is None

    def report(self) -> str:
        """Multi-line human report: summaries plus the first divergence."""
        lines = [
            f"run A: {self.ledger_a.summary()}",
            f"run B: {self.ledger_b.summary()}",
        ]
        if self.identical:
            lines.append("value streams are bit-identical")
        else:
            assert self.value_divergence is not None
            lines.append(self.value_divergence.describe())
        if self.record_divergence is not None and not self.identical:
            lines.append(f"(record-aligned view: {self.record_divergence.describe()})")
        return "\n".join(lines)


def compare_runs(
    run_a: Callable[[], Any],
    run_b: Callable[[], Any],
    store_values: bool = True,
) -> LedgerDiff:
    """Audit two runs (e.g. lockstep vs sequential) and localise divergence.

    Each callable runs under its own :class:`DrawAudit`; seed everything
    inside the callables (the audit preserves seeding semantics, so two
    calls of the same seeded function record identical ledgers).
    """
    result_a, ledger_a = audit_run(run_a, store_values=store_values)
    result_b, ledger_b = audit_run(run_b, store_values=store_values)
    return LedgerDiff(
        ledger_a=ledger_a,
        ledger_b=ledger_b,
        record_divergence=first_divergence(ledger_a, ledger_b),
        value_divergence=first_value_divergence(ledger_a, ledger_b),
        result_a=result_a,
        result_b=result_b,
    )
