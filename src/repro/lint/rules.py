"""The determinism rule set (``R001``–``R006``).

Every rule guards one way the bit-identical-replay contract has broken
(or nearly broken) in practice:

``R001`` ``unseeded-default-rng``
    ``np.random.default_rng()`` with no seed — including as a
    ``default_factory`` — silently mints entropy inside library code.
``R002`` ``numpy-global-rng``
    Module-level ``np.random.<fn>()`` draws share one hidden global
    stream across the whole process; any import-order change reshuffles
    every result.
``R003`` ``wallclock-entropy``
    ``random``, ``time.time`` and ``datetime.now`` leak wall-clock /
    process state into results; only explicitly allowed infrastructure
    modules (the sweep supervisor's retry backoff) may use them.
``R004`` ``mutable-config-dataclass``
    Experiment ``*Config`` dataclasses must be ``frozen=True`` so a
    config hash computed at dispatch still describes the run at save
    time (the artifact cache keys on it).
``R005`` ``raw-artifact-write``
    ``open(..., "w")`` / ``write_text`` bypass
    :func:`repro.experiments.common.atomic_write_text`; a crash
    mid-write leaves a truncated artifact for resume to trip over.
``R006`` ``unordered-iteration-rng``
    Iterating a ``set`` (or ``dict.values()``) to feed RNG draws or
    seed spawns makes the draw *order* depend on hash/insertion order
    rather than on the documented canonical order.

The module exposes :data:`DEFAULT_RULES` (one instance of each) and the
allowlist constants the repo-specific rules consult.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, dotted_name

__all__ = [
    "UnseededDefaultRng",
    "NumpyGlobalRng",
    "WallClockEntropy",
    "MutableConfigDataclass",
    "RawArtifactWrite",
    "UnorderedIterationRng",
    "DEFAULT_RULES",
    "rules_by_code",
]

#: Spellings of :func:`numpy.random.default_rng` the tree actually uses.
_DEFAULT_RNG_NAMES = frozenset(
    {"np.random.default_rng", "numpy.random.default_rng", "default_rng"}
)

#: ``np.random.<name>`` attributes that construct seeded machinery rather
#: than drawing from the hidden module-level stream.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Wall-clock calls that leak nondeterminism into results.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Modules allowed to use wall-clock time and :mod:`random`: the sweep
#: supervisor's retry/backoff jitter and the fault-injection clock are
#: operational machinery whose outputs never reach a result artifact.
WALLCLOCK_ALLOWED_MODULES = (
    "repro/experiments/supervisor.py",
    "repro/experiments/faults.py",
)

#: Modules allowed to write files directly — the implementation of
#: ``atomic_write_text`` itself has to perform a raw write somewhere.
WRITE_ALLOWED_MODULES = ("repro/experiments/common.py",)

#: ``Generator`` draw methods plus seed-spawn entry points; a loop body
#: calling any of these consumes the seeded stream.
_RNG_FEED_METHODS = frozenset(
    {
        "normal",
        "standard_normal",
        "uniform",
        "random",
        "integers",
        "choice",
        "permutation",
        "permuted",
        "shuffle",
        "exponential",
        "poisson",
        "binomial",
        "gamma",
        "beta",
        "spawn",
    }
)


class UnseededDefaultRng(Rule):
    """R001: ``np.random.default_rng()`` with no seed in library code."""

    code = "R001"
    name = "unseeded-default-rng"
    description = (
        "unseeded default_rng() mints entropy outside the seed tree; "
        "require an rng (repro.rng.require_rng) or a seed at the public boundary"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Flag zero-argument ``default_rng`` calls and default factories."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func in _DEFAULT_RNG_NAMES and not node.args and not node.keywords:
                yield (
                    node,
                    "unseeded default_rng() fallback; take an explicit rng/seed "
                    "instead of minting entropy (repro.rng.require_rng)",
                )
            for keyword in node.keywords:
                if keyword.arg == "default_factory":
                    target = dotted_name(keyword.value)
                    if target in _DEFAULT_RNG_NAMES:
                        yield (
                            keyword.value,
                            "default_factory=np.random.default_rng mints an unseeded "
                            "generator per instance; require rng at construction",
                        )


class NumpyGlobalRng(Rule):
    """R002: draws from numpy's hidden module-level RNG state."""

    code = "R002"
    name = "numpy-global-rng"
    description = (
        "np.random.<fn>() draws from one hidden global stream; "
        "use an explicit np.random.Generator"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Flag ``np.random.<fn>(...)`` calls outside the seeded constructors."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func is None:
                continue
            parts = func.split(".")
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NUMPY_RANDOM_ALLOWED
            ):
                yield (
                    node,
                    f"np.random.{parts[2]}() uses numpy's global RNG state; "
                    "draw from an explicit Generator instead",
                )


class WallClockEntropy(Rule):
    """R003: ``random`` / ``time.time`` / ``datetime.now`` outside allowed modules."""

    code = "R003"
    name = "wallclock-entropy"
    description = (
        "stdlib random and wall-clock reads make runs irreproducible; "
        "only allowlisted infrastructure modules may use them"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Flag ``random`` imports and wall-clock call sites."""
        if ctx.module_matches(WALLCLOCK_ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield (
                            node,
                            "stdlib random is process-global and unseeded here; "
                            "use numpy Generators from the experiment seed tree",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield (
                        node,
                        "stdlib random is process-global and unseeded here; "
                        "use numpy Generators from the experiment seed tree",
                    )
            elif isinstance(node, ast.Call):
                func = dotted_name(node.func)
                if func in _WALLCLOCK_CALLS:
                    yield (
                        node,
                        f"{func}() reads the wall clock; results and artifacts "
                        "must be timestamp-free (see collect_provenance)",
                    )


class MutableConfigDataclass(Rule):
    """R004: experiment ``*Config`` dataclasses that are not ``frozen=True``."""

    code = "R004"
    name = "mutable-config-dataclass"
    description = (
        "a mutable Config can drift between dispatch-time hashing and "
        "save-time serialisation; declare @dataclass(frozen=True)"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Flag non-frozen dataclass decorators on ``*Config`` classes."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Config"):
                continue
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) else decorator
                name = dotted_name(target)
                if name is None or name.split(".")[-1] != "dataclass":
                    continue
                frozen = False
                if isinstance(decorator, ast.Call):
                    for keyword in decorator.keywords:
                        if keyword.arg == "frozen":
                            frozen = (
                                isinstance(keyword.value, ast.Constant)
                                and keyword.value.value is True
                            )
                if not frozen:
                    yield (
                        node,
                        f"{node.name} is a non-frozen dataclass; experiment configs "
                        "must be @dataclass(frozen=True)",
                    )


class RawArtifactWrite(Rule):
    """R005: file writes that bypass ``atomic_write_text``."""

    code = "R005"
    name = "raw-artifact-write"
    description = (
        "open(..., 'w') / write_text can leave truncated artifacts on crash; "
        "use repro.experiments.common.atomic_write_text"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Flag write-mode ``open`` calls and ``write_text``/``write_bytes``."""
        if ctx.module_matches(WRITE_ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # Match the method name alone so receivers the dotted-name
            # resolver cannot follow (e.g. ``Path(p).write_text``) are
            # still caught.
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield (
                    node,
                    f"{node.func.attr}() is not atomic; "
                    "use atomic_write_text so crashes never leave truncated files",
                )
                continue
            func = dotted_name(node.func)
            if func is None or func.split(".")[-1] != "open":
                continue
            mode = None
            for arg in node.args[:2]:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    if set(arg.value) <= set("rwxabt+U"):
                        mode = arg.value
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    if isinstance(keyword.value, ast.Constant) and isinstance(
                        keyword.value.value, str
                    ):
                        mode = keyword.value.value
            if mode is not None and ("w" in mode or "x" in mode):
                yield (
                    node,
                    f"open(..., {mode!r}) is not atomic; "
                    "use atomic_write_text so crashes never leave truncated files",
                )


def _feeds_rng(body: list[ast.stmt]) -> ast.AST | None:
    """First node in a loop body that consumes a seeded RNG stream, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func is None:
                continue
            parts = func.split(".")
            if parts[-1] == "default_rng" or parts[-1] in _RNG_FEED_METHODS and len(parts) > 1:
                return node
            if any("rng" in part.lower() for part in parts[:-1]):
                return node
    return None


def _unordered_iterable(node: ast.expr) -> str | None:
    """Describe ``node`` if iterating it has hash/insertion-dependent order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func in ("set", "frozenset"):
            return f"{func}(...)"
        if func is not None and func.split(".")[-1] == "values" and not node.args:
            return f"{func}()"
    return None


class UnorderedIterationRng(Rule):
    """R006: set / ``dict.values()`` iteration feeding RNG or seed-spawn calls."""

    code = "R006"
    name = "unordered-iteration-rng"
    description = (
        "iterating a set (or dict.values()) to drive RNG draws ties the draw "
        "order to hash/insertion order; iterate a sorted or canonical sequence"
    )

    def check(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        """Flag ``for x in <set-ish>`` loops whose body draws randomness."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            described = _unordered_iterable(node.iter)
            if described is None:
                continue
            consumer = _feeds_rng(node.body)
            if consumer is not None:
                yield (
                    node,
                    f"loop over {described} feeds an RNG/seed-spawn call; "
                    "iterate a deterministic, documented order instead "
                    "(e.g. sorted(...) or the canonical pair order)",
                )


#: One instance of every rule, in code order — the default rule set the
#: CLI and the pytest gate run.
DEFAULT_RULES = (
    UnseededDefaultRng(),
    NumpyGlobalRng(),
    WallClockEntropy(),
    MutableConfigDataclass(),
    RawArtifactWrite(),
    UnorderedIterationRng(),
)


def rules_by_code(codes: "list[str] | None" = None) -> tuple[Rule, ...]:
    """The default rules, optionally restricted to the given ``R0xx`` codes.

    Raises :class:`ValueError` for unknown codes so ``--select R07`` typos
    fail loudly instead of silently linting nothing.
    """
    if codes is None:
        return DEFAULT_RULES
    wanted = {code.upper() for code in codes}
    known = {rule.code for rule in DEFAULT_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown rule codes: {sorted(unknown)} (known: {sorted(known)})")
    return tuple(rule for rule in DEFAULT_RULES if rule.code in wanted)
