"""Network substrate: nodes, testbed topology, ETX metrics, MAC timing, events."""

from repro.net.etx import (
    best_route,
    etx_graph,
    etx_to_destination,
    forwarder_order,
    link_etx,
    path_etx,
)
from repro.net.events import Event, EventScheduler
from repro.net.mac import CsmaState, MacTiming
from repro.net.node import MeshNode
from repro.net.packet import Packet
from repro.net.topology import Testbed

__all__ = [
    "MeshNode",
    "Packet",
    "Testbed",
    "MacTiming",
    "CsmaState",
    "EventScheduler",
    "Event",
    "link_etx",
    "etx_graph",
    "path_etx",
    "best_route",
    "etx_to_destination",
    "forwarder_order",
]
