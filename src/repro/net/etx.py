"""ETX (expected transmission count) link and path metrics.

ExOR (and our single-path baseline) rank nodes and routes by the ETX metric
of De Couto et al. [8]: the expected number of transmissions needed to get a
packet across a link, ``1 / (p_fwd * p_rev)``, where the reverse delivery
probability accounts for the ACK.  Path ETX is the sum of link ETX values;
ExOR orders candidate forwarders by their ETX distance to the destination.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.net.topology import Testbed

__all__ = [
    "link_etx",
    "etx_graph",
    "path_etx",
    "best_route",
    "etx_to_destination",
    "forwarder_order",
]

#: Links lossier than this are not considered usable by the routing layer.
MAX_USABLE_LOSS = 0.9


def link_etx(forward_delivery: float, reverse_delivery: float) -> float:
    """ETX of a link from its forward and reverse delivery probabilities."""
    product = forward_delivery * reverse_delivery
    if product <= 0.0:
        return float("inf")
    return 1.0 / product


def etx_graph(
    testbed: Testbed,
    probe_rate_mbps: float = 6.0,
    probe_bytes: int = 1460,
    max_loss: float = MAX_USABLE_LOSS,
) -> nx.DiGraph:
    """Directed graph of usable links weighted by ETX.

    Memoised on the testbed: link profiles are static for a testbed's
    lifetime, and every routing scheme simulated over one topology asks for
    the identical graph.
    """
    key = ("etx_graph", probe_rate_mbps, probe_bytes, max_loss)
    cached = testbed._routing_cache.get(key)
    if cached is not None:
        return cached
    graph = _build_etx_graph(testbed, probe_rate_mbps, probe_bytes, max_loss)
    testbed._routing_cache[key] = graph
    return graph


def _build_etx_graph(
    testbed: Testbed,
    probe_rate_mbps: float,
    probe_bytes: int,
    max_loss: float,
) -> nx.DiGraph:
    testbed.prime_delivery_cache(probe_rate_mbps, probe_bytes)
    graph = nx.DiGraph()
    graph.add_nodes_from(testbed.node_ids)
    for src in testbed.node_ids:
        for dst in testbed.node_ids:
            if src == dst:
                continue
            fwd = testbed.delivery_probability(src, dst, probe_rate_mbps, probe_bytes)
            rev = testbed.delivery_probability(dst, src, probe_rate_mbps, probe_bytes)
            if (1.0 - fwd) > max_loss:
                continue
            etx = link_etx(fwd, rev)
            if np.isfinite(etx):
                graph.add_edge(src, dst, etx=etx, delivery=fwd)
    return graph


def path_etx(graph: nx.DiGraph, path: list[int]) -> float:
    """Sum of link ETX values along a path."""
    total = 0.0
    for a, b in zip(path[:-1], path[1:]):
        if not graph.has_edge(a, b):
            return float("inf")
        total += graph.edges[a, b]["etx"]
    return total


def best_route(graph: nx.DiGraph, src: int, dst: int) -> list[int] | None:
    """Minimum-ETX route between two nodes (None when disconnected)."""
    try:
        return nx.shortest_path(graph, src, dst, weight="etx")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def etx_to_destination(graph: nx.DiGraph, dst: int) -> dict[int, float]:
    """ETX distance from every node to the destination."""
    reversed_graph = graph.reverse(copy=False)
    lengths = nx.single_source_dijkstra_path_length(reversed_graph, dst, weight="etx")
    return dict(lengths)


def forwarder_order(graph: nx.DiGraph, candidates: list[int], dst: int) -> list[int]:
    """Order candidate forwarders by increasing ETX distance to the destination.

    This is ExOR's forwarder priority: the node closest (in ETX) to the
    destination that holds a packet forwards it (§7.2).  Candidates with no
    route to the destination are dropped.
    """
    distances = etx_to_destination(graph, dst)
    usable = [c for c in candidates if c in distances]
    return sorted(usable, key=lambda c: distances[c])
