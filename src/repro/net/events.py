"""A small discrete-event simulation engine.

The last-hop and routing experiments mostly use closed-form airtime
accounting (:class:`repro.net.mac.CsmaState`), but some scenarios — e.g.
interleaving probe traffic with data, or modelling retransmission timeouts —
are easier to express as events on a virtual clock.  This engine provides
the minimal machinery: schedule callbacks at absolute or relative times and
run until the queue drains or a horizon is reached.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Callable

__all__ = ["EventScheduler", "Event"]


@dataclass(order=True)
class Event:
    """A scheduled callback."""

    time_us: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue based discrete event scheduler with a µs clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = count()
        self._now = 0.0
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def schedule_at(self, time_us: float, callback: Callable[[], None]) -> Event:
        """Schedule a callback at an absolute simulation time."""
        if time_us < self._now:
            raise ValueError(f"cannot schedule in the past ({time_us} < {self._now})")
        event = Event(time_us=float(time_us), sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay_us: float, callback: Callable[[], None]) -> Event:
        """Schedule a callback ``delay_us`` after the current time."""
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay_us, callback)

    # ------------------------------------------------------------------
    def run(self, until_us: float | None = None, max_events: int | None = None) -> float:
        """Run events in time order.

        Parameters
        ----------
        until_us:
            Stop once the next event lies beyond this time (the clock is
            left at ``until_us``).
        max_events:
            Safety cap on the number of executed events.

        Returns
        -------
        float
            The simulation time after running.
        """
        executed = 0
        while self._queue:
            event = self._queue[0]
            if until_us is not None and event.time_us > until_us:
                self._now = until_us
                return self._now
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time_us
            event.callback()
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until_us is not None and not self._queue:
            self._now = max(self._now, until_us)
        return self._now
