"""MAC-layer timing and airtime accounting.

The throughput numbers of Figs. 17 and 18 depend on how much medium time
each (re)transmission consumes, including inter-frame spaces, preambles,
acknowledgments and — for SourceSync — the synchronization header overhead
of §4.4 (a SIFS plus two channel-estimation symbols per co-sender).  This
module centralises those timings so every simulation charges airtime the
same way.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.frame import JointFrameLayout
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.rates import Rate, rate_for_mbps

__all__ = ["MacTiming", "CsmaState"]


@dataclass(frozen=True)
class MacTiming:
    """802.11-style MAC timing constants and airtime helpers.

    Attributes
    ----------
    sifs_us, difs_us, slot_us:
        Standard interframe spacings (802.11g values).
    ack_us:
        Airtime of an acknowledgment frame (preamble + 14 bytes at the base
        rate, rounded to the usual 802.11 figure).
    cw_min:
        Minimum contention window in slots (average backoff = cw_min/2).
    params:
        OFDM numerology for symbol timings.
    """

    sifs_us: float = 10.0
    difs_us: float = 28.0
    slot_us: float = 9.0
    ack_us: float = 44.0
    cw_min: int = 15
    params: OFDMParams = DEFAULT_PARAMS

    # ------------------------------------------------------------------
    @functools.lru_cache(maxsize=4096)
    def preamble_us(self) -> float:
        """Airtime of the PLCP preamble plus SIGNAL-like header symbol."""
        samples = (self.params.n_fft // 4) * 10 + 2 * self.params.cp_samples + 2 * self.params.n_fft
        samples += self.params.symbol_samples  # header / SIGNAL symbol
        return samples * self.params.sample_period_s * 1e6

    @functools.lru_cache(maxsize=4096)
    def data_airtime_us(self, payload_bytes: int, rate: Rate | float) -> float:
        """Airtime of the data symbols of a frame (no preamble)."""
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        bits = 8 * (payload_bytes + 4 + 30)  # payload + FCS + MAC header
        n_dbps = rate_obj.data_bits_per_ofdm_symbol(self.params.n_data_subcarriers)
        n_symbols = int(-(-bits // n_dbps))
        return n_symbols * self.params.symbol_duration_s * 1e6

    @functools.lru_cache(maxsize=4096)
    def frame_airtime_us(self, payload_bytes: int, rate: Rate | float) -> float:
        """Airtime of a standard (single-sender) data frame."""
        return self.preamble_us() + self.data_airtime_us(payload_bytes, rate)

    def average_backoff_us(self) -> float:
        """Average random backoff before a transmission attempt."""
        return (self.cw_min / 2.0) * self.slot_us

    @functools.lru_cache(maxsize=4096)
    def single_transaction_us(self, payload_bytes: int, rate: Rate | float, with_ack: bool = True) -> float:
        """Total medium time of one standard transmission attempt.

        DIFS + average backoff + DATA + (SIFS + ACK when acknowledged).
        """
        total = self.difs_us + self.average_backoff_us() + self.frame_airtime_us(payload_bytes, rate)
        if with_ack:
            total += self.sifs_us + self.ack_us
        return total

    # ------------------------------------------------------------------
    @functools.lru_cache(maxsize=4096)
    def sourcesync_overhead_us(self, n_cosenders: int, extra_cp_samples: int = 0, n_data_symbols: int = 0) -> float:
        """Extra airtime a SourceSync joint frame adds over a standard frame.

        The overhead is the SIFS gap after the synchronization header plus
        two channel-estimation symbols per co-sender (§4.4), plus the CP
        increase (if any) applied to every data symbol (§4.6).
        """
        if n_cosenders < 0:
            raise ValueError("n_cosenders must be non-negative")
        training = n_cosenders * (2 * self.params.cp_samples + 2 * self.params.n_fft)
        extra_cp = extra_cp_samples * n_data_symbols
        extra_samples = training + extra_cp
        return self.sifs_us + extra_samples * self.params.sample_period_s * 1e6

    @functools.lru_cache(maxsize=4096)
    def joint_transaction_us(
        self,
        payload_bytes: int,
        rate: Rate | float,
        n_cosenders: int,
        extra_cp_samples: int = 0,
        with_ack: bool = True,
    ) -> float:
        """Total medium time of one SourceSync joint transmission attempt."""
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        bits = 8 * (payload_bytes + 4 + 30)
        n_dbps = rate_obj.data_bits_per_ofdm_symbol(self.params.n_data_subcarriers)
        n_symbols = int(-(-bits // n_dbps))
        base = self.single_transaction_us(payload_bytes, rate_obj, with_ack)
        return base + self.sourcesync_overhead_us(n_cosenders, extra_cp_samples, n_symbols)

    def joint_overhead_fraction(self, payload_bytes: int, rate: Rate | float, n_cosenders: int) -> float:
        """Fractional airtime overhead of SourceSync for a given frame (§4.4).

        The paper quotes 1.7% for two concurrent senders and 2.8% for five,
        at 12 Mbps with 1460-byte packets, counting the SIFS and the
        per-co-sender channel-estimation symbols against the data airtime.
        """
        layout = JointFrameLayout(
            params=self.params,
            n_cosenders=n_cosenders,
            n_data_symbols=max(self._data_symbols(payload_bytes, rate), 1),
        )
        return layout.overhead_fraction()

    def _data_symbols(self, payload_bytes: int, rate: Rate | float) -> int:
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        bits = 8 * (payload_bytes + 4)
        n_dbps = rate_obj.data_bits_per_ofdm_symbol(self.params.n_data_subcarriers)
        return int(-(-bits // n_dbps))


@dataclass
class CsmaState:
    """Bookkeeping for a carrier-sense MAC simulation.

    Tracks cumulative busy airtime and transmission counts; the simulations
    are contention-free in the sense that only the node holding the medium
    transmits (the lead sender/AP performs carrier sense on behalf of the
    joint transmission, §3a), so medium time is simply additive.
    """

    elapsed_us: float = 0.0
    transmissions: int = 0
    failures: int = 0

    def account(self, airtime_us: float, success: bool) -> None:
        """Charge one transmission's airtime and record its outcome."""
        if airtime_us < 0:
            raise ValueError("airtime must be non-negative")
        self.elapsed_us += airtime_us
        self.transmissions += 1
        if not success:
            self.failures += 1

    def throughput_mbps(self, delivered_payload_bits: float) -> float:
        """Delivered payload bits over total elapsed medium time."""
        if self.elapsed_us <= 0:
            return 0.0
        return delivered_payload_bits / self.elapsed_us
