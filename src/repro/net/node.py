"""Mesh / WLAN node model for the link-level simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.oscillator import Oscillator
from repro.hardware.frontend import RadioFrontend

__all__ = ["MeshNode"]


@dataclass
class MeshNode:
    """A node of the simulated testbed.

    Nodes have a physical position (used for path loss and propagation
    delay), a radio front end (turnaround / detection-latency model) and an
    oscillator (CFO model); roles (source, relay, AP, client, ...) are
    assigned by the experiments, not baked into the node.
    """

    node_id: int
    x: float
    y: float
    frontend: RadioFrontend = field(default_factory=lambda: RadioFrontend(turnaround_samples=80.0))
    oscillator: Oscillator = field(default_factory=lambda: Oscillator(ppm=0.0))

    @classmethod
    def random(
        cls,
        node_id: int,
        rng: np.random.Generator,
        area_m: float = 60.0,
    ) -> "MeshNode":
        """Place a node uniformly at random in a square area."""
        return cls(
            node_id=node_id,
            x=float(rng.uniform(0.0, area_m)),
            y=float(rng.uniform(0.0, area_m)),
            frontend=RadioFrontend.random(rng),
            oscillator=Oscillator.random(rng),
        )

    def distance_to(self, other: "MeshNode") -> float:
        """Euclidean distance to another node in metres."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    @property
    def position(self) -> tuple[float, float]:
        """(x, y) position in metres."""
        return (self.x, self.y)
