"""Packet abstraction used by the MAC / routing simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

__all__ = ["Packet"]

_SEQUENCE = count()


@dataclass
class Packet:
    """A network-layer packet flowing through the simulated mesh.

    Attributes
    ----------
    src, dst:
        Node identifiers of the traffic endpoints.
    payload_bytes:
        Payload size (the paper uses 1460-byte packets in its overhead
        calculation, §4.4).
    seq:
        Monotonically increasing sequence number.
    batch_id:
        ExOR batch this packet belongs to (None for non-batched traffic).
    """

    src: int
    dst: int
    payload_bytes: int = 1460
    seq: int = field(default_factory=lambda: next(_SEQUENCE))
    batch_id: int | None = None

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")

    @property
    def payload_bits(self) -> int:
        """Payload size in bits."""
        return 8 * self.payload_bytes
