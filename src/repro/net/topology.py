"""Testbed topology: node placement, link SNR profiles, delivery probabilities.

The paper's evaluation runs on a ~20-node indoor office testbed (Fig. 11)
with walls and metal cabinets producing a wide spread of link qualities.
:class:`Testbed` reproduces that setting statistically: nodes are placed on
a floor plan, large-scale SNR comes from a log-distance path-loss model with
shadowing, small-scale frequency selectivity from per-link multipath
realisations, and every directed link exposes a per-subcarrier SNR profile
from which delivery probabilities are derived (see
:mod:`repro.analysis.error_models`).

Joint (SourceSync) transmissions from several senders combine their
per-subcarrier SNRs; the extra cyclic-prefix overhead required to absorb
residual misalignment at multiple receivers (§4.6) is charged as airtime,
not as an SNR penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.error_models import combined_subcarrier_snr, delivery_probability
from repro.analysis.snr import subcarrier_snr_profile
from repro.channel.multipath import DEFAULT_PROFILE, MultipathProfile
from repro.channel.propagation import PathLossModel, propagation_delay_samples
from repro.net.node import MeshNode
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.rates import Rate, rate_for_mbps
from repro.rng import require_rng

__all__ = ["Testbed"]


@dataclass
class Testbed:
    """A set of nodes with pairwise link models.

    Parameters
    ----------
    nodes:
        The nodes of the testbed.
    path_loss:
        Large-scale propagation model.
    multipath_profile:
        Small-scale fading statistics shared by all links.
    params:
        OFDM numerology.
    rng:
        Random source for shadowing and fading realisations (the draws are
        cached per link so the testbed is static once created, like a real
        deployment during one experiment).  Required: a testbed never mints
        its own entropy, so seeded runs stay bit-identical.
    """

    #: Tell pytest this (public, "Test"-prefixed) class is not a test case.
    __test__ = False

    nodes: list[MeshNode]
    path_loss: PathLossModel = field(default_factory=PathLossModel)
    multipath_profile: MultipathProfile = DEFAULT_PROFILE
    params: OFDMParams = DEFAULT_PARAMS
    rng: np.random.Generator | None = None
    _snr_cache: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)
    _profile_cache: dict[tuple[int, int], np.ndarray] = field(default_factory=dict, repr=False)
    # Delivery probabilities are pure functions of the cached link profiles,
    # so they are memoised too: the per-packet Monte-Carlo loops of the
    # last-hop and mesh experiments ask for the same (senders, dst, rate,
    # length) combination thousands of times.
    _delivery_cache: dict[tuple, float] = field(default_factory=dict, repr=False)
    # Routing-layer caches (e.g. the ETX graph, which every scheme of a
    # topology recomputes from the same static link profiles).
    _routing_cache: dict[tuple, object] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len({node.node_id for node in self.nodes}) != len(self.nodes):
            raise ValueError("node ids must be unique")
        self.rng = require_rng(self.rng, "Testbed")
        self._by_id = {node.node_id: node for node in self.nodes}
        #: node id -> row/column index of the dense delivery matrices.
        self._node_index = {node.node_id: i for i, node in enumerate(self.nodes)}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        n_nodes: int,
        rng: np.random.Generator | None = None,
        area_m: float = 60.0,
        path_loss: PathLossModel | None = None,
        multipath_profile: MultipathProfile = DEFAULT_PROFILE,
        params: OFDMParams = DEFAULT_PARAMS,
    ) -> "Testbed":
        """Place ``n_nodes`` uniformly at random in a square area."""
        rng = require_rng(rng, "Testbed.random")
        nodes = [MeshNode.random(i, rng, area_m) for i in range(n_nodes)]
        return cls(
            nodes=nodes,
            path_loss=path_loss if path_loss is not None else PathLossModel(),
            multipath_profile=multipath_profile,
            params=params,
            rng=rng,
        )

    @classmethod
    def from_positions(
        cls,
        positions: list[tuple[float, float]],
        rng: np.random.Generator | None = None,
        **kwargs,
    ) -> "Testbed":
        """Build a testbed from explicit node positions."""
        rng = require_rng(rng, "Testbed.from_positions")
        nodes = [MeshNode(i, x, y) for i, (x, y) in enumerate(positions)]
        return cls(nodes=nodes, rng=rng, **kwargs)

    # ------------------------------------------------------------------
    # Node / link accessors
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> MeshNode:
        """Look up a node by id."""
        return self._by_id[node_id]

    @property
    def node_ids(self) -> list[int]:
        """All node identifiers."""
        return [node.node_id for node in self.nodes]

    def link_average_snr_db(self, src: int, dst: int) -> float:
        """Average SNR of the (undirected) link between two nodes.

        The large-scale SNR (path loss + shadowing) is reciprocal; it is
        drawn once per node pair and cached.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        key = (min(src, dst), max(src, dst))
        if key not in self._snr_cache:
            distance = self.node(src).distance_to(self.node(dst))
            self._snr_cache[key] = self.path_loss.snr_db(distance, rng=self.rng)
        return self._snr_cache[key]

    def link_profile(self, src: int, dst: int) -> np.ndarray:
        """Per-subcarrier SNR profile (dB) of the directed link ``src -> dst``.

        Each direction gets its own small-scale fading realisation, cached so
        repeated queries describe the same static channel.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        key = (src, dst)
        if key not in self._profile_cache:
            self._profile_cache[key] = subcarrier_snr_profile(
                self.link_average_snr_db(src, dst),
                rng=self.rng,
                profile=self.multipath_profile,
                params=self.params,
            )
        return self._profile_cache[key]

    def link_delay_samples(self, src: int, dst: int) -> float:
        """One-way propagation delay of a link in baseband samples."""
        distance = self.node(src).distance_to(self.node(dst))
        return propagation_delay_samples(distance, self.params.bandwidth_hz)

    # ------------------------------------------------------------------
    # Delivery probabilities
    # ------------------------------------------------------------------
    def delivery_probability(
        self,
        src: int,
        dst: int,
        rate: Rate | float,
        payload_bytes: int = 1460,
    ) -> float:
        """Probability that a single-sender packet on ``src -> dst`` is received.

        Memoised per (link, rate, payload length): link profiles are static
        for the lifetime of the testbed, so the EESM computation only runs
        once per combination.
        """
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        key = (src, dst, rate_obj.mbps, payload_bytes)
        if key not in self._delivery_cache:
            self._delivery_cache[key] = delivery_probability(
                self.link_profile(src, dst), rate_obj, payload_bytes
            )
        return self._delivery_cache[key]

    def joint_delivery_probability(
        self,
        senders: list[int],
        dst: int,
        rate: Rate | float,
        payload_bytes: int = 1460,
    ) -> float:
        """Delivery probability of a SourceSync joint transmission.

        The per-subcarrier SNRs of the participating senders add (the Smart
        Combiner's ``sum_i |H_i|^2`` gain), so the joint link is both
        stronger and flatter than any individual link.
        """
        if not senders:
            raise ValueError("need at least one sender")
        if dst in senders:
            raise ValueError("destination cannot also be a sender")
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        # The combined SNR is a sum over senders, so permutations of the
        # same sender set share one cache entry.
        key = (tuple(sorted(senders)), dst, rate_obj.mbps, payload_bytes)
        if key not in self._delivery_cache:
            profiles = [self.link_profile(s, dst) for s in senders]
            combined = combined_subcarrier_snr(profiles)
            self._delivery_cache[key] = delivery_probability(combined, rate_obj, payload_bytes)
        return self._delivery_cache[key]

    def _unprimed_pairs(self, rate_obj: Rate, payload_bytes: int) -> list[tuple[int, int]]:
        """Directed pairs whose delivery probability is not yet cached.

        The nested (src, dst) iteration order is the canonical order in
        which lazy shadowing/fading draws consume the testbed generator;
        every all-pairs sweep (:meth:`prime_delivery_cache` and the
        lockstep priming of :mod:`repro.routing.ensemble`) must walk pairs
        in exactly this order so seeded link realisations are stable.
        """
        pairs: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for src in self.node_ids:
            for dst in self.node_ids:
                if src == dst:
                    continue
                for a, b in ((src, dst), (dst, src)):
                    key = (a, b, rate_obj.mbps, payload_bytes)
                    if key not in self._delivery_cache and (a, b) not in seen:
                        seen.add((a, b))
                        pairs.append((a, b))
        return pairs

    def prime_delivery_cache(self, rate: Rate | float, payload_bytes: int = 1460) -> None:
        """Evaluate every directed link's delivery probability in one batch.

        Link profiles are materialised in the same nested (src, dst) order a
        sequential all-pairs sweep would use — the lazy shadowing/fading
        draws consume the testbed generator identically — and the EESM /
        waterfall mapping then runs once over the stacked profiles instead
        of once per link.  Memoised per (rate, payload length).
        """
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        done_key = ("delivery_primed", rate_obj.mbps, payload_bytes)
        if self._routing_cache.get(done_key):
            return
        from repro.analysis.error_models import delivery_probabilities

        pairs = self._unprimed_pairs(rate_obj, payload_bytes)
        if pairs:
            profiles = np.stack([self.link_profile(a, b) for a, b in pairs])
            probs = delivery_probabilities(profiles, rate_obj, payload_bytes)
            for (a, b), prob in zip(pairs, probs):
                self._delivery_cache[(a, b, rate_obj.mbps, payload_bytes)] = float(prob)
        self._routing_cache[done_key] = True

    def delivery_prob_matrix(self, rate: Rate | float, payload_bytes: int = 1460) -> np.ndarray:
        """Dense pairwise single-sender delivery probabilities.

        Returns an ``(n_nodes, n_nodes)`` array indexed by node *position*
        (``self._node_index``), with zeros on the diagonal.  The matrix is
        assembled from the scalar delivery cache after one batched priming
        pass, so its entries are bit-identical to per-pair
        :meth:`delivery_probability` calls; routing hot loops index it
        instead of hashing tuple keys per attempt.

        Building the matrix materialises any missing link profile (lazy
        generator draws, in the canonical all-pairs order) — callers that
        need draw-order stability should only invoke it once every profile
        exists, e.g. after :func:`repro.net.etx.etx_graph` primed the
        testbed.
        """
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        key = ("delivery_matrix", rate_obj.mbps, payload_bytes)
        cached = self._routing_cache.get(key)
        if cached is not None:
            return cached
        self.prime_delivery_cache(rate_obj, payload_bytes)
        n = len(self.nodes)
        matrix = np.zeros((n, n), dtype=np.float64)
        for a in self.node_ids:
            for b in self.node_ids:
                if a == b:
                    continue
                matrix[self._node_index[a], self._node_index[b]] = self._delivery_cache[
                    (a, b, rate_obj.mbps, payload_bytes)
                ]
        self._routing_cache[key] = matrix
        return matrix

    def joint_delivery_prob_row(
        self,
        senders: list[int] | tuple[int, ...],
        receivers: list[int],
        rate: Rate | float,
        payload_bytes: int = 1460,
    ) -> np.ndarray:
        """Joint delivery probabilities of one sender set towards many receivers.

        The per-receiver values live in a row table keyed by the *frozen*
        sender set.  Missing entries are filled in one batched
        combine-and-EESM pass over the outstanding receivers, accumulating
        the senders' linear SNRs in the caller's sender order — bit-identical
        to scalar :meth:`joint_delivery_probability` calls made in the same
        order, whose memo this row table also reads and writes.  Subsequent
        lookups are plain array gathers.

        Like the scalar path, filling an entry touches the senders' link
        profiles; callers needing draw-order stability should only ask for
        links whose profiles are already materialised.
        """
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        sorted_senders = tuple(sorted(senders))
        key = ("joint_row", sorted_senders, rate_obj.mbps, payload_bytes)
        row = self._routing_cache.get(key)
        if row is None:
            row = {}
            self._routing_cache[key] = row
        missing = [dst for dst in receivers if dst not in row]
        if missing:
            from repro.analysis.error_models import (
                combined_subcarrier_snr_batch,
                delivery_probabilities,
            )

            fresh = []
            for dst in missing:
                cache_key = (sorted_senders, dst, rate_obj.mbps, payload_bytes)
                cached = self._delivery_cache.get(cache_key)
                if cached is not None:
                    row[dst] = cached
                else:
                    fresh.append(dst)
            if fresh:
                profiles = np.stack(
                    [[self.link_profile(s, dst) for dst in fresh] for s in senders]
                )
                combined = combined_subcarrier_snr_batch(profiles)
                probs = delivery_probabilities(combined, rate_obj, payload_bytes)
                for dst, prob in zip(fresh, probs):
                    value = float(prob)
                    row[dst] = value
                    self._delivery_cache[(sorted_senders, dst, rate_obj.mbps, payload_bytes)] = value
        out = np.empty(len(receivers), dtype=np.float64)
        for k, dst in enumerate(receivers):
            out[k] = row[dst]
        return out

    def loss_rate(self, src: int, dst: int, probe_rate_mbps: float = 6.0, probe_bytes: int = 1460) -> float:
        """Link loss rate as measured by routing-layer probes (for ETX)."""
        return 1.0 - self.delivery_probability(src, dst, probe_rate_mbps, probe_bytes)

    def attempt_delivery(
        self,
        senders: list[int] | int,
        dst: int,
        rate: Rate | float,
        payload_bytes: int,
        rng: np.random.Generator | None = None,
    ) -> bool:
        """Draw one Bernoulli delivery outcome for a (possibly joint) transmission."""
        rng = rng if rng is not None else self.rng
        prob = self._delivery_prob(senders, dst, rate, payload_bytes)
        return bool(rng.random() < prob)

    def _delivery_prob(
        self, senders: list[int] | int, dst: int, rate: Rate | float, payload_bytes: int
    ) -> float:
        if isinstance(senders, int):
            return self.delivery_probability(senders, dst, rate, payload_bytes)
        if len(senders) == 1:
            return self.delivery_probability(senders[0], dst, rate, payload_bytes)
        return self.joint_delivery_probability(list(senders), dst, rate, payload_bytes)

    def attempt_deliveries(
        self,
        senders: list[int] | int,
        receivers: list[int],
        rate: Rate | float,
        payload_bytes: int,
        rng: np.random.Generator | None = None,
    ) -> list[bool]:
        """Bernoulli delivery outcomes for one transmission heard by many receivers.

        One ``rng.random(len(receivers))`` draw replaces a loop of
        single-receiver :meth:`attempt_delivery` calls; the generator
        consumes exactly the same uniform stream, so the batched outcomes
        are bit-identical to the sequential ones under a fixed seed.
        """
        rng = rng if rng is not None else self.rng
        if not receivers:
            return []
        probs = self._delivery_prob_vector(senders, receivers, rate, payload_bytes)
        if len(receivers) == 1:
            return [bool(rng.random() < probs[0])]
        draws = rng.random(len(receivers))
        return (draws < probs).tolist()

    def _delivery_prob_vector(
        self,
        senders: list[int] | int,
        receivers: list[int],
        rate: Rate | float,
        payload_bytes: int,
    ) -> np.ndarray:
        """Delivery probabilities of one transmission towards many receivers.

        Single-sender probabilities gather from the dense
        :meth:`delivery_prob_matrix` when it has been built (falling back to
        the scalar cache so lazily-constructed testbeds keep their draw
        order); joint probabilities come from the frozen-sender-set row
        table.
        """
        if isinstance(senders, int):
            sender: int | None = senders
        elif len(senders) == 1:
            sender = senders[0]
        else:
            sender = None
        if sender is None:
            return self.joint_delivery_prob_row(list(senders), receivers, rate, payload_bytes)
        rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
        matrix = self._routing_cache.get(("delivery_matrix", rate_obj.mbps, payload_bytes))
        if matrix is not None:
            idx = self._node_index
            return matrix[idx[sender], [idx[node] for node in receivers]]
        return np.array(
            [self.delivery_probability(sender, node, rate_obj, payload_bytes) for node in receivers]
        )

    def attempt_broadcasts(
        self,
        sender: int,
        receivers: list[int],
        n_packets: int,
        rate: Rate | float,
        payload_bytes: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Delivery outcomes of ``n_packets`` broadcasts to many receivers.

        Returns an ``(n_packets, len(receivers))`` boolean matrix from one
        uniform draw in packet-major order — the exact stream a nested
        per-packet / per-receiver :meth:`attempt_delivery` loop consumes.
        """
        rng = rng if rng is not None else self.rng
        if n_packets == 0 or not receivers:
            return np.zeros((n_packets, len(receivers)), dtype=bool)
        probs = self._delivery_prob_vector(sender, receivers, rate, payload_bytes)
        return rng.random((n_packets, len(receivers))) < probs[None, :]
