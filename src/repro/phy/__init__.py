"""OFDM physical-layer substrate (802.11a/g-like transmit and receive chains).

This package provides the sample-level PHY that the SourceSync core
(:mod:`repro.core`) builds on: framing, coding, modulation, OFDM symbol
assembly, preamble generation, packet detection, channel estimation and
full transmit/receive chains for single-sender frames.
"""

from repro.phy.params import OFDMParams, DEFAULT_PARAMS, SPEED_OF_LIGHT
from repro.phy.rates import Rate, RATE_TABLE, rate_for_mbps, best_rate_for_snr
from repro.phy.modulation import Modulation, get_modulation
from repro.phy.transmitter import Transmitter, FrameConfig, EncodedFrame
from repro.phy.receiver import Receiver, ReceiveResult
from repro.phy.equalizer import ChannelEstimate

__all__ = [
    "OFDMParams",
    "DEFAULT_PARAMS",
    "SPEED_OF_LIGHT",
    "Rate",
    "RATE_TABLE",
    "rate_for_mbps",
    "best_rate_for_snr",
    "Modulation",
    "get_modulation",
    "Transmitter",
    "FrameConfig",
    "EncodedFrame",
    "Receiver",
    "ReceiveResult",
    "ChannelEstimate",
]
