"""Bit-level utilities: packing, scrambling and CRC-32.

These mirror the bit-domain processing of the 802.11 PHY/MAC that the
SourceSync prototype inherits from its standard transmit/receive chains:

* the 127-bit self-synchronising scrambler (x^7 + x^4 + 1),
* the IEEE CRC-32 frame check sequence appended to every PSDU,
* helpers to convert between bytes and bit arrays.
"""

from __future__ import annotations

import numpy as np
from repro.rng import require_rng

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "scramble",
    "descramble",
    "crc32",
    "append_crc",
    "check_crc",
    "random_payload",
]

_SCRAMBLER_LENGTH = 127


def _build_scrambler_tables() -> tuple[np.ndarray, np.ndarray]:
    """Precompute one period of the scrambler PRBS and a seed-offset table.

    The x^7 + x^4 + 1 LFSR is maximal length, so every non-zero 7-bit state
    lies on a single cycle of period 127.  Rather than stepping the register
    per output bit, we walk the cycle once at import time, record the output
    sequence, and remember at which cycle offset each state occurs.  A
    scramble of any length and seed is then a tile-and-XOR of the cached
    sequence starting at the seed's offset.
    """
    cycle = np.empty(_SCRAMBLER_LENGTH, dtype=np.uint8)
    offsets = np.zeros(128, dtype=np.int64)
    state = 0x7F  # any non-zero state; all 127 states are visited
    for i in range(_SCRAMBLER_LENGTH):
        offsets[state] = i
        feedback = ((state >> 6) ^ (state >> 3)) & 1  # x^7 + x^4 + 1
        cycle[i] = feedback
        state = ((state << 1) | feedback) & 0x7F
    return cycle, offsets


#: One full 127-bit period of the scrambler output, plus the offset at which
#: each seed state enters the cycle.  Computed once at module import.
_PRBS_CYCLE, _PRBS_SEED_OFFSET = _build_scrambler_tables()


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Convert bytes to a bit array (LSB-first per byte, as in 802.11)."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    bits = np.unpackbits(arr, bitorder="little")
    return bits.astype(np.uint8)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Convert a bit array (LSB-first per byte) back to bytes.

    The bit array length must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits, bitorder="little").tobytes()


def _scrambler_sequence(n_bits: int, seed: int) -> np.ndarray:
    """Generate the 802.11 scrambler sequence of the requested length.

    The sequence is sliced out of the precomputed 127-bit PRBS cycle at the
    seed's offset instead of stepping the LFSR per bit.
    """
    if not 0 < seed < 128:
        raise ValueError("scrambler seed must be in 1..127")
    offset = int(_PRBS_SEED_OFFSET[seed])
    return np.resize(np.roll(_PRBS_CYCLE, -offset), n_bits)


def scramble(bits: np.ndarray, seed: int = 0x5D) -> np.ndarray:
    """Scramble a bit sequence with the 802.11 127-bit scrambler.

    ``bits`` may have any leading batch dimensions; the scrambler sequence
    is applied along the last axis (every packet of a batch starts from the
    same seed, as in the standard transmit chain).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    sequence = _scrambler_sequence(bits.shape[-1] if bits.ndim else bits.size, seed)
    return np.bitwise_xor(bits, sequence)


def descramble(bits: np.ndarray, seed: int = 0x5D) -> np.ndarray:
    """Descramble a bit sequence (the scrambler is its own inverse)."""
    return scramble(bits, seed)


def _crc32_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    poly = np.uint32(0xEDB88320)
    for i in range(256):
        crc = np.uint32(i)
        for _ in range(8):
            if crc & np.uint32(1):
                crc = np.uint32((int(crc) >> 1) ^ int(poly))
            else:
                crc = np.uint32(int(crc) >> 1)
        table[i] = crc
    return table


_CRC_TABLE = _crc32_table()


def crc32(data: bytes) -> int:
    """IEEE 802.3 CRC-32 of the given bytes."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ int(_CRC_TABLE[(crc ^ byte) & 0xFF])
    return crc ^ 0xFFFFFFFF


def append_crc(payload: bytes) -> bytes:
    """Append the 4-byte CRC-32 (little-endian) to a payload."""
    checksum = crc32(payload)
    return payload + checksum.to_bytes(4, "little")


def check_crc(frame: bytes) -> tuple[bytes, bool]:
    """Split a frame into payload and CRC and verify the checksum.

    Returns ``(payload, ok)``.  Frames shorter than 4 bytes are reported as
    failed with an empty payload.
    """
    if len(frame) < 4:
        return b"", False
    payload, received = frame[:-4], frame[-4:]
    expected = crc32(payload).to_bytes(4, "little")
    return payload, received == expected


def random_payload(n_bytes: int, rng: np.random.Generator | None = None) -> bytes:
    """Generate a random payload of the requested size."""
    rng = require_rng(rng, "random_payload")
    return rng.integers(0, 256, size=n_bytes, dtype=np.uint8).tobytes()
