"""Forward error correction: convolutional coding, puncturing, interleaving."""

from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.puncturing import puncture, depuncture, puncture_pattern
from repro.phy.coding.interleaver import interleave, deinterleave

__all__ = [
    "ConvolutionalCode",
    "puncture",
    "depuncture",
    "puncture_pattern",
    "interleave",
    "deinterleave",
]
