"""Rate-1/2, constraint-length-7 convolutional code with a soft Viterbi decoder.

This is the mandatory 802.11a/g code (generator polynomials 133/171 octal).
Higher code rates (2/3, 3/4) are obtained by puncturing the rate-1/2 output
(see :mod:`repro.phy.coding.puncturing`).

The Viterbi decoder operates on soft inputs (log-likelihood ratios, positive
meaning "bit 0 more likely") and is vectorised over the 64 trellis states so
full packets decode in milliseconds with numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConvolutionalCode"]


class ConvolutionalCode:
    """The 802.11 (133, 171) rate-1/2 convolutional code.

    Parameters
    ----------
    constraint_length:
        Number of bits in the encoder register including the current input.
    polynomials:
        Generator polynomials in octal-equivalent integer form.
    """

    def __init__(self, constraint_length: int = 7, polynomials: tuple[int, int] = (0o133, 0o171)):
        if constraint_length < 2:
            raise ValueError("constraint_length must be at least 2")
        self.constraint_length = constraint_length
        self.polynomials = tuple(polynomials)
        self.n_outputs = len(self.polynomials)
        self.n_states = 1 << (constraint_length - 1)
        self._build_trellis()

    # ------------------------------------------------------------------
    # Trellis construction
    # ------------------------------------------------------------------
    def _build_trellis(self) -> None:
        n_states = self.n_states
        memory = self.constraint_length - 1
        # next_state[input, state] and output bits per branch
        self._next_state = np.zeros((2, n_states), dtype=np.int64)
        self._output = np.zeros((2, n_states, self.n_outputs), dtype=np.int8)
        for state in range(n_states):
            for bit in (0, 1):
                register = (bit << memory) | state
                outputs = []
                for poly in self.polynomials:
                    taps = register & poly
                    outputs.append(bin(taps).count("1") & 1)
                self._next_state[bit, state] = register >> 1
                self._output[bit, state] = outputs
        # Predecessor tables for the add-compare-select / traceback passes.
        # Every state has exactly two predecessors; which one was taken is
        # what the decoder stores per step.  The information bit consumed on
        # entry to a state is fully determined by that state (its newest
        # register bit), so it does not need to be stored.
        mask = n_states - 1
        states = np.arange(n_states)
        self._entry_bit = (states >> (memory - 1)).astype(np.uint8)
        self._prev_states = np.empty((2, n_states), dtype=np.int64)
        self._prev_states[0] = (states << 1) & mask
        self._prev_states[1] = ((states << 1) & mask) | 1
        self._prev_outputs = np.empty((2, n_states, self.n_outputs), dtype=np.int8)
        for choice in (0, 1):
            prev = self._prev_states[choice]
            bits = self._entry_bit
            self._prev_outputs[choice] = self._output[bits, prev]

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode information bits at rate 1/2.

        Parameters
        ----------
        bits:
            Information bits (0/1).
        terminate:
            When True (default) the encoder appends ``constraint_length - 1``
            zero tail bits so the trellis ends in the all-zero state, which
            is what 802.11 does and what the decoder assumes.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if terminate:
            tail = np.zeros(self.constraint_length - 1, dtype=np.uint8)
            bits = np.concatenate([bits, tail])
        coded = np.empty(bits.size * self.n_outputs, dtype=np.uint8)
        state = 0
        next_state = self._next_state
        output = self._output
        for i, bit in enumerate(bits):
            coded[i * self.n_outputs : (i + 1) * self.n_outputs] = output[bit, state]
            state = next_state[bit, state]
        return coded

    @property
    def tail_bits(self) -> int:
        """Number of zero tail bits appended by a terminated encode."""
        return self.constraint_length - 1

    def coded_length(self, n_info_bits: int, terminate: bool = True) -> int:
        """Number of coded bits produced for ``n_info_bits`` information bits."""
        total = n_info_bits + (self.tail_bits if terminate else 0)
        return total * self.n_outputs

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        llrs: np.ndarray,
        terminated: bool = True,
        strip_tail: bool = True,
    ) -> np.ndarray:
        """Soft-decision Viterbi decode.

        Parameters
        ----------
        llrs:
            Log-likelihood ratios of the coded bits, positive values meaning
            bit 0 is more likely.  Hard decisions can be passed as
            ``1 - 2*bit`` values.  Erased (punctured) positions should be 0.
        terminated:
            Whether the encoder appended zero tail bits.  When True the
            survivor path is forced to end in state 0.
        strip_tail:
            Whether to strip the decoded tail bits from the output.

        Returns
        -------
        numpy.ndarray
            The decoded information bits.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.size % self.n_outputs != 0:
            raise ValueError(
                f"LLR length {llrs.size} is not a multiple of {self.n_outputs}"
            )
        n_steps = llrs.size // self.n_outputs
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)
        llrs = llrs.reshape(n_steps, self.n_outputs)

        n_states = self.n_states
        # Branch metric for output bit b given LLR l: correlation (1-2b)*l,
        # so larger is better and the path metric is maximised.
        prev_states = self._prev_states  # (2, n_states)
        prev_sign = 1.0 - 2.0 * self._prev_outputs.astype(np.float64)  # (2, n_states, n_out)

        neg_inf = -1e18
        metrics = np.full(n_states, neg_inf, dtype=np.float64)
        metrics[0] = 0.0
        decisions = np.empty((n_steps, n_states), dtype=np.uint8)

        state_range = np.arange(n_states)
        for step in range(n_steps):
            step_llr = llrs[step]  # (n_out,)
            branch = prev_sign @ step_llr  # (2, n_states)
            candidate = metrics[prev_states] + branch  # (2, n_states)
            best_choice = np.argmax(candidate, axis=0).astype(np.uint8)
            metrics = candidate[best_choice, state_range]
            decisions[step] = best_choice

        # Traceback
        state = 0 if terminated else int(np.argmax(metrics))
        bits = np.empty(n_steps, dtype=np.uint8)
        for step in range(n_steps - 1, -1, -1):
            bits[step] = self._entry_bit[state]
            choice = decisions[step, state]
            state = prev_states[choice, state]

        if terminated and strip_tail:
            bits = bits[: max(n_steps - self.tail_bits, 0)]
        return bits

    def decode_hard(self, coded_bits: np.ndarray, terminated: bool = True) -> np.ndarray:
        """Hard-decision decode convenience wrapper."""
        coded_bits = np.asarray(coded_bits, dtype=np.float64)
        llrs = 1.0 - 2.0 * coded_bits
        return self.decode(llrs, terminated=terminated)
