"""Rate-1/2, constraint-length-7 convolutional code with a soft Viterbi decoder.

This is the mandatory 802.11a/g code (generator polynomials 133/171 octal).
Higher code rates (2/3, 3/4) are obtained by puncturing the rate-1/2 output
(see :mod:`repro.phy.coding.puncturing`).

Both halves of the codec are batch-friendly:

* :meth:`ConvolutionalCode.encode` accepts ``(..., n_bits)`` arrays and is
  fully vectorised — each output stream is an XOR of shifted copies of the
  (zero-padded) input, so an ensemble of packets encodes in a handful of
  numpy calls with no per-bit Python loop.
* :meth:`ConvolutionalCode.decode_batch` runs a block-parallel Viterbi pass
  over a ``(n_packets, n_llrs)`` batch: the add-compare-select recursion
  keeps a ``(n_packets, n_states)`` metric array, so the single remaining
  Python loop over trellis steps is amortised across every packet of the
  ensemble, and the traceback is vectorised over packets as well.
  :meth:`ConvolutionalCode.decode` is a thin single-packet wrapper, which
  guarantees the batched and per-packet paths are bit-identical.

Experiments should obtain codes through :func:`get_code` so identical
trellis tables are built once per process instead of once per packet.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["ConvolutionalCode", "get_code"]

#: Cap on decisions-array elements (steps x packets x states) held live per
#: decode_batch call; larger ensembles are split into packet chunks, which
#: changes nothing numerically (every packet's recursion is independent) but
#: bounds memory the same way the receiver chunks its soft demapper.
_DECODE_CHUNK_ELEMS = 1 << 26


class ConvolutionalCode:
    """The 802.11 (133, 171) rate-1/2 convolutional code.

    Parameters
    ----------
    constraint_length:
        Number of bits in the encoder register including the current input.
    polynomials:
        Generator polynomials in octal-equivalent integer form.
    """

    def __init__(self, constraint_length: int = 7, polynomials: tuple[int, int] = (0o133, 0o171)):
        if constraint_length < 2:
            raise ValueError("constraint_length must be at least 2")
        self.constraint_length = constraint_length
        self.polynomials = tuple(polynomials)
        self.n_outputs = len(self.polynomials)
        self.n_states = 1 << (constraint_length - 1)
        self._build_trellis()

    # ------------------------------------------------------------------
    # Trellis construction
    # ------------------------------------------------------------------
    def _build_trellis(self) -> None:
        n_states = self.n_states
        memory = self.constraint_length - 1
        # next_state[input, state] and output bits per branch
        self._next_state = np.zeros((2, n_states), dtype=np.int64)
        self._output = np.zeros((2, n_states, self.n_outputs), dtype=np.int8)
        for state in range(n_states):
            for bit in (0, 1):
                register = (bit << memory) | state
                outputs = []
                for poly in self.polynomials:
                    taps = register & poly
                    outputs.append(bin(taps).count("1") & 1)
                self._next_state[bit, state] = register >> 1
                self._output[bit, state] = outputs
        # Predecessor tables for the add-compare-select / traceback passes.
        # Every state has exactly two predecessors; which one was taken is
        # what the decoder stores per step.  The information bit consumed on
        # entry to a state is fully determined by that state (its newest
        # register bit), so it does not need to be stored.
        mask = n_states - 1
        states = np.arange(n_states)
        self._entry_bit = (states >> (memory - 1)).astype(np.uint8)
        self._prev_states = np.empty((2, n_states), dtype=np.int64)
        self._prev_states[0] = (states << 1) & mask
        self._prev_states[1] = ((states << 1) & mask) | 1
        self._prev_outputs = np.empty((2, n_states, self.n_outputs), dtype=np.int8)
        for choice in (0, 1):
            prev = self._prev_states[choice]
            bits = self._entry_bit
            self._prev_outputs[choice] = self._output[bits, prev]
        # Branch metric signs (1-2*bit) used by the soft decoder.
        self._prev_sign = 1.0 - 2.0 * self._prev_outputs.astype(np.float64)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode information bits at rate 1/2.

        Parameters
        ----------
        bits:
            Information bits (0/1), shape ``(..., n_bits)``; leading axes
            are treated as independent packets of a batch.
        terminate:
            When True (default) the encoder appends ``constraint_length - 1``
            zero tail bits so the trellis ends in the all-zero state, which
            is what 802.11 does and what the decoder assumes.

        Notes
        -----
        Because the encoder starts in the all-zero state, output stream
        ``j`` is simply the XOR of delayed copies of the zero-padded input
        selected by polynomial ``j``'s taps, which vectorises over both the
        bit axis and any batch axes.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        memory = self.constraint_length - 1
        if terminate:
            tail_shape = bits.shape[:-1] + (memory,)
            bits = np.concatenate([bits, np.zeros(tail_shape, dtype=np.uint8)], axis=-1)
        n_bits = bits.shape[-1]
        padded = np.concatenate(
            [np.zeros(bits.shape[:-1] + (memory,), dtype=np.uint8), bits], axis=-1
        )
        coded = np.empty(bits.shape[:-1] + (n_bits * self.n_outputs,), dtype=np.uint8)
        for j, poly in enumerate(self.polynomials):
            stream = np.zeros_like(bits)
            # Register bit position p holds the input delayed by (memory - p)
            # samples, i.e. padded[..., p : p + n_bits].
            for p in range(self.constraint_length):
                if (poly >> p) & 1:
                    stream ^= padded[..., p : p + n_bits]
            coded[..., j :: self.n_outputs] = stream
        return coded

    @property
    def tail_bits(self) -> int:
        """Number of zero tail bits appended by a terminated encode."""
        return self.constraint_length - 1

    def coded_length(self, n_info_bits: int, terminate: bool = True) -> int:
        """Number of coded bits produced for ``n_info_bits`` information bits."""
        total = n_info_bits + (self.tail_bits if terminate else 0)
        return total * self.n_outputs

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        llrs: np.ndarray,
        terminated: bool = True,
        strip_tail: bool = True,
    ) -> np.ndarray:
        """Soft-decision Viterbi decode of a single packet.

        Parameters
        ----------
        llrs:
            Log-likelihood ratios of the coded bits, positive values meaning
            bit 0 is more likely.  Hard decisions can be passed as
            ``1 - 2*bit`` values.  Erased (punctured) positions should be 0.
        terminated:
            Whether the encoder appended zero tail bits.  When True the
            survivor path is forced to end in state 0.
        strip_tail:
            Whether to strip the decoded tail bits from the output.

        Returns
        -------
        numpy.ndarray
            The decoded information bits.

        Notes
        -----
        This is a thin wrapper over :meth:`decode_batch` with a batch of
        one, so single-packet and ensemble decoding are bit-identical by
        construction.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.ndim != 1:
            raise ValueError("decode expects a 1-D LLR array; use decode_batch for batches")
        return self.decode_batch(llrs[None, :], terminated=terminated, strip_tail=strip_tail)[0]

    def decode_batch(
        self,
        llrs: np.ndarray,
        terminated: bool = True,
        strip_tail: bool = True,
    ) -> np.ndarray:
        """Block-parallel soft Viterbi decode of a packet ensemble.

        Parameters
        ----------
        llrs:
            ``(n_packets, n_llrs)`` log-likelihood ratios; every packet must
            have the same length (pad or group by length upstream).
        terminated, strip_tail:
            As in :meth:`decode`.

        Returns
        -------
        numpy.ndarray
            ``(n_packets, n_info_bits)`` decoded bits.

        Notes
        -----
        The add-compare-select recursion carries a ``(n_packets, n_states)``
        path-metric array: the only Python loop is over trellis steps, and
        each iteration advances *all* packets at once.  Every operation is
        elementwise or a per-row reduction, so each batch row follows
        exactly the float path a batch of one would — the basis for the
        bit-identity guarantee tested against the single-packet decoder.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.ndim != 2:
            raise ValueError("decode_batch expects a (n_packets, n_llrs) array")
        n_packets = llrs.shape[0]
        if llrs.shape[1] % self.n_outputs != 0:
            raise ValueError(
                f"LLR length {llrs.shape[1]} is not a multiple of {self.n_outputs}"
            )
        n_steps = llrs.shape[1] // self.n_outputs
        if n_packets == 0 or n_steps == 0:
            n_info = n_steps
            if terminated and strip_tail:
                n_info = max(n_steps - self.tail_bits, 0)
            return np.zeros((n_packets, n_info), dtype=np.uint8)
        chunk = max(_DECODE_CHUNK_ELEMS // max(n_steps * self.n_states, 1), 1)
        if n_packets > chunk:
            return np.concatenate(
                [
                    self.decode_batch(llrs[lo : lo + chunk], terminated, strip_tail)
                    for lo in range(0, n_packets, chunk)
                ]
            )
        steps = llrs.reshape(n_packets, n_steps, self.n_outputs)

        n_states = self.n_states
        prev_states = self._prev_states  # (2, n_states)
        # Branch metric for output bit b given LLR l: correlation (1-2b)*l,
        # so larger is better and the path metric is maximised.
        prev_sign = self._prev_sign  # (2, n_states, n_out)

        neg_inf = -1e18
        metrics = np.full((n_packets, n_states), neg_inf, dtype=np.float64)
        metrics[:, 0] = 0.0
        decisions = np.empty((n_steps, n_packets, n_states), dtype=np.uint8)

        for step in range(n_steps):
            step_llr = steps[:, step, :]  # (n_packets, n_out)
            # branch[b, c, s] = sum_o prev_sign[c, s, o] * step_llr[b, o],
            # accumulated in output order with explicit broadcasting so each
            # batch row's float path is independent of the batch size.
            branch = step_llr[:, 0, None, None] * prev_sign[None, :, :, 0]
            for o in range(1, self.n_outputs):
                branch = branch + step_llr[:, o, None, None] * prev_sign[None, :, :, o]
            candidate = metrics[:, prev_states] + branch  # (n_packets, 2, n_states)
            best_choice = np.argmax(candidate, axis=1).astype(np.uint8)
            metrics = np.take_along_axis(candidate, best_choice[:, None, :], axis=1)[:, 0, :]
            decisions[step] = best_choice

        # Vectorised traceback: one state per packet, walked backwards with
        # fancy indexing instead of a per-packet Python loop.
        if terminated:
            state = np.zeros(n_packets, dtype=np.int64)
        else:
            state = np.argmax(metrics, axis=1)
        rows = np.arange(n_packets)
        bits = np.empty((n_packets, n_steps), dtype=np.uint8)
        for step in range(n_steps - 1, -1, -1):
            bits[:, step] = self._entry_bit[state]
            choice = decisions[step, rows, state]
            state = prev_states[choice, state]

        if terminated and strip_tail:
            bits = bits[:, : max(n_steps - self.tail_bits, 0)]
        return bits

    def decode_hard(self, coded_bits: np.ndarray, terminated: bool = True) -> np.ndarray:
        """Hard-decision decode convenience wrapper."""
        coded_bits = np.asarray(coded_bits, dtype=np.float64)
        llrs = 1.0 - 2.0 * coded_bits
        return self.decode(llrs, terminated=terminated)


@functools.lru_cache(maxsize=None)
def get_code(
    constraint_length: int = 7, polynomials: tuple[int, int] = (0o133, 0o171)
) -> ConvolutionalCode:
    """Shared :class:`ConvolutionalCode` instance for a given configuration.

    Trellis construction walks every (state, input) pair in Python; caching
    the built code lets experiments stop rebuilding identical tables per
    packet or per module import.
    """
    return ConvolutionalCode(constraint_length, tuple(polynomials))
