"""802.11a/g block interleaver.

The interleaver operates on one OFDM symbol worth of coded bits
(``n_cbps = 48 * bits_per_subcarrier``) and applies the standard two-step
permutation: the first ensures adjacent coded bits map to non-adjacent
subcarriers, the second ensures adjacent bits alternate between more and
less significant constellation bits.
"""

from __future__ import annotations

import numpy as np

__all__ = ["interleave", "deinterleave", "interleaver_permutation"]


def interleaver_permutation(n_cbps: int, bits_per_subcarrier: int) -> np.ndarray:
    """Permutation ``p`` such that ``output[p[k]] = input[k]``.

    Parameters
    ----------
    n_cbps:
        Coded bits per OFDM symbol.
    bits_per_subcarrier:
        Coded bits per subcarrier (1 for BPSK .. 6 for 64-QAM).
    """
    if n_cbps <= 0:
        raise ValueError("n_cbps must be positive")
    if n_cbps % 16 != 0:
        raise ValueError("n_cbps must be a multiple of 16")
    s = max(bits_per_subcarrier // 2, 1)
    k = np.arange(n_cbps)
    # First permutation
    i = (n_cbps // 16) * (k % 16) + (k // 16)
    # Second permutation
    j = s * (i // s) + (i + n_cbps - (16 * i // n_cbps)) % s
    return j


def interleave(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Interleave one OFDM symbol of coded bits."""
    bits = np.asarray(bits)
    perm = interleaver_permutation(bits.size, bits_per_subcarrier)
    out = np.empty_like(bits)
    out[perm] = bits
    return out


def deinterleave(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Invert :func:`interleave` (works on bits or soft values)."""
    bits = np.asarray(bits)
    perm = interleaver_permutation(bits.size, bits_per_subcarrier)
    return bits[perm]
