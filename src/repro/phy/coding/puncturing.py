"""Puncturing of the rate-1/2 mother code to rates 2/3 and 3/4.

802.11a/g derives its higher code rates by deleting (puncturing) selected
output bits of the rate-1/2 convolutional encoder.  The receiver re-inserts
zero-LLR erasures at the punctured positions before Viterbi decoding.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = ["puncture_pattern", "puncture", "depuncture", "punctured_length"]

# Patterns are given over the serialised (A0 B0 A1 B1 ...) rate-1/2 output,
# exactly as in IEEE 802.11-2016 Table 17-9.  1 = keep, 0 = delete.
_PATTERNS: dict[Fraction, np.ndarray] = {
    Fraction(1, 2): np.array([1, 1], dtype=np.uint8),
    Fraction(2, 3): np.array([1, 1, 1, 0], dtype=np.uint8),
    Fraction(3, 4): np.array([1, 1, 1, 0, 0, 1], dtype=np.uint8),
}


def puncture_pattern(code_rate: Fraction | float | str) -> np.ndarray:
    """Return the keep/delete pattern for a supported code rate."""
    rate = _normalise_rate(code_rate)
    try:
        return _PATTERNS[rate].copy()
    except KeyError as exc:
        supported = ", ".join(str(r) for r in _PATTERNS)
        raise ValueError(f"unsupported code rate {code_rate}; supported: {supported}") from exc


def _normalise_rate(code_rate: Fraction | float | str) -> Fraction:
    if isinstance(code_rate, Fraction):
        return code_rate
    if isinstance(code_rate, str):
        num, _, den = code_rate.partition("/")
        return Fraction(int(num), int(den))
    return Fraction(code_rate).limit_denominator(12)


def puncture(coded_bits: np.ndarray, code_rate: Fraction | float | str) -> np.ndarray:
    """Delete bits of a rate-1/2 coded stream according to the rate pattern.

    ``coded_bits`` may have leading batch axes; puncturing is applied along
    the last axis (every packet of a batch shares the same pattern).
    """
    pattern = puncture_pattern(code_rate)
    coded_bits = np.asarray(coded_bits)
    n = coded_bits.shape[-1] if coded_bits.ndim else coded_bits.size
    reps = int(np.ceil(n / pattern.size))
    mask = np.tile(pattern, reps)[:n].astype(bool)
    return coded_bits[..., mask]


def depuncture(
    values: np.ndarray,
    code_rate: Fraction | float | str,
    original_length: int,
    erasure: float = 0.0,
) -> np.ndarray:
    """Re-insert erasures at punctured positions.

    Parameters
    ----------
    values:
        The punctured LLR stream received from the demapper.
    code_rate:
        The code rate used at the transmitter.
    original_length:
        Length of the unpunctured rate-1/2 stream.
    erasure:
        Value inserted at punctured positions (0 = no information for the
        soft decoder).
    """
    pattern = puncture_pattern(code_rate)
    values = np.asarray(values, dtype=np.float64)
    reps = int(np.ceil(original_length / pattern.size))
    mask = np.tile(pattern, reps)[:original_length].astype(bool)
    expected = int(mask.sum())
    n = values.shape[-1] if values.ndim else values.size
    if n != expected:
        raise ValueError(
            f"punctured stream has {n} values, expected {expected} "
            f"for original length {original_length} at rate {code_rate}"
        )
    out = np.full(values.shape[:-1] + (original_length,), erasure, dtype=np.float64)
    out[..., mask] = values
    return out


def punctured_length(original_length: int, code_rate: Fraction | float | str) -> int:
    """Number of bits surviving puncturing of a rate-1/2 stream."""
    pattern = puncture_pattern(code_rate)
    reps = int(np.ceil(original_length / pattern.size))
    mask = np.tile(pattern, reps)[:original_length]
    return int(mask.sum())
