"""Packet detection and coarse/fine timing estimation.

The detector models what the paper calls *packet detection delay* (§4.2a):
a real receiver does not detect a packet at the instant its first sample
arrives at the antenna; it needs to accumulate correlation energy, and the
instant of detection varies with SNR and multipath.  SourceSync's central
measurement trick is to estimate this delay from the slope of the channel
phase across subcarriers and subtract it.

Two detectors are provided:

* :func:`detect_packet_autocorrelation` — a Schmidl & Cox style detector
  using the periodicity of the short training field.  Its detection index
  naturally lags the true packet start, giving a realistic detection delay.
* :func:`detect_packet_crosscorrelation` — a matched-filter detector against
  the known STF, used by tests as a near-ground-truth reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import short_training_field

__all__ = [
    "DetectionResult",
    "detect_packet_autocorrelation",
    "detect_packet_autocorrelation_batch",
    "detect_packet_crosscorrelation",
    "estimate_coarse_cfo",
    "estimate_coarse_cfo_rows",
    "fine_timing_ltf",
]


@dataclass(frozen=True)
class DetectionResult:
    """Result of packet detection.

    Attributes
    ----------
    detected:
        Whether a packet was found at all.
    detect_index:
        Sample index at which the detector declared a packet.  For the
        autocorrelation detector this instant *lags* the true packet start
        by the metric run length plus the correlation lag.
    start_index:
        The detector's best estimate of the first sample of the packet
        (coarse timing).  For the autocorrelation detector this is the
        first sample of the above-threshold metric run — the point where
        the correlation window first lies fully inside the training field —
        which is earlier than ``detect_index``; the cross-correlation
        detector returns its matched-filter peak.
    metric:
        Peak value of the detection metric: over the qualifying run on
        success, over everything examined on failure (the best candidate
        that still failed the threshold-run criterion).
    """

    detected: bool
    detect_index: int
    start_index: int
    metric: float


def detect_packet_autocorrelation(
    samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    threshold: float = 0.6,
    min_energy: float = 1e-9,
    required_run: int = 8,
) -> DetectionResult:
    """Schmidl & Cox delay-and-correlate packet detection.

    The short training field is periodic with period ``n_fft/4``; the
    detector computes the normalised autocorrelation at that lag and declares
    a packet once the metric stays above ``threshold`` for ``required_run``
    consecutive samples.  The declared index therefore *lags* the true packet
    start by a data-dependent amount — exactly the detection-delay
    variability that SourceSync must estimate and cancel — while
    ``start_index`` backs the declaration off to the beginning of the
    qualifying run, the detector's best coarse-timing estimate.

    Thin wrapper over :func:`detect_packet_autocorrelation_batch` with a
    batch of one, so scalar and ensemble detection are bit-identical.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    return detect_packet_autocorrelation_batch(
        samples[None, :], params, threshold, min_energy, required_run
    )[0]


def detect_packet_autocorrelation_batch(
    samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    threshold: float = 0.6,
    min_energy: float = 1e-9,
    required_run: int = 8,
) -> list[DetectionResult]:
    """Vectorised Schmidl & Cox detection over a ``(n_packets, n)`` ensemble.

    Every stage — the lag products, the sliding correlation/energy sums
    (one cumulative sum per quantity instead of per-sample convolutions),
    the threshold-run scan and the first-hit search — carries the packet
    batch axis, so an ensemble of streams is detected with a fixed number
    of numpy calls.  Rows may be zero-padded to a common length: padding
    carries no energy, so it can neither create a detection nor change a
    row's metric peak.

    Returns one :class:`DetectionResult` per row, in input order.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim != 2:
        raise ValueError("expected a (n_packets, n_samples) sample array")
    n_rows, n = samples.shape
    lag = params.n_fft // 4
    if n_rows == 0:
        return []
    if n < 2 * lag + required_run:
        return [DetectionResult(False, -1, -1, 0.0)] * n_rows

    # Autocorrelation and energy over a sliding window of `lag` samples;
    # the sliding sums are cumulative-sum differences along the time axis.
    prod = samples[:, lag:] * np.conj(samples[:, :-lag])
    energy = np.abs(samples[:, lag:]) ** 2
    corr = _sliding_sum(prod, lag)
    power = _sliding_sum(energy, lag).real
    metric = np.abs(corr) / np.maximum(power, min_energy)

    # Find, per row, the first index where `required_run` consecutive
    # samples exceed the threshold and the window actually contains energy:
    # a trailing window of `required_run` samples is all-valid exactly when
    # the running count of valid samples grows by `required_run` over it,
    # which turns the per-sample scan into one cumulative sum plus one
    # argmax per row.
    valid = (metric > threshold) & (power > min_energy * lag)
    results: list[DetectionResult] = []
    if valid.shape[1] >= required_run:
        counts = np.cumsum(valid, axis=1, dtype=np.int64)
        run_counts = counts[:, required_run - 1 :].copy()
        run_counts[:, 1:] -= counts[:, :-required_run]
        hits = run_counts == required_run
        any_hit = hits.any(axis=1)
        first_hit = np.argmax(hits, axis=1)
        peak_metric = metric.max(axis=1)
        for row in range(n_rows):
            if any_hit[row]:
                idx = int(first_hit[row]) + required_run - 1
                run_start = idx - required_run + 1
                detect = idx + lag  # align to the sample position in `samples`
                run_peak = float(metric[row, run_start : idx + 1].max())
                results.append(DetectionResult(True, detect, run_start, run_peak))
            else:
                results.append(DetectionResult(False, -1, -1, float(peak_metric[row])))
        return results
    peak = metric.max(axis=1) if metric.size else np.zeros(n_rows)
    return [DetectionResult(False, -1, -1, float(peak[row])) for row in range(n_rows)]


def _sliding_sum(values: np.ndarray, width: int) -> np.ndarray:
    """Sliding-window sums of ``width`` along the last axis (cumsum based)."""
    cum = np.cumsum(values, axis=-1)
    out = cum[..., width - 1 :].copy()
    out[..., 1:] -= cum[..., :-width]
    return out


def detect_packet_crosscorrelation(
    samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    threshold: float = 0.5,
) -> DetectionResult:
    """Matched-filter detection against the known short training field.

    Returns the index of the strongest normalised cross-correlation peak.
    This detector knows the transmitted waveform and is therefore much more
    precise than the autocorrelation detector; the library uses it as the
    reference ("ground truth") timing in tests and experiments.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    stf = short_training_field(params)
    if samples.size < stf.size:
        return DetectionResult(False, -1, -1, 0.0)
    # normalised cross correlation
    corr = np.correlate(samples, stf, mode="valid")
    stf_energy = np.sqrt(np.sum(np.abs(stf) ** 2))
    window = np.ones(stf.size)
    sig_energy = np.sqrt(np.convolve(np.abs(samples) ** 2, window, mode="valid"))
    metric = np.abs(corr) / np.maximum(stf_energy * sig_energy, 1e-12)
    peak = int(np.argmax(metric))
    if metric[peak] < threshold:
        return DetectionResult(False, -1, -1, float(metric[peak]))
    return DetectionResult(True, peak, peak, float(metric[peak]))


def fine_timing_ltf(
    samples: np.ndarray,
    coarse_start: int,
    params: OFDMParams = DEFAULT_PARAMS,
    search: int = 48,
) -> int:
    """Refine the frame-start estimate using the long training field.

    The coarse (STF-based) detector lags the true packet start by a
    data-dependent number of samples.  A standard receiver refines timing by
    cross-correlating against the known LTF symbol; the refined start is what
    an 802.11 receiver aligns its FFT windows to.  (SourceSync additionally
    estimates the *residual* offset from the channel phase slope, §4.2.)

    Parameters
    ----------
    samples:
        Received sample stream.
    coarse_start:
        Coarse packet-start estimate (e.g. the autocorrelation detection index).
    search:
        Half-width of the search window in samples.

    Returns
    -------
    int
        Refined estimate of the index of the first packet sample.
    """
    from repro.phy.preamble import ltf_symbol, short_training_field

    samples = np.asarray(samples, dtype=np.complex128)
    reference = ltf_symbol(params)
    stf_len = short_training_field(params).size
    ltf_offset = stf_len + 2 * params.cp_samples  # first LTF repetition
    nominal = coarse_start + ltf_offset
    lo = max(nominal - search, 0)
    hi = min(nominal + search, samples.size - reference.size - params.n_fft)
    if hi <= lo:
        return int(coarse_start)
    # Correlate both LTF repetitions against every candidate offset at once:
    # the candidate windows form a (n_candidates, len(reference)) view and
    # each correlation is one matrix-vector product.
    ref_conj = np.conj(reference)
    span = np.lib.stride_tricks.sliding_window_view(
        samples[lo : hi + params.n_fft + reference.size], reference.size
    )
    n_candidates = hi + 1 - lo
    first = np.abs(span[:n_candidates] @ ref_conj)
    second = np.abs(span[params.n_fft : params.n_fft + n_candidates] @ ref_conj)
    metric = first + second
    # argmax returns the first maximum, matching the scalar scan's strict
    # "improve only on >" update rule.
    best_idx = lo + int(np.argmax(metric))
    return int(best_idx - ltf_offset)


def estimate_coarse_cfo(
    samples: np.ndarray,
    start_index: int,
    params: OFDMParams = DEFAULT_PARAMS,
    n_periods: int = 8,
) -> float | np.ndarray:
    """Coarse carrier-frequency-offset estimate from STF periodicity.

    Returns the CFO in Hz.  The estimate uses the phase of the
    autocorrelation at the STF period, averaged over ``n_periods`` periods.
    ``samples`` may carry leading batch axes (frames already aligned so the
    STF begins at ``start_index`` in every row), in which case one CFO per
    packet is returned.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    lag = params.n_fft // 4
    span = lag * n_periods
    segment = samples[..., start_index : start_index + span + lag]
    if segment.shape[-1] < span + lag:
        raise ValueError("not enough samples after start_index for CFO estimation")
    prod = segment[..., lag:] * np.conj(segment[..., :-lag])
    angle = np.angle(prod.sum(axis=-1))
    cfo = angle / (2.0 * np.pi * lag * params.sample_period_s)
    return float(cfo) if np.ndim(cfo) == 0 else cfo


def estimate_coarse_cfo_rows(
    rows: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    mask: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    n_periods: int = 8,
) -> np.ndarray:
    """Coarse CFO of a zero-padded row ensemble with per-row start indices.

    The masked-batch counterpart of :func:`estimate_coarse_cfo` used by the
    lockstep joint-frame paths: rows where ``mask`` is False or where the
    estimation window would run past the row's true (unpadded) ``length``
    report 0.0 — mirroring the sequential callers' ``except ValueError``
    fallbacks — and all remaining rows are estimated in one stacked pass.
    """
    rows = np.asarray(rows, dtype=np.complex128)
    starts = np.asarray(starts, dtype=np.int64)
    lag = params.n_fft // 4
    span = lag * n_periods
    cfo = np.zeros(rows.shape[0], dtype=np.float64)
    usable = np.asarray(mask, dtype=bool) & (starts + span + lag <= np.asarray(lengths))
    idx = np.nonzero(usable)[0]
    if idx.size == 0:
        return cfo
    gather = starts[idx, None] + np.arange(span + lag)[None, :]
    segments = rows[idx[:, None], gather]
    prod = segments[:, lag:] * np.conj(segments[:, :-lag])
    angle = np.angle(prod.sum(axis=-1))
    cfo[idx] = angle / (2.0 * np.pi * lag * params.sample_period_s)
    return cfo
