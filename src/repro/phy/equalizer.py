"""Channel estimation, equalisation and residual phase tracking.

These are the standard single-sender OFDM receiver blocks that SourceSync's
joint receiver (:mod:`repro.core.receiver`) extends to multiple concurrent
senders.  The phase-tracking algorithm follows the pilot-based scheme of
Heiskala & Terry (reference [15] of the paper): every data symbol carries
four known pilots; the common phase rotation of those pilots relative to the
channel estimate is removed before demapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.ofdm import PILOT_VALUES, pilot_polarity
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import long_training_sequence_freq

__all__ = [
    "ChannelEstimate",
    "estimate_channel_ltf",
    "equalize_symbol",
    "track_pilot_phase",
    "estimate_noise_from_ltf",
]


@dataclass
class ChannelEstimate:
    """Per-subcarrier channel estimate with optional noise variance.

    Attributes
    ----------
    response:
        Complex channel gain per FFT bin (length ``n_fft``); bins that carry
        no energy hold 0.
    noise_var:
        Estimated noise variance (per-sample, complex), if available.
    """

    response: np.ndarray
    noise_var: float = 0.0

    def on_bins(self, bins: np.ndarray) -> np.ndarray:
        """Channel response restricted to the given FFT bins."""
        return self.response[np.asarray(bins, dtype=int)]

    def magnitude_db(self, bins: np.ndarray | None = None) -> np.ndarray:
        """Channel magnitude in dB on the given bins (default: all)."""
        resp = self.response if bins is None else self.on_bins(bins)
        return 20.0 * np.log10(np.maximum(np.abs(resp), 1e-12))

    def snr_per_subcarrier_db(self, bins: np.ndarray) -> np.ndarray:
        """Per-subcarrier SNR in dB given the stored noise variance."""
        noise = max(self.noise_var, 1e-15)
        power = np.abs(self.on_bins(bins)) ** 2
        return 10.0 * np.log10(np.maximum(power / noise, 1e-15))


def estimate_channel_ltf(
    received_ltf_freq: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
) -> ChannelEstimate:
    """Least-squares channel estimate from received LTF symbols.

    Parameters
    ----------
    received_ltf_freq:
        Frequency-domain received LTF symbols with shape ``(n_rep, n_fft)``
        or ``(n_fft,)``; repetitions are averaged.
    """
    received = np.atleast_2d(np.asarray(received_ltf_freq, dtype=np.complex128))
    if received.shape[1] != params.n_fft:
        raise ValueError("received LTF symbols must have n_fft bins")
    reference = long_training_sequence_freq(params)
    mean_rx = received.mean(axis=0)
    response = np.zeros(params.n_fft, dtype=np.complex128)
    occupied = params.occupied_bins()
    ref_occ = reference[occupied]
    response[occupied] = mean_rx[occupied] / ref_occ
    return ChannelEstimate(response=response)


def estimate_noise_from_ltf(
    received_ltf_freq: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float:
    """Estimate noise variance from the difference of repeated LTF symbols.

    Requires at least two LTF repetitions; the difference between repetitions
    cancels the (static) channel and leaves only noise.
    """
    received = np.atleast_2d(np.asarray(received_ltf_freq, dtype=np.complex128))
    if received.shape[0] < 2:
        raise ValueError("noise estimation requires at least two LTF repetitions")
    occupied = params.occupied_bins()
    diff = received[1:, occupied] - received[:-1, occupied]
    # Var(a-b) = 2 * noise_var per complex dimension
    return float(np.mean(np.abs(diff) ** 2) / 2.0)


def track_pilot_phase(
    received_symbol_freq: np.ndarray,
    channel: ChannelEstimate,
    symbol_index: int,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float:
    """Common phase error of one OFDM symbol estimated from its pilots.

    Returns the phase (radians) by which the received pilots are rotated
    relative to the channel estimate; the caller removes it by multiplying
    the data subcarriers by ``exp(-1j * phase)``.
    """
    received_symbol_freq = np.asarray(received_symbol_freq, dtype=np.complex128)
    pilot_bins = params.pilot_bins()
    expected = channel.on_bins(pilot_bins) * PILOT_VALUES * pilot_polarity(symbol_index)
    observed = received_symbol_freq[pilot_bins]
    correlation = np.sum(observed * np.conj(expected))
    if np.abs(correlation) < 1e-15:
        return 0.0
    return float(np.angle(correlation))


def equalize_symbol(
    received_symbol_freq: np.ndarray,
    channel: ChannelEstimate,
    symbol_index: int,
    params: OFDMParams = DEFAULT_PARAMS,
    track_phase: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Equalise one OFDM symbol and return per-subcarrier symbols and noise.

    Returns
    -------
    (symbols, noise_var)
        ``symbols`` are the equalised data-subcarrier values (length
        ``n_data_subcarriers``); ``noise_var`` is the post-equalisation noise
        variance per data subcarrier, suitable for soft demapping.
    """
    received_symbol_freq = np.asarray(received_symbol_freq, dtype=np.complex128)
    phase = track_pilot_phase(received_symbol_freq, channel, symbol_index, params) if track_phase else 0.0
    corrected = received_symbol_freq * np.exp(-1j * phase)
    data_bins = params.data_bins()
    h = channel.on_bins(data_bins)
    h_safe = np.where(np.abs(h) < 1e-9, 1e-9, h)
    symbols = corrected[data_bins] / h_safe
    noise = max(channel.noise_var, 1e-15)
    noise_per_sc = noise / np.maximum(np.abs(h_safe) ** 2, 1e-15)
    return symbols, noise_per_sc
