"""Channel estimation, equalisation and residual phase tracking.

These are the standard single-sender OFDM receiver blocks that SourceSync's
joint receiver (:mod:`repro.core.receiver`) extends to multiple concurrent
senders.  The phase-tracking algorithm follows the pilot-based scheme of
Heiskala & Terry (reference [15] of the paper): every data symbol carries
four known pilots; the common phase rotation of those pilots relative to the
channel estimate is removed before demapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.ofdm import PILOT_VALUES, pilot_polarities, pilot_polarity
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import long_training_sequence_freq

__all__ = [
    "ChannelEstimate",
    "estimate_channel_ltf",
    "equalize_symbol",
    "equalize_symbols_batch",
    "track_pilot_phase",
    "track_pilot_phases",
    "estimate_noise_from_ltf",
]


@dataclass
class ChannelEstimate:
    """Per-subcarrier channel estimate with optional noise variance.

    Attributes
    ----------
    response:
        Complex channel gain per FFT bin (length ``n_fft``); bins that carry
        no energy hold 0.
    noise_var:
        Estimated noise variance (per-sample, complex), if available.
    """

    response: np.ndarray
    noise_var: float = 0.0

    def on_bins(self, bins: np.ndarray) -> np.ndarray:
        """Channel response restricted to the given FFT bins."""
        return self.response[np.asarray(bins, dtype=int)]

    def magnitude_db(self, bins: np.ndarray | None = None) -> np.ndarray:
        """Channel magnitude in dB on the given bins (default: all)."""
        resp = self.response if bins is None else self.on_bins(bins)
        return 20.0 * np.log10(np.maximum(np.abs(resp), 1e-12))

    def snr_per_subcarrier_db(self, bins: np.ndarray) -> np.ndarray:
        """Per-subcarrier SNR in dB given the stored noise variance."""
        noise = max(self.noise_var, 1e-15)
        power = np.abs(self.on_bins(bins)) ** 2
        return 10.0 * np.log10(np.maximum(power / noise, 1e-15))


def estimate_channel_ltf(
    received_ltf_freq: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
) -> ChannelEstimate:
    """Least-squares channel estimate from received LTF symbols.

    Parameters
    ----------
    received_ltf_freq:
        Frequency-domain received LTF symbols with shape
        ``(..., n_rep, n_fft)`` or ``(n_fft,)``; repetitions are averaged.
        Leading axes, if any, index packets of an ensemble, in which case
        the returned estimate's ``response`` is ``(..., n_fft)``.
    """
    received = np.atleast_2d(np.asarray(received_ltf_freq, dtype=np.complex128))
    if received.shape[-1] != params.n_fft:
        raise ValueError("received LTF symbols must have n_fft bins")
    reference = long_training_sequence_freq(params)
    mean_rx = received.mean(axis=-2)
    response = np.zeros(mean_rx.shape, dtype=np.complex128)
    occupied = params.occupied_bins()
    ref_occ = reference[occupied]
    response[..., occupied] = mean_rx[..., occupied] / ref_occ
    return ChannelEstimate(response=response)


def estimate_noise_from_ltf(
    received_ltf_freq: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float | np.ndarray:
    """Estimate noise variance from the difference of repeated LTF symbols.

    Requires at least two LTF repetitions; the difference between repetitions
    cancels the (static) channel and leaves only noise.  Input shape is
    ``(..., n_rep, n_fft)``; with leading batch axes the result is one
    noise variance per packet (``(...,)`` array) instead of a float.
    """
    received = np.atleast_2d(np.asarray(received_ltf_freq, dtype=np.complex128))
    if received.shape[-2] < 2:
        raise ValueError("noise estimation requires at least two LTF repetitions")
    occupied = params.occupied_bins()
    diff = received[..., 1:, occupied] - received[..., :-1, occupied]
    # Var(a-b) = 2 * noise_var per complex dimension
    noise = np.mean(np.abs(diff) ** 2, axis=(-2, -1)) / 2.0
    return float(noise) if noise.ndim == 0 else noise


def track_pilot_phases(
    received_symbols_freq: np.ndarray,
    channel_response: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    start_symbol_index: int = 0,
) -> np.ndarray:
    """Common phase error per OFDM symbol for a block (or batch) of symbols.

    Parameters
    ----------
    received_symbols_freq:
        ``(..., n_symbols, n_fft)`` frequency-domain symbols; leading axes
        index packets of an ensemble.
    channel_response:
        ``(..., n_fft)`` channel estimate(s), broadcast against the batch
        axes of ``received_symbols_freq``.
    start_symbol_index:
        Index of the first symbol in the frame (pilot polarity phase).

    Returns
    -------
    numpy.ndarray
        ``(..., n_symbols)`` phases (radians).
    """
    received_symbols_freq = np.asarray(received_symbols_freq, dtype=np.complex128)
    channel_response = np.asarray(channel_response, dtype=np.complex128)
    pilot_bins = params.pilot_bins()
    n_symbols = received_symbols_freq.shape[-2]
    polarity = pilot_polarities(n_symbols, start_symbol_index)
    expected = (
        channel_response[..., None, :][..., pilot_bins] * PILOT_VALUES * polarity[:, None]
    )
    observed = received_symbols_freq[..., pilot_bins]
    correlation = np.sum(observed * np.conj(expected), axis=-1)
    return np.where(np.abs(correlation) < 1e-15, 0.0, np.angle(correlation))


def track_pilot_phase(
    received_symbol_freq: np.ndarray,
    channel: ChannelEstimate,
    symbol_index: int,
    params: OFDMParams = DEFAULT_PARAMS,
) -> float:
    """Common phase error of one OFDM symbol estimated from its pilots.

    Thin wrapper over :func:`track_pilot_phases` with a block of one.
    Returns the phase (radians) by which the received pilots are rotated
    relative to the channel estimate; the caller removes it by multiplying
    the data subcarriers by ``exp(-1j * phase)``.
    """
    received_symbol_freq = np.asarray(received_symbol_freq, dtype=np.complex128)
    phases = track_pilot_phases(
        received_symbol_freq[None, :], channel.response, params, start_symbol_index=symbol_index
    )
    return float(phases[0])


def equalize_symbols_batch(
    received_symbols_freq: np.ndarray,
    channel_response: np.ndarray,
    noise_var: float | np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    start_symbol_index: int = 0,
    track_phase: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Equalise a block (or batch) of OFDM symbols in one shot.

    Parameters
    ----------
    received_symbols_freq:
        ``(..., n_symbols, n_fft)`` frequency-domain symbols.
    channel_response:
        ``(..., n_fft)`` channel estimate(s), one per packet.
    noise_var:
        Scalar or ``(...,)`` per-packet noise variance.

    Returns
    -------
    (symbols, noise_per_sc)
        ``symbols`` are the equalised data-subcarrier values with shape
        ``(..., n_symbols, n_data_subcarriers)``; ``noise_per_sc`` is the
        post-equalisation noise variance per data subcarrier with shape
        ``(..., n_data_subcarriers)`` (it does not depend on the symbol),
        suitable for soft demapping.
    """
    received_symbols_freq = np.asarray(received_symbols_freq, dtype=np.complex128)
    channel_response = np.asarray(channel_response, dtype=np.complex128)
    if track_phase:
        phases = track_pilot_phases(
            received_symbols_freq, channel_response, params, start_symbol_index
        )
    else:
        phases = np.zeros(received_symbols_freq.shape[:-1], dtype=np.float64)
    corrected = received_symbols_freq * np.exp(-1j * phases)[..., None]
    data_bins = params.data_bins()
    h = channel_response[..., data_bins]
    h_safe = np.where(np.abs(h) < 1e-9, 1e-9, h)
    symbols = corrected[..., data_bins] / h_safe[..., None, :]
    noise = np.maximum(np.asarray(noise_var, dtype=np.float64), 1e-15)
    noise_per_sc = noise[..., None] / np.maximum(np.abs(h_safe) ** 2, 1e-15)
    return symbols, noise_per_sc


def equalize_symbol(
    received_symbol_freq: np.ndarray,
    channel: ChannelEstimate,
    symbol_index: int,
    params: OFDMParams = DEFAULT_PARAMS,
    track_phase: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Equalise one OFDM symbol and return per-subcarrier symbols and noise.

    Thin wrapper over :func:`equalize_symbols_batch` with a block of one.

    Returns
    -------
    (symbols, noise_var)
        ``symbols`` are the equalised data-subcarrier values (length
        ``n_data_subcarriers``); ``noise_var`` is the post-equalisation noise
        variance per data subcarrier, suitable for soft demapping.
    """
    received_symbol_freq = np.asarray(received_symbol_freq, dtype=np.complex128)
    symbols, noise_per_sc = equalize_symbols_batch(
        received_symbol_freq[None, :],
        channel.response,
        channel.noise_var,
        params,
        start_symbol_index=symbol_index,
        track_phase=track_phase,
    )
    return symbols[0], noise_per_sc
