"""Constellation mapping and soft demapping (BPSK, QPSK, 16-QAM, 64-QAM).

Mapping follows the 802.11a/g Gray-coded constellations with the standard
normalisation factors so every constellation has unit average energy.  The
demapper produces max-log LLRs (positive = bit 0 more likely), which is the
input convention of :class:`repro.phy.coding.ConvolutionalCode`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Modulation",
    "get_modulation",
    "modulate",
    "demodulate_soft",
    "demodulate_hard",
]


class Modulation:
    """A Gray-coded square QAM constellation.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"16QAM"``.
    bits_per_symbol:
        Number of coded bits per constellation point.
    """

    def __init__(self, name: str, bits_per_symbol: int):
        self.name = name
        self.bits_per_symbol = bits_per_symbol
        self._points, self._bit_table = self._build()

    # ------------------------------------------------------------------
    def _build(self) -> tuple[np.ndarray, np.ndarray]:
        m = self.bits_per_symbol
        n_points = 1 << m
        labels = np.arange(n_points, dtype=np.uint32)
        bits = ((labels[:, None] >> np.arange(m)[None, :]) & 1).astype(np.uint8)
        if m == 1:  # BPSK
            points = 1.0 - 2.0 * bits[:, 0]
            points = points.astype(np.complex128)
            return points, bits
        # Square QAM: split bits evenly between I and Q, Gray mapping per axis.
        half = m // 2
        if 2 * half != m:
            raise ValueError("square QAM requires an even number of bits per symbol")
        levels = 1 << half
        amplitudes = np.arange(levels) * 2.0 - (levels - 1)
        norm = np.sqrt((amplitudes**2).mean() * 2.0)
        gray_axis = self._gray_axis(half)
        i_bits = bits[:, :half]
        q_bits = bits[:, half:]
        i_level = gray_axis[self._bits_to_int(i_bits)]
        q_level = gray_axis[self._bits_to_int(q_bits)]
        points = (amplitudes[i_level] + 1j * amplitudes[q_level]) / norm
        return points, bits

    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> np.ndarray:
        weights = 1 << np.arange(bits.shape[1])
        return (bits * weights).sum(axis=1)

    @staticmethod
    def _gray_axis(n_bits: int) -> np.ndarray:
        """Map a Gray label to its amplitude level index."""
        levels = 1 << n_bits
        # level index -> gray code
        level = np.arange(levels)
        gray = level ^ (level >> 1)
        # invert: gray code -> level index
        inverse = np.empty(levels, dtype=int)
        inverse[gray] = level
        return inverse

    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Constellation points indexed by integer bit label."""
        return self._points

    @property
    def bit_table(self) -> np.ndarray:
        """Bit patterns (LSB first) for each constellation point."""
        return self._bit_table

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map coded bits to complex constellation symbols."""
        bits = np.asarray(bits, dtype=np.uint8)
        m = self.bits_per_symbol
        if bits.size % m != 0:
            raise ValueError(f"bit count {bits.size} is not a multiple of {m}")
        groups = bits.reshape(-1, m)
        labels = self._bits_to_int(groups)
        return self._points[labels]

    def demodulate_soft(self, symbols: np.ndarray, noise_var: float | np.ndarray = 1.0) -> np.ndarray:
        """Max-log LLRs for each coded bit (positive = bit 0 more likely).

        Parameters
        ----------
        symbols:
            Equalised complex symbols.
        noise_var:
            Effective noise variance after equalisation; either a scalar or
            one value per symbol.  Smaller noise variance yields larger
            LLR magnitudes.
        """
        symbols = np.asarray(symbols, dtype=np.complex128).ravel()
        noise = np.broadcast_to(np.asarray(noise_var, dtype=np.float64), symbols.shape)
        noise = np.maximum(noise, 1e-12)
        # distances: (n_symbols, n_points)
        dist = np.abs(symbols[:, None] - self._points[None, :]) ** 2
        m = self.bits_per_symbol
        llrs = np.empty((symbols.size, m), dtype=np.float64)
        for bit in range(m):
            mask0 = self._bit_table[:, bit] == 0
            d0 = dist[:, mask0].min(axis=1)
            d1 = dist[:, ~mask0].min(axis=1)
            llrs[:, bit] = (d1 - d0) / noise
        return llrs.ravel()

    def demodulate_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point hard decisions returning coded bits."""
        symbols = np.asarray(symbols, dtype=np.complex128).ravel()
        dist = np.abs(symbols[:, None] - self._points[None, :]) ** 2
        labels = dist.argmin(axis=1)
        return self._bit_table[labels].ravel().astype(np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Modulation({self.name}, {self.bits_per_symbol} bits/symbol)"


_MODULATIONS = {
    "BPSK": Modulation("BPSK", 1),
    "QPSK": Modulation("QPSK", 2),
    "16QAM": Modulation("16QAM", 4),
    "64QAM": Modulation("64QAM", 6),
}


def get_modulation(name: str) -> Modulation:
    """Look up a modulation by name (case-insensitive)."""
    key = name.upper().replace("-", "")
    try:
        return _MODULATIONS[key]
    except KeyError as exc:
        raise ValueError(f"unknown modulation {name!r}") from exc


def modulate(bits: np.ndarray, name: str) -> np.ndarray:
    """Convenience wrapper: map bits with the named modulation."""
    return get_modulation(name).modulate(bits)


def demodulate_soft(symbols: np.ndarray, name: str, noise_var: float | np.ndarray = 1.0) -> np.ndarray:
    """Convenience wrapper: soft-demap symbols with the named modulation."""
    return get_modulation(name).demodulate_soft(symbols, noise_var)


def demodulate_hard(symbols: np.ndarray, name: str) -> np.ndarray:
    """Convenience wrapper: hard-demap symbols with the named modulation."""
    return get_modulation(name).demodulate_hard(symbols)
