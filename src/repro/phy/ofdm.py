"""OFDM symbol assembly and disassembly.

The functions here convert between frequency-domain subcarrier values and
time-domain baseband samples: mapping data and pilot symbols onto the
occupied subcarriers, taking the IFFT, prepending the cyclic prefix, and the
inverse operations at the receiver.  They are shared by the standard 802.11
chain (:mod:`repro.phy.transmitter`, :mod:`repro.phy.receiver`) and by the
SourceSync joint-frame machinery (:mod:`repro.core`).

Batch API
---------
Every block function operates on arrays with arbitrary leading batch axes
so a whole packet ensemble is one numpy call:

* :func:`assemble_symbols` maps ``(..., n_symbols, n_data_subcarriers)``
  data onto ``(..., n_symbols, n_fft)`` frequency-domain vectors with a
  single scatter per bin set (no per-symbol Python loop);
* :func:`symbols_to_samples` runs one batched ``np.fft.ifft`` plus a
  vectorised cyclic-prefix insertion over all packets and symbols;
* :func:`extract_symbols` reshapes ``(..., n_samples)`` into FFT windows and
  runs one batched ``np.fft.fft`` with vectorised CP removal.

Single-symbol helpers (:func:`assemble_symbol`, :func:`extract_symbol`) are
thin wrappers over the batched implementations, which is what makes the
batched and per-packet pipelines bit-identical (see
``tests/phy/test_batch_pipeline.py``).
"""

from __future__ import annotations

import numpy as np

from repro.phy.params import OFDMParams, DEFAULT_PARAMS

__all__ = [
    "pilot_polarity",
    "pilot_polarities",
    "PILOT_VALUES",
    "assemble_symbol",
    "assemble_symbols",
    "extract_symbol",
    "extract_symbols",
    "add_cyclic_prefix",
    "remove_cyclic_prefix",
    "symbols_to_samples",
    "samples_to_symbols",
]

#: Base pilot values on the four 802.11 pilot subcarriers (-21, -7, 7, 21).
PILOT_VALUES = np.array([1.0, 1.0, 1.0, -1.0], dtype=np.complex128)

# 127-element pilot polarity sequence of 802.11a (17.3.5.10).
_POLARITY = np.array(
    [1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1, -1, -1, 1, 1, -1, 1, 1, -1,
     1, 1, 1, 1, 1, 1, -1, 1, 1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1, -1,
     1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, -1,
     -1, -1, 1, 1, -1, -1, -1, -1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1, -1,
     -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1, -1, 1, -1, -1, -1, 1, 1, 1, -1,
     -1, -1, -1, -1, -1, -1],
    dtype=np.float64,
)


def pilot_polarity(symbol_index: int) -> float:
    """Polarity (+1/-1) applied to all pilots of the given OFDM symbol."""
    return float(_POLARITY[symbol_index % _POLARITY.size])


def pilot_polarities(n_symbols: int, start_symbol_index: int = 0) -> np.ndarray:
    """Pilot polarities for a block of consecutive OFDM symbols."""
    indices = (start_symbol_index + np.arange(n_symbols)) % _POLARITY.size
    return _POLARITY[indices]


def assemble_symbols(
    data_symbols: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    start_symbol_index: int = 0,
    pilot_scale: float | np.ndarray = 1.0,
    pilot_values: np.ndarray | None = None,
) -> np.ndarray:
    """Build frequency-domain vectors for a block (or batch) of OFDM symbols.

    ``data_symbols`` must have shape ``(..., n_symbols, n_data_subcarriers)``
    where the leading axes, if any, index packets of an ensemble.
    ``pilot_scale`` may be per-symbol (broadcastable to ``(..., n_symbols)``).
    ``pilot_values`` overrides the standard pilots (SourceSync's shared-pilot
    scheme, §5).
    """
    data_symbols = np.asarray(data_symbols, dtype=np.complex128)
    if data_symbols.ndim < 2 or data_symbols.shape[-1] != params.n_data_subcarriers:
        raise ValueError("data_symbols must have shape (..., n_symbols, n_data_subcarriers)")
    n_symbols = data_symbols.shape[-2]
    scales = np.broadcast_to(
        np.asarray(pilot_scale, dtype=np.float64), data_symbols.shape[:-1]
    )
    pilots = PILOT_VALUES if pilot_values is None else np.asarray(pilot_values, np.complex128)
    if pilots.size != params.n_pilot_subcarriers:
        raise ValueError("pilot_values length mismatch")
    out = np.zeros(data_symbols.shape[:-1] + (params.n_fft,), dtype=np.complex128)
    out[..., params.data_bins()] = data_symbols
    polarity = pilot_polarities(n_symbols, start_symbol_index)
    out[..., params.pilot_bins()] = (
        pilots * polarity[:, None] * scales[..., :, None]
    )
    return out


def assemble_symbol(
    data_symbols: np.ndarray,
    symbol_index: int = 0,
    params: OFDMParams = DEFAULT_PARAMS,
    pilot_values: np.ndarray | None = None,
    pilot_scale: float = 1.0,
) -> np.ndarray:
    """Build the frequency-domain representation of one OFDM symbol.

    Thin wrapper over :func:`assemble_symbols` with a block of one.

    Parameters
    ----------
    data_symbols:
        Exactly ``params.n_data_subcarriers`` complex data symbols.
    symbol_index:
        Index of the symbol in the frame, used to select pilot polarity.
    params:
        OFDM numerology.
    pilot_values:
        Override for the pilot values (used by SourceSync's shared-pilot
        scheme, §5); defaults to the standard 802.11 pilots.
    pilot_scale:
        Scaling applied to pilot values (0 silences the pilots, used when a
        sender does not own the pilots of this symbol).

    Returns
    -------
    numpy.ndarray
        Length ``params.n_fft`` frequency-domain vector (FFT bin order).
    """
    data_symbols = np.asarray(data_symbols, dtype=np.complex128)
    if data_symbols.size != params.n_data_subcarriers:
        raise ValueError(
            f"expected {params.n_data_subcarriers} data symbols, got {data_symbols.size}"
        )
    return assemble_symbols(
        data_symbols.reshape(1, -1),
        params=params,
        start_symbol_index=symbol_index,
        pilot_scale=pilot_scale,
        pilot_values=pilot_values,
    )[0]


def add_cyclic_prefix(time_symbol: np.ndarray, params: OFDMParams = DEFAULT_PARAMS) -> np.ndarray:
    """Prepend the cyclic prefix to time-domain OFDM symbol(s) (last axis)."""
    time_symbol = np.asarray(time_symbol, dtype=np.complex128)
    if time_symbol.shape[-1] != params.n_fft:
        raise ValueError(f"time symbol must have {params.n_fft} samples")
    cp = time_symbol[..., -params.cp_samples :] if params.cp_samples else time_symbol[..., :0]
    return np.concatenate([cp, time_symbol], axis=-1)


def remove_cyclic_prefix(
    samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    fft_offset: int = 0,
) -> np.ndarray:
    """Strip the cyclic prefix from one received OFDM symbol.

    Parameters
    ----------
    samples:
        Exactly ``params.symbol_samples`` received samples.
    fft_offset:
        Where to place the FFT window inside the CP slack: 0 places it right
        after the CP; negative values move it earlier into the CP (the valid
        region illustrated in Fig. 3 of the paper).
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size != params.symbol_samples:
        raise ValueError(f"expected {params.symbol_samples} samples, got {samples.size}")
    start = params.cp_samples + fft_offset
    if start < 0 or start + params.n_fft > samples.size:
        raise ValueError("fft_offset places the FFT window outside the symbol")
    return samples[start : start + params.n_fft]


def symbols_to_samples(
    freq_symbols: np.ndarray, params: OFDMParams = DEFAULT_PARAMS
) -> np.ndarray:
    """IFFT + CP for a block (or batch) of frequency-domain OFDM symbols.

    ``freq_symbols`` has shape ``(..., n_symbols, n_fft)``; the result has
    shape ``(..., n_symbols * symbol_samples)`` — a flat sample stream per
    packet.  A single batched ``np.fft.ifft`` covers every symbol of every
    packet.
    """
    freq_symbols = np.atleast_2d(np.asarray(freq_symbols, dtype=np.complex128))
    if freq_symbols.shape[-1] != params.n_fft:
        raise ValueError("frequency symbols must have n_fft entries")
    time = np.fft.ifft(freq_symbols, axis=-1) * np.sqrt(params.n_fft)
    with_cp = add_cyclic_prefix(time, params)
    return with_cp.reshape(freq_symbols.shape[:-2] + (-1,))


def extract_symbol(
    samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    fft_offset: int = 0,
) -> np.ndarray:
    """FFT of one received OFDM symbol (CP removed), returning all bins."""
    body = remove_cyclic_prefix(samples, params, fft_offset)
    return np.fft.fft(body) / np.sqrt(params.n_fft)


def extract_symbols(
    samples: np.ndarray,
    n_symbols: int,
    params: OFDMParams = DEFAULT_PARAMS,
    fft_offset: int = 0,
) -> np.ndarray:
    """FFT of a block (or batch) of received OFDM symbols.

    ``samples`` has shape ``(..., n_samples)``; the leading axes index
    packets of an ensemble.  Returns ``(..., n_symbols, n_fft)``.  The
    per-symbol loop of the scalar implementation is replaced by a reshape
    into FFT windows plus a single batched ``np.fft.fft``.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    needed = n_symbols * params.symbol_samples
    if samples.shape[-1] < needed:
        raise ValueError(
            f"need {needed} samples for {n_symbols} symbols, got {samples.shape[-1]}"
        )
    start = params.cp_samples + fft_offset
    if start < 0 or start + params.n_fft > params.symbol_samples:
        raise ValueError("fft_offset places the FFT window outside the symbol")
    blocks = samples[..., :needed].reshape(
        samples.shape[:-1] + (n_symbols, params.symbol_samples)
    )
    body = blocks[..., start : start + params.n_fft]
    return np.fft.fft(body, axis=-1) / np.sqrt(params.n_fft)


def samples_to_symbols(
    samples: np.ndarray,
    params: OFDMParams = DEFAULT_PARAMS,
    fft_offset: int = 0,
) -> np.ndarray:
    """FFT of as many whole OFDM symbols as fit in ``samples`` (last axis)."""
    samples = np.asarray(samples, dtype=np.complex128)
    n_symbols = samples.shape[-1] // params.symbol_samples
    return extract_symbols(samples, n_symbols, params, fft_offset)
