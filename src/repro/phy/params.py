"""OFDM physical-layer parameters.

This module defines the numerology of the simulated radio.  The defaults
mirror an 802.11a/g 20 MHz channel (64-point FFT, 48 data subcarriers,
4 pilots, 0.8 us cyclic prefix), which is also the configuration the
SourceSync paper uses on the WiGLAN platform (§8a: radio configured to
20 MHz of bandwidth).

Everything downstream of this module (transmitter, receiver, channel,
SourceSync core) reads its dimensions from an :class:`OFDMParams` instance,
so alternative numerologies (e.g. a longer cyclic prefix negotiated by the
multi-receiver synchronizer, §4.6) are expressed by deriving a new instance
via :meth:`OFDMParams.with_cp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

import numpy as np


def _frozen(values, dtype=int) -> np.ndarray:
    """Read-only array for cached subcarrier maps (shared across callers)."""
    out = np.asarray(values, dtype=dtype)
    out.setflags(write=False)
    return out

__all__ = [
    "OFDMParams",
    "DEFAULT_PARAMS",
    "SPEED_OF_LIGHT",
]

#: Propagation speed used to convert distances to delays (m/s).
SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class OFDMParams:
    """Numerology of the OFDM physical layer.

    Parameters
    ----------
    bandwidth_hz:
        Sampling rate / channel bandwidth in Hz.  20 MHz for 802.11a/g.
    n_fft:
        FFT size (number of subcarriers including unused guards).
    n_data_subcarriers:
        Number of subcarriers carrying data symbols.
    n_pilot_subcarriers:
        Number of subcarriers carrying known pilot symbols.
    cp_samples:
        Cyclic-prefix length in samples.  802.11a/g uses 16 (0.8 us).
    pilot_indices:
        Logical subcarrier indices (0..n_fft-1, DC at n_fft//2 removed)
        reserved for pilots.
    """

    bandwidth_hz: float = 20e6
    n_fft: int = 64
    n_data_subcarriers: int = 48
    n_pilot_subcarriers: int = 4
    cp_samples: int = 16
    guard_low: int = 6
    guard_high: int = 5
    pilot_offsets: tuple[int, ...] = (-21, -7, 7, 21)

    def __post_init__(self) -> None:
        if self.n_fft <= 0:
            raise ValueError("n_fft must be positive")
        if self.cp_samples < 0:
            raise ValueError("cp_samples must be non-negative")
        if self.cp_samples >= self.n_fft:
            raise ValueError("cp_samples must be smaller than n_fft")
        occupied = self.n_data_subcarriers + self.n_pilot_subcarriers
        usable = self.n_fft - self.guard_low - self.guard_high - 1  # -1 for DC
        if occupied > usable:
            raise ValueError(
                f"{occupied} occupied subcarriers do not fit in "
                f"{usable} usable subcarriers"
            )
        if len(self.pilot_offsets) != self.n_pilot_subcarriers:
            raise ValueError("pilot_offsets length must equal n_pilot_subcarriers")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sample_period_s(self) -> float:
        """Duration of one baseband sample in seconds."""
        return 1.0 / self.bandwidth_hz

    @property
    def sample_period_ns(self) -> float:
        """Duration of one baseband sample in nanoseconds."""
        return self.sample_period_s * 1e9

    @property
    def symbol_samples(self) -> int:
        """Samples per OFDM symbol including the cyclic prefix."""
        return self.n_fft + self.cp_samples

    @property
    def symbol_duration_s(self) -> float:
        """Duration of one OFDM symbol including CP, in seconds."""
        return self.symbol_samples * self.sample_period_s

    @property
    def cp_duration_s(self) -> float:
        """Duration of the cyclic prefix in seconds."""
        return self.cp_samples * self.sample_period_s

    @property
    def cp_duration_ns(self) -> float:
        """Duration of the cyclic prefix in nanoseconds."""
        return self.cp_duration_s * 1e9

    @property
    def subcarrier_spacing_hz(self) -> float:
        """Frequency spacing between adjacent subcarriers in Hz."""
        return self.bandwidth_hz / self.n_fft

    @property
    def n_occupied_subcarriers(self) -> int:
        """Total number of occupied (data + pilot) subcarriers."""
        return self.n_data_subcarriers + self.n_pilot_subcarriers

    # ------------------------------------------------------------------
    # Subcarrier maps
    # ------------------------------------------------------------------
    def occupied_offsets(self) -> np.ndarray:
        """Signed subcarrier offsets (excluding DC) that carry energy.

        Offsets are in the range ``[-n_fft/2 + guard_low, n_fft/2 - guard_high]``
        excluding 0 (the DC subcarrier).  The returned array is cached per
        numerology and read-only (these maps sit on the per-symbol hot path).
        """
        return _occupied_offsets(self)

    def pilot_subcarrier_offsets(self) -> np.ndarray:
        """Signed offsets of pilot subcarriers."""
        return _frozen(self.pilot_offsets)

    def data_subcarrier_offsets(self) -> np.ndarray:
        """Signed offsets of data subcarriers (occupied minus pilots)."""
        return _data_subcarrier_offsets(self)

    def offset_to_fft_bin(self, offsets: np.ndarray) -> np.ndarray:
        """Map signed subcarrier offsets to FFT bin indices (0..n_fft-1)."""
        offsets = np.asarray(offsets, dtype=int)
        return np.mod(offsets, self.n_fft)

    def occupied_bins(self) -> np.ndarray:
        """FFT bin indices of all occupied subcarriers (cached, read-only)."""
        return _occupied_bins(self)

    def pilot_bins(self) -> np.ndarray:
        """FFT bin indices of pilot subcarriers (cached, read-only)."""
        return _pilot_bins(self)

    def data_bins(self) -> np.ndarray:
        """FFT bin indices of data subcarriers (cached, read-only)."""
        return _data_bins(self)

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_cp(self, cp_samples: int) -> "OFDMParams":
        """Return a copy of this numerology with a different cyclic prefix.

        SourceSync's multi-receiver synchronizer (§4.6) increases the CP by
        the maximum residual misalignment; this helper produces the modified
        numerology used for such joint frames.
        """
        return replace(self, cp_samples=int(cp_samples))

    def samples_to_ns(self, samples: float) -> float:
        """Convert a duration expressed in samples to nanoseconds."""
        return float(samples) * self.sample_period_ns

    def ns_to_samples(self, ns: float) -> float:
        """Convert a duration in nanoseconds to (fractional) samples."""
        return float(ns) / self.sample_period_ns


@lru_cache(maxsize=None)
def _occupied_offsets(params: OFDMParams) -> np.ndarray:
    low = -(params.n_fft // 2) + params.guard_low
    high = (params.n_fft // 2) - params.guard_high
    offsets = [k for k in range(low, high + 1) if k != 0]
    # The occupied set is the centre-most `n_occupied_subcarriers` offsets.
    offsets = sorted(offsets, key=lambda k: (abs(k), k))
    return _frozen(sorted(offsets[: params.n_occupied_subcarriers]))


@lru_cache(maxsize=None)
def _data_subcarrier_offsets(params: OFDMParams) -> np.ndarray:
    pilots = set(int(p) for p in params.pilot_offsets)
    return _frozen([k for k in _occupied_offsets(params) if int(k) not in pilots])


@lru_cache(maxsize=None)
def _occupied_bins(params: OFDMParams) -> np.ndarray:
    return _frozen(params.offset_to_fft_bin(_occupied_offsets(params)))


@lru_cache(maxsize=None)
def _pilot_bins(params: OFDMParams) -> np.ndarray:
    return _frozen(params.offset_to_fft_bin(np.asarray(params.pilot_offsets, dtype=int)))


@lru_cache(maxsize=None)
def _data_bins(params: OFDMParams) -> np.ndarray:
    return _frozen(params.offset_to_fft_bin(_data_subcarrier_offsets(params)))


#: Default numerology used throughout the library and tests.
DEFAULT_PARAMS = OFDMParams()
