"""802.11a/g preamble generation: short and long training fields.

The short training field (STF) is used for packet detection and coarse
frequency-offset estimation; the long training field (LTF) provides channel
estimation and fine timing.  SourceSync reuses the standard preamble for the
lead sender's synchronization header and transmits additional LTF-style
channel-estimation symbols for every co-sender (§4.4), so the LTF generator
here is also the source of those per-sender training symbols.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.phy.params import OFDMParams, DEFAULT_PARAMS


def _frozen(values: np.ndarray) -> np.ndarray:
    """Mark a cached training waveform read-only before sharing it."""
    values.setflags(write=False)
    return values

__all__ = [
    "short_training_field",
    "long_training_sequence_freq",
    "long_training_field",
    "ltf_symbol",
    "preamble",
    "PREAMBLE_STF_SAMPLES",
    "PREAMBLE_LTF_SAMPLES",
]

# Frequency-domain short training sequence (802.11a 17.3.3), defined on
# subcarriers -26..26; non-zero every 4th subcarrier.
_STF_FREQ_OFFSETS = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j, -4: 1 + 1j,
    4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j, 20: 1 + 1j, 24: 1 + 1j,
}
_STF_SCALE = np.sqrt(13.0 / 6.0)

# Frequency-domain long training sequence (802.11a 17.3.3) on -26..26.
_LTF_SEQ = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
     0,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1],
    dtype=np.float64,
)
# offsets -26..26 inclusive
_LTF_OFFSETS = np.arange(-26, 27)


@lru_cache(maxsize=None)
def short_training_field(params: OFDMParams = DEFAULT_PARAMS, repetitions: int = 10) -> np.ndarray:
    """Time-domain short training field.

    The STF consists of ``repetitions`` copies of a 16-sample (for a 64-point
    FFT) periodic sequence; 802.11a uses 10 repetitions (8 us).  Cached per
    numerology (training waveforms sit on every probe/header hot path) and
    returned read-only.
    """
    freq = np.zeros(params.n_fft, dtype=np.complex128)
    for offset, value in _STF_FREQ_OFFSETS.items():
        freq[offset % params.n_fft] = value * _STF_SCALE
    time = np.fft.ifft(freq) * np.sqrt(params.n_fft)
    period = params.n_fft // 4
    base = time[:period]
    return _frozen(np.tile(base, repetitions))


@lru_cache(maxsize=None)
def long_training_sequence_freq(params: OFDMParams = DEFAULT_PARAMS) -> np.ndarray:
    """Frequency-domain long training sequence mapped to FFT bins.

    The returned vector has length ``n_fft`` with +-1 on the occupied
    subcarriers (and 0 elsewhere), so it can be used both for generating LTF
    symbols and for least-squares channel estimation at the receiver.
    """
    freq = np.zeros(params.n_fft, dtype=np.complex128)
    if params.n_fft == 64 and params.n_occupied_subcarriers == 52:
        for offset, value in zip(_LTF_OFFSETS, _LTF_SEQ):
            if offset == 0:
                continue
            freq[offset % params.n_fft] = value
        return _frozen(freq)
    # Generic numerology: use a pseudo-random BPSK sequence on the occupied
    # subcarriers, deterministic so transmitter and receiver agree.
    rng = np.random.default_rng(0x1F7)
    bins = params.occupied_bins()
    freq[bins] = 1.0 - 2.0 * rng.integers(0, 2, size=bins.size)
    return _frozen(freq)


@lru_cache(maxsize=None)
def ltf_symbol(params: OFDMParams = DEFAULT_PARAMS) -> np.ndarray:
    """One time-domain LTF symbol (64 samples for the default numerology)."""
    freq = long_training_sequence_freq(params)
    return _frozen(np.fft.ifft(freq) * np.sqrt(params.n_fft))


@lru_cache(maxsize=None)
def long_training_field(params: OFDMParams = DEFAULT_PARAMS, repetitions: int = 2) -> np.ndarray:
    """Time-domain long training field: a double-length CP plus repetitions."""
    symbol = ltf_symbol(params)
    cp = symbol[-2 * params.cp_samples :] if params.cp_samples else symbol[:0]
    return _frozen(np.concatenate([cp] + [symbol] * repetitions))


@lru_cache(maxsize=None)
def preamble(params: OFDMParams = DEFAULT_PARAMS) -> np.ndarray:
    """Full 802.11-style preamble: STF followed by LTF (cached, read-only)."""
    return _frozen(
        np.concatenate([short_training_field(params), long_training_field(params)])
    )


def PREAMBLE_STF_SAMPLES(params: OFDMParams = DEFAULT_PARAMS) -> int:
    """Number of samples in the short training field."""
    return short_training_field(params).size


def PREAMBLE_LTF_SAMPLES(params: OFDMParams = DEFAULT_PARAMS) -> int:
    """Number of samples in the long training field."""
    return long_training_field(params).size
