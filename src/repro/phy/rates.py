"""802.11a/g transmission rate table.

Each :class:`Rate` bundles a modulation order and a convolutional code rate,
mirroring the eight mandatory/optional rates of 802.11a/g at 20 MHz.  The
SourceSync evaluation runs the mesh experiments at 6 and 12 Mbps (§8.4) and
lets SampleRate pick among all rates for the last-hop experiments (§8.3), so
the full table is needed.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from fractions import Fraction

__all__ = ["Rate", "RATE_TABLE", "rate_for_mbps", "rates_sorted", "min_snr_db"]


@dataclass(frozen=True)
class Rate:
    """A PHY transmission rate (modulation + coding)."""

    mbps: float
    modulation: str
    bits_per_symbol: int
    code_rate: Fraction
    #: Approximate SNR (dB) required for a ~10% PER on an AWGN-ish channel.
    #: Values follow the commonly used 802.11a receiver sensitivity deltas.
    min_snr_db: float

    @property
    def coded_bits_per_subcarrier(self) -> int:
        """Coded bits carried by one data subcarrier in one OFDM symbol."""
        return self.bits_per_symbol

    @functools.lru_cache(maxsize=64)
    def data_bits_per_ofdm_symbol(self, n_data_subcarriers: int = 48) -> float:
        """Information (pre-FEC) bits carried by one OFDM symbol.

        Cached: the ``Fraction`` arithmetic is surprisingly hot when MAC
        airtime models call this per packet attempt.
        """
        coded = self.bits_per_symbol * n_data_subcarriers
        return float(coded * self.code_rate)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mbps:g} Mbps ({self.modulation}, r={self.code_rate})"


#: The 802.11a/g rate set.
RATE_TABLE: tuple[Rate, ...] = (
    Rate(6.0, "BPSK", 1, Fraction(1, 2), 5.0),
    Rate(9.0, "BPSK", 1, Fraction(3, 4), 6.0),
    Rate(12.0, "QPSK", 2, Fraction(1, 2), 8.0),
    Rate(18.0, "QPSK", 2, Fraction(3, 4), 10.0),
    Rate(24.0, "16QAM", 4, Fraction(1, 2), 13.0),
    Rate(36.0, "16QAM", 4, Fraction(3, 4), 17.0),
    Rate(48.0, "64QAM", 6, Fraction(2, 3), 21.0),
    Rate(54.0, "64QAM", 6, Fraction(3, 4), 23.0),
)

_BY_MBPS = {rate.mbps: rate for rate in RATE_TABLE}


def rate_for_mbps(mbps: float) -> Rate:
    """Look up the :class:`Rate` for a nominal bit rate in Mbps."""
    try:
        return _BY_MBPS[float(mbps)]
    except KeyError as exc:
        valid = ", ".join(f"{r.mbps:g}" for r in RATE_TABLE)
        raise ValueError(f"unknown rate {mbps} Mbps; valid rates: {valid}") from exc


_RATES_SORTED: tuple[Rate, ...] = tuple(sorted(RATE_TABLE, key=lambda r: r.mbps))


def rates_sorted() -> list[Rate]:
    """All rates sorted from slowest to fastest."""
    return list(_RATES_SORTED)


def min_snr_db(mbps: float) -> float:
    """Approximate SNR (dB) required to sustain the given rate."""
    return rate_for_mbps(mbps).min_snr_db


def best_rate_for_snr(snr_db: float, margin_db: float = 0.0) -> Rate | None:
    """Highest rate whose SNR requirement is met with the given margin.

    Returns ``None`` when even the lowest rate is not supported, which the
    MAC layer interprets as an undecodable link.
    """
    best: Rate | None = None
    for rate in rates_sorted():
        if snr_db >= rate.min_snr_db + margin_db:
            best = rate
    return best
