"""Standard single-sender 802.11-style OFDM receive chain.

The chain mirrors :mod:`repro.phy.transmitter`: packet detection, coarse CFO
estimation and correction, LTF channel and noise estimation, per-symbol FFT,
pilot phase tracking, equalisation, soft demapping, deinterleaving,
depuncturing, Viterbi decoding, descrambling and CRC check.

Batch API
---------
:meth:`Receiver.receive_batch` decodes a ``(n_packets, n_samples)`` ensemble
of frames with a batch axis on every stage after detection: one gather for
frame alignment, one vectorised CFO estimate + correction, one batched LTF
FFT and channel/noise estimate, one batched data-symbol FFT, vectorised
pilot tracking and equalisation, one flattened soft demap, one batched
deinterleave/depuncture and a single block-parallel Viterbi call
(:meth:`repro.phy.coding.convolutional.ConvolutionalCode.decode_batch`).
Packet detection itself remains per-packet (it is data-dependent), and the
final CRC check is a cheap per-packet loop.

:meth:`Receiver.receive` is a thin wrapper over :meth:`receive_batch` with a
batch of one; every batched stage is elementwise or a per-row reduction, so
batched and per-packet processing produce bit-identical decoded bits,
payloads and CRC outcomes under the same inputs (tested in
``tests/phy/test_batch_pipeline.py``).  Floating-point *intermediates*
(LLRs, equalised symbols) agree to within a few ulp rather than exactly:
numpy's complex-multiply kernels select SIMD/FMA code paths based on heap
alignment, which can round the last bit differently between separately
allocated arrays.  This never affects the decoded bit stream in practice
and is asserted to ``rtol=1e-10`` in the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy import bits as bitutils
from repro.phy.coding.convolutional import get_code
from repro.phy.coding.interleaver import interleaver_permutation
from repro.phy.coding.puncturing import depuncture
from repro.phy.detection import (
    DetectionResult,
    detect_packet_autocorrelation,
    detect_packet_autocorrelation_batch,
    detect_packet_crosscorrelation,
    estimate_coarse_cfo,
    fine_timing_ltf,
)
from repro.phy.equalizer import (
    ChannelEstimate,
    equalize_symbols_batch,
    estimate_channel_ltf,
    estimate_noise_from_ltf,
)
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import extract_symbols
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import (
    long_training_field,
    short_training_field,
)
from repro.phy.transmitter import FrameConfig

__all__ = ["ReceiveResult", "Receiver", "apply_cfo_correction"]

_CODE = get_code()

#: Cap on the number of (symbol, subcarrier) points soft-demapped per numpy
#: call; keeps the distance matrix of large 64-QAM ensembles in cache-sized
#: chunks without changing results (the demapper is purely elementwise).
_DEMAP_CHUNK_SYMBOLS = 1 << 20


@dataclass
class ReceiveResult:
    """Outcome of attempting to decode one frame."""

    detected: bool
    crc_ok: bool
    payload: bytes
    detection: DetectionResult | None = None
    channel: ChannelEstimate | None = None
    cfo_hz: float = 0.0
    snr_db: float = float("nan")
    equalized_symbols: np.ndarray | None = field(default=None, repr=False)

    @property
    def success(self) -> bool:
        """True when the frame was detected and passed its CRC."""
        return self.detected and self.crc_ok


def apply_cfo_correction(samples: np.ndarray, cfo_hz: float, sample_period_s: float) -> np.ndarray:
    """Remove a carrier frequency offset from a sample stream."""
    samples = np.asarray(samples, dtype=np.complex128)
    n = np.arange(samples.size)
    return samples * np.exp(-2j * np.pi * cfo_hz * n * sample_period_s)


class Receiver:
    """Standard OFDM receiver for single-sender frames."""

    def __init__(
        self,
        params: OFDMParams = DEFAULT_PARAMS,
        use_matched_filter_detection: bool = False,
        correct_cfo: bool = True,
    ):
        self.params = params
        self.use_matched_filter_detection = use_matched_filter_detection
        self.correct_cfo = correct_cfo

    # ------------------------------------------------------------------
    def detect(self, samples: np.ndarray) -> DetectionResult:
        """Run packet detection over a sample stream."""
        if self.use_matched_filter_detection:
            return detect_packet_crosscorrelation(samples, self.params)
        return detect_packet_autocorrelation(samples, self.params)

    # ------------------------------------------------------------------
    def receive(
        self, samples: np.ndarray, config: FrameConfig, start_index: int | None = None
    ) -> ReceiveResult:
        """Attempt to decode a frame from the received samples.

        Thin wrapper over :meth:`receive_batch` with a batch of one.

        Parameters
        ----------
        samples:
            Received baseband samples (channel output plus noise).
        config:
            Frame configuration (rate, payload length), normally known from
            the PLCP SIGNAL field; carried out-of-band in the simulation.
        start_index:
            Optional externally supplied frame start (e.g. from a genie or a
            MAC-level scheduler); when omitted the receiver detects it.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        starts = None if start_index is None else [int(start_index)]
        return self.receive_batch(samples[None, :], config, start_indices=starts)[0]

    # ------------------------------------------------------------------
    def receive_batch(
        self,
        samples: np.ndarray,
        config: FrameConfig,
        start_indices: np.ndarray | list[int] | int | None = None,
    ) -> list[ReceiveResult]:
        """Attempt to decode an ensemble of frames in one batched pass.

        Parameters
        ----------
        samples:
            ``(n_packets, n_samples)`` received baseband sample streams, one
            per frame of the ensemble.
        config:
            Frame configuration shared by every frame of the ensemble.
        start_indices:
            Optional frame starts: a scalar (broadcast), one index per
            packet, or ``None`` to run per-packet detection + fine timing.
            Supplied starts must be non-negative (negative indices would
            silently wrap around the sample buffer).

        Returns
        -------
        list[ReceiveResult]
            One result per packet, in input order; undetected/truncated
            frames yield ``detected=False`` entries exactly as the
            single-packet path does.
        """
        params = self.params
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 2:
            raise ValueError("receive_batch expects a (n_packets, n_samples) array")
        n_packets = samples.shape[0]
        if n_packets == 0:
            return []

        results: list[ReceiveResult | None] = [None] * n_packets
        starts = np.zeros(n_packets, dtype=np.int64)
        detections: list[DetectionResult | None] = [None] * n_packets
        if start_indices is None:
            if self.use_matched_filter_detection:
                batch_detections = [
                    detect_packet_crosscorrelation(samples[i], params) for i in range(n_packets)
                ]
            else:
                # One vectorised detection pass for the whole ensemble; only
                # the LTF fine-timing refinement (already one matrix product
                # per packet) stays per row.
                batch_detections = detect_packet_autocorrelation_batch(samples, params)
            for i, detection in enumerate(batch_detections):
                detections[i] = detection
                if not detection.detected:
                    results[i] = ReceiveResult(False, False, b"", detection=detection)
                    continue
                starts[i] = max(fine_timing_ltf(samples[i], detection.start_index, params), 0)
        else:
            starts[:] = np.broadcast_to(np.asarray(start_indices, dtype=np.int64), (n_packets,))
            if np.any(starts < 0):
                raise ValueError("start_indices must be non-negative")
            detections = [
                DetectionResult(True, int(s), int(s), 1.0) for s in starts
            ]

        stf_len = short_training_field(params).size
        ltf_len = long_training_field(params).size
        n_data_samples = config.n_data_symbols * params.symbol_samples
        frame_len = stf_len + ltf_len + n_data_samples

        fits = starts + frame_len <= samples.shape[1]
        active = [i for i in range(n_packets) if results[i] is None and fits[i]]
        for i in range(n_packets):
            if results[i] is None and not fits[i]:
                results[i] = ReceiveResult(False, False, b"", detection=detections[i])
        if not active:
            return [res for res in results]  # type: ignore[misc]
        rows = np.asarray(active, dtype=np.int64)
        n_active = rows.size

        # --- align all frames with one gather
        gather = starts[rows, None] + np.arange(frame_len)[None, :]
        frames = samples[rows[:, None], gather]

        # --- coarse CFO from STF periodicity, vectorised over packets (the
        # frames are aligned, so the canonical estimator runs from offset 0)
        cfo_hz = np.zeros(n_active, dtype=np.float64)
        if self.correct_cfo:
            try:
                cfo_hz = np.asarray(estimate_coarse_cfo(frames, 0, params), dtype=np.float64)
            except ValueError:
                cfo_hz = np.zeros(n_active, dtype=np.float64)
            n = np.arange(frame_len)
            frames = frames * np.exp(
                -2j * np.pi * cfo_hz[:, None] * n[None, :] * params.sample_period_s
            )

        # --- channel + noise estimation from the two LTF repetitions
        ltf_start = stf_len + 2 * params.cp_samples
        reps = frames[:, ltf_start : ltf_start + 2 * params.n_fft].reshape(
            n_active, 2, params.n_fft
        )
        ltf_syms = np.fft.fft(reps, axis=-1) / np.sqrt(params.n_fft)
        response = estimate_channel_ltf(ltf_syms, params).response
        noise_var = np.asarray(estimate_noise_from_ltf(ltf_syms, params), dtype=np.float64)

        # --- data symbols: one batched FFT + vectorised equalisation
        data_start = stf_len + ltf_len
        data = frames[:, data_start : data_start + n_data_samples]
        freq_symbols = extract_symbols(data, config.n_data_symbols, params)
        eq_symbols, noise_per_sc = equalize_symbols_batch(
            freq_symbols, response, noise_var, params
        )

        # --- soft demap + deinterleave, batched over every symbol
        modulation = get_modulation(config.rate.modulation)
        n_cbps = config.coded_bits_per_symbol
        n_sc = params.n_data_subcarriers
        flat_symbols = eq_symbols.reshape(-1)
        flat_noise = np.broadcast_to(
            noise_per_sc[:, None, :], eq_symbols.shape
        ).reshape(-1)
        soft = np.empty(flat_symbols.size * config.rate.bits_per_symbol, dtype=np.float64)
        bps = config.rate.bits_per_symbol
        for lo in range(0, flat_symbols.size, _DEMAP_CHUNK_SYMBOLS):
            hi = min(lo + _DEMAP_CHUNK_SYMBOLS, flat_symbols.size)
            soft[lo * bps : hi * bps] = modulation.demodulate_soft(
                flat_symbols[lo:hi], flat_noise[lo:hi]
            )
        soft = soft.reshape(n_active, config.n_data_symbols, n_cbps)
        perm = interleaver_permutation(n_cbps, bps)
        llrs = soft[..., perm].reshape(n_active, config.n_data_symbols * n_cbps)

        # --- depuncture + block-parallel Viterbi + descramble
        original_len = _CODE.coded_length(config.n_info_bits + config.n_pad_bits)
        soft_full = depuncture(llrs, config.rate.code_rate, original_len)
        decoded = _CODE.decode_batch(soft_full, terminated=True)
        descrambled = bitutils.descramble(decoded, config.scrambler_seed)
        info_bits = descrambled[:, : config.n_info_bits]

        # --- per-packet wrap-up (CRC, SNR, result objects)
        for k, i in enumerate(active):
            frame_bytes = bitutils.bits_to_bytes(info_bits[k])
            payload, crc_ok = bitutils.check_crc(frame_bytes)
            # Copy the per-packet slices so a caller holding one result does
            # not pin the whole ensemble's batch arrays in memory.
            channel = ChannelEstimate(
                response=response[k].copy(), noise_var=float(noise_var[k])
            )
            results[i] = ReceiveResult(
                detected=True,
                crc_ok=crc_ok,
                payload=payload if crc_ok else frame_bytes[:-4],
                detection=detections[i],
                channel=channel,
                cfo_hz=float(cfo_hz[k]),
                snr_db=self._estimate_snr_db(channel),
                equalized_symbols=eq_symbols[k].copy(),
            )
        return [res for res in results]  # type: ignore[misc]

    # ------------------------------------------------------------------
    def _estimate_snr_db(self, channel: ChannelEstimate) -> float:
        occupied = self.params.occupied_bins()
        signal = float(np.mean(np.abs(channel.on_bins(occupied)) ** 2))
        noise = max(channel.noise_var, 1e-15)
        return 10.0 * np.log10(max(signal / noise, 1e-15))
