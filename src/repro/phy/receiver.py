"""Standard single-sender 802.11-style OFDM receive chain.

The chain mirrors :mod:`repro.phy.transmitter`: packet detection, coarse CFO
estimation and correction, LTF channel and noise estimation, per-symbol FFT,
pilot phase tracking, equalisation, soft demapping, deinterleaving,
depuncturing, Viterbi decoding, descrambling and CRC check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy import bits as bitutils
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.interleaver import deinterleave
from repro.phy.coding.puncturing import depuncture
from repro.phy.detection import (
    DetectionResult,
    detect_packet_autocorrelation,
    detect_packet_crosscorrelation,
    estimate_coarse_cfo,
    fine_timing_ltf,
)
from repro.phy.equalizer import (
    ChannelEstimate,
    equalize_symbol,
    estimate_channel_ltf,
    estimate_noise_from_ltf,
)
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import extract_symbols
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import (
    long_training_field,
    short_training_field,
)
from repro.phy.transmitter import FrameConfig

__all__ = ["ReceiveResult", "Receiver", "apply_cfo_correction"]

_CODE = ConvolutionalCode()


@dataclass
class ReceiveResult:
    """Outcome of attempting to decode one frame."""

    detected: bool
    crc_ok: bool
    payload: bytes
    detection: DetectionResult | None = None
    channel: ChannelEstimate | None = None
    cfo_hz: float = 0.0
    snr_db: float = float("nan")
    equalized_symbols: np.ndarray | None = field(default=None, repr=False)

    @property
    def success(self) -> bool:
        """True when the frame was detected and passed its CRC."""
        return self.detected and self.crc_ok


def apply_cfo_correction(samples: np.ndarray, cfo_hz: float, sample_period_s: float) -> np.ndarray:
    """Remove a carrier frequency offset from a sample stream."""
    samples = np.asarray(samples, dtype=np.complex128)
    n = np.arange(samples.size)
    return samples * np.exp(-2j * np.pi * cfo_hz * n * sample_period_s)


class Receiver:
    """Standard OFDM receiver for single-sender frames."""

    def __init__(
        self,
        params: OFDMParams = DEFAULT_PARAMS,
        use_matched_filter_detection: bool = False,
        correct_cfo: bool = True,
    ):
        self.params = params
        self.use_matched_filter_detection = use_matched_filter_detection
        self.correct_cfo = correct_cfo

    # ------------------------------------------------------------------
    def detect(self, samples: np.ndarray) -> DetectionResult:
        """Run packet detection over a sample stream."""
        if self.use_matched_filter_detection:
            return detect_packet_crosscorrelation(samples, self.params)
        return detect_packet_autocorrelation(samples, self.params)

    # ------------------------------------------------------------------
    def receive(self, samples: np.ndarray, config: FrameConfig, start_index: int | None = None) -> ReceiveResult:
        """Attempt to decode a frame from the received samples.

        Parameters
        ----------
        samples:
            Received baseband samples (channel output plus noise).
        config:
            Frame configuration (rate, payload length), normally known from
            the PLCP SIGNAL field; carried out-of-band in the simulation.
        start_index:
            Optional externally supplied frame start (e.g. from a genie or a
            MAC-level scheduler); when omitted the receiver detects it.
        """
        params = self.params
        samples = np.asarray(samples, dtype=np.complex128)

        detection: DetectionResult
        if start_index is None:
            detection = self.detect(samples)
            if not detection.detected:
                return ReceiveResult(False, False, b"", detection=detection)
            start = fine_timing_ltf(samples, detection.start_index, params)
            start = max(start, 0)
        else:
            start = int(start_index)
            detection = DetectionResult(True, start, start, 1.0)

        stf_len = short_training_field(params).size
        ltf = long_training_field(params)
        ltf_len = ltf.size
        n_data_samples = config.n_data_symbols * params.symbol_samples
        end = start + stf_len + ltf_len + n_data_samples
        if end > samples.size:
            return ReceiveResult(False, False, b"", detection=detection)

        frame = samples[start:end]
        cfo_hz = 0.0
        if self.correct_cfo:
            try:
                cfo_hz = estimate_coarse_cfo(samples, start, params)
            except ValueError:
                cfo_hz = 0.0
            frame = apply_cfo_correction(frame, cfo_hz, params.sample_period_s)

        # --- channel estimation from the two LTF repetitions
        ltf_start = stf_len + 2 * params.cp_samples
        ltf_syms = np.empty((2, params.n_fft), dtype=np.complex128)
        for rep in range(2):
            chunk = frame[ltf_start + rep * params.n_fft : ltf_start + (rep + 1) * params.n_fft]
            ltf_syms[rep] = np.fft.fft(chunk) / np.sqrt(params.n_fft)
        channel = estimate_channel_ltf(ltf_syms, params)
        channel.noise_var = estimate_noise_from_ltf(ltf_syms, params)

        # --- data symbols
        data_start = stf_len + ltf_len
        data_samples = frame[data_start : data_start + n_data_samples]
        freq_symbols = extract_symbols(data_samples, config.n_data_symbols, params)

        modulation = get_modulation(config.rate.modulation)
        n_cbps = config.coded_bits_per_symbol
        llrs = np.empty(config.n_data_symbols * n_cbps, dtype=np.float64)
        eq_store = np.empty((config.n_data_symbols, params.n_data_subcarriers), dtype=np.complex128)
        for i in range(config.n_data_symbols):
            eq, noise_per_sc = equalize_symbol(freq_symbols[i], channel, i, params)
            eq_store[i] = eq
            soft = modulation.demodulate_soft(eq, noise_per_sc)
            llrs[i * n_cbps : (i + 1) * n_cbps] = deinterleave(soft, config.rate.bits_per_symbol)

        original_len = _CODE.coded_length(config.n_info_bits + config.n_pad_bits)
        soft_full = depuncture(llrs, config.rate.code_rate, original_len)
        decoded = _CODE.decode(soft_full, terminated=True)
        descrambled = bitutils.descramble(decoded, config.scrambler_seed)
        info_bits = descrambled[: config.n_info_bits]
        frame_bytes = bitutils.bits_to_bytes(info_bits)
        payload, crc_ok = bitutils.check_crc(frame_bytes)

        snr_db = self._estimate_snr_db(channel)
        return ReceiveResult(
            detected=True,
            crc_ok=crc_ok,
            payload=payload if crc_ok else frame_bytes[:-4],
            detection=detection,
            channel=channel,
            cfo_hz=cfo_hz,
            snr_db=snr_db,
            equalized_symbols=eq_store,
        )

    # ------------------------------------------------------------------
    def _estimate_snr_db(self, channel: ChannelEstimate) -> float:
        occupied = self.params.occupied_bins()
        signal = float(np.mean(np.abs(channel.on_bins(occupied)) ** 2))
        noise = max(channel.noise_var, 1e-15)
        return 10.0 * np.log10(max(signal / noise, 1e-15))
