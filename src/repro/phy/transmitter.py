"""Standard single-sender 802.11-style OFDM transmit chain.

The chain is: payload -> CRC-32 -> scramble -> convolutional encode ->
puncture -> per-symbol interleave -> constellation mapping -> subcarrier
mapping with pilots -> IFFT + CP -> preamble prepend.

The SourceSync joint frame (:mod:`repro.core.frame`) reuses every block of
this chain but arranges the preamble/training sections differently and
applies space-time coding before subcarrier mapping.

Batch API
---------
:func:`encode_payloads_to_symbols` and :meth:`Transmitter.transmit_batch`
push an ensemble of equal-length payloads through the whole chain with a
batch axis on every array: one scramble XOR, one vectorised convolutional
encode, one puncture/interleave permutation, one constellation lookup and
one batched IFFT cover all packets.  The single-packet entry points are
thin wrappers over the batched ones, and the transmit chain is bit-domain
until the IFFT (whose batched form is row-exact), so per-packet and
ensemble encoding produce bit-identical samples under the same inputs
(tested in ``tests/phy/test_batch_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.phy import bits as bitutils
from repro.phy.coding.convolutional import get_code
from repro.phy.coding.interleaver import interleaver_permutation
from repro.phy.coding.puncturing import puncture
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import assemble_symbols, symbols_to_samples
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import preamble
from repro.phy.rates import Rate, rate_for_mbps

__all__ = [
    "FrameConfig",
    "EncodedFrame",
    "BatchEncodedFrame",
    "Transmitter",
    "encode_payload_to_symbols",
    "encode_payloads_to_symbols",
]

_CODE = get_code()


@dataclass(frozen=True)
class FrameConfig:
    """Everything the receiver must know to decode a frame.

    In a real system most of this travels in the PLCP SIGNAL field; in the
    simulation it is carried alongside the transmission.
    """

    rate: Rate
    n_payload_bytes: int
    params: OFDMParams = DEFAULT_PARAMS
    scrambler_seed: int = 0x5D

    @property
    def n_info_bits(self) -> int:
        """Information bits including the CRC-32 trailer."""
        return 8 * (self.n_payload_bytes + 4)

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits per OFDM symbol (N_CBPS)."""
        return self.params.n_data_subcarriers * self.rate.bits_per_symbol

    @property
    def data_bits_per_symbol(self) -> int:
        """Information bits per OFDM symbol (N_DBPS)."""
        value = self.coded_bits_per_symbol * self.rate.code_rate
        if value.denominator != 1:
            raise ValueError("rate/numerology combination yields fractional N_DBPS")
        return int(value)

    @property
    def n_data_symbols(self) -> int:
        """Number of OFDM data symbols needed for the payload."""
        needed = self.n_info_bits + _CODE.tail_bits
        return int(np.ceil(needed / self.data_bits_per_symbol))

    @property
    def n_pad_bits(self) -> int:
        """Zero pad bits appended before encoding to fill the last symbol."""
        return self.n_data_symbols * self.data_bits_per_symbol - self.n_info_bits - _CODE.tail_bits

    def airtime_us(self, include_preamble: bool = True) -> float:
        """Frame duration on the air in microseconds."""
        samples = self.n_data_symbols * self.params.symbol_samples
        if include_preamble:
            samples += preamble(self.params).size
        return samples * self.params.sample_period_s * 1e6


@dataclass
class EncodedFrame:
    """A frame after the transmit chain, ready to be sent over a channel."""

    config: FrameConfig
    payload: bytes
    data_symbols: np.ndarray = field(repr=False)
    samples: np.ndarray = field(repr=False)

    @property
    def n_samples(self) -> int:
        """Total number of baseband samples including the preamble."""
        return int(self.samples.size)


def encode_payloads_to_symbols(
    payloads: Sequence[bytes], config: FrameConfig
) -> np.ndarray:
    """Run the bit-domain chain for an ensemble of equal-length payloads.

    Every stage carries a leading packet axis: CRC append and bit unpacking
    per payload, then one scramble XOR, one vectorised convolutional
    encode, one puncture mask, one interleaver permutation and one
    constellation lookup for the whole batch — no per-packet or per-symbol
    Python loop.

    Returns an array of shape
    ``(n_packets, n_data_symbols, n_data_subcarriers)``.
    """
    payloads = list(payloads)
    for payload in payloads:
        if len(payload) != config.n_payload_bytes:
            raise ValueError(
                f"payload length {len(payload)} does not match config ({config.n_payload_bytes})"
            )
    n_packets = len(payloads)
    n_cbps = config.coded_bits_per_symbol
    if n_packets == 0:
        return np.zeros(
            (0, config.n_data_symbols, config.params.n_data_subcarriers), dtype=np.complex128
        )
    info_bits = np.stack(
        [bitutils.bytes_to_bits(bitutils.append_crc(p)) for p in payloads]
    )
    padded = np.concatenate(
        [info_bits, np.zeros((n_packets, config.n_pad_bits), dtype=np.uint8)], axis=1
    )
    scrambled = bitutils.scramble(padded, config.scrambler_seed)
    encoded = _CODE.encode(scrambled, terminate=True)
    punctured = puncture(encoded, config.rate.code_rate)

    if punctured.shape[-1] != config.n_data_symbols * n_cbps:
        raise AssertionError(
            f"internal length mismatch: {punctured.shape[-1]} coded bits for "
            f"{config.n_data_symbols} symbols of {n_cbps} bits"
        )
    blocks = punctured.reshape(n_packets, config.n_data_symbols, n_cbps)
    perm = interleaver_permutation(n_cbps, config.rate.bits_per_symbol)
    interleaved = np.empty_like(blocks)
    interleaved[..., perm] = blocks
    modulation = get_modulation(config.rate.modulation)
    return modulation.modulate(interleaved.reshape(-1)).reshape(
        n_packets, config.n_data_symbols, config.params.n_data_subcarriers
    )


def encode_payload_to_symbols(payload: bytes, config: FrameConfig) -> np.ndarray:
    """Run the bit-domain chain and return constellation symbols per OFDM symbol.

    Thin wrapper over :func:`encode_payloads_to_symbols` with a batch of
    one.  Returns an array of shape ``(n_data_symbols, n_data_subcarriers)``.
    """
    return encode_payloads_to_symbols([payload], config)[0]


@dataclass
class BatchEncodedFrame:
    """An ensemble of frames after the batched transmit chain.

    All payloads share one :class:`FrameConfig` (same length and rate), so
    every array simply carries a leading packet axis.
    """

    config: FrameConfig
    payloads: list[bytes]
    data_symbols: np.ndarray = field(repr=False)  #: (n_packets, n_symbols, n_data)
    samples: np.ndarray = field(repr=False)  #: (n_packets, n_samples)

    @property
    def n_packets(self) -> int:
        """Number of frames in the ensemble."""
        return len(self.payloads)

    @property
    def n_samples(self) -> int:
        """Baseband samples per frame including the preamble."""
        return int(self.samples.shape[-1])

    def frame(self, index: int) -> EncodedFrame:
        """Single-packet view of one frame of the ensemble."""
        return EncodedFrame(
            config=self.config,
            payload=self.payloads[index],
            data_symbols=self.data_symbols[index],
            samples=self.samples[index],
        )


class Transmitter:
    """Standard OFDM transmitter producing baseband samples for payloads.

    :meth:`transmit_batch` encodes a whole packet ensemble per numpy call;
    :meth:`transmit` is its single-packet thin wrapper.
    """

    def __init__(self, params: OFDMParams = DEFAULT_PARAMS):
        self.params = params

    def make_config(self, payload: bytes, rate_mbps: float) -> FrameConfig:
        """Build a :class:`FrameConfig` for a payload at a nominal bit rate."""
        return FrameConfig(
            rate=rate_for_mbps(rate_mbps),
            n_payload_bytes=len(payload),
            params=self.params,
        )

    def transmit_batch(
        self, payloads: Sequence[bytes], rate_mbps: float = 6.0
    ) -> BatchEncodedFrame:
        """Encode an ensemble of equal-length payloads into baseband frames.

        The whole transmit chain is batched: the bit-domain stages run with
        a leading packet axis and the subcarrier mapping + IFFT + CP are one
        vectorised call over ``(n_packets, n_symbols, n_fft)``.
        """
        payloads = [bytes(p) for p in payloads]
        if not payloads:
            raise ValueError("transmit_batch needs at least one payload")
        lengths = {len(p) for p in payloads}
        if len(lengths) != 1:
            raise ValueError("all payloads of a batch must have the same length")
        config = self.make_config(payloads[0], rate_mbps)
        data_symbols = encode_payloads_to_symbols(payloads, config)
        freq = assemble_symbols(data_symbols, self.params)
        data_samples = symbols_to_samples(freq, self.params)
        pre = preamble(self.params)
        samples = np.concatenate(
            [np.broadcast_to(pre, (len(payloads), pre.size)), data_samples], axis=1
        )
        return BatchEncodedFrame(
            config=config, payloads=payloads, data_symbols=data_symbols, samples=samples
        )

    def transmit(self, payload: bytes, rate_mbps: float = 6.0) -> EncodedFrame:
        """Encode a payload into a complete baseband frame.

        Thin wrapper over :meth:`transmit_batch` with a batch of one.
        """
        return self.transmit_batch([payload], rate_mbps).frame(0)
