"""Standard single-sender 802.11-style OFDM transmit chain.

The chain is: payload -> CRC-32 -> scramble -> convolutional encode ->
puncture -> per-symbol interleave -> constellation mapping -> subcarrier
mapping with pilots -> IFFT + CP -> preamble prepend.

The SourceSync joint frame (:mod:`repro.core.frame`) reuses every block of
this chain but arranges the preamble/training sections differently and
applies space-time coding before subcarrier mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy import bits as bitutils
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.interleaver import interleave
from repro.phy.coding.puncturing import puncture
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import assemble_symbols, symbols_to_samples
from repro.phy.params import OFDMParams, DEFAULT_PARAMS
from repro.phy.preamble import preamble
from repro.phy.rates import Rate, rate_for_mbps

__all__ = ["FrameConfig", "EncodedFrame", "Transmitter", "encode_payload_to_symbols"]

_CODE = ConvolutionalCode()


@dataclass(frozen=True)
class FrameConfig:
    """Everything the receiver must know to decode a frame.

    In a real system most of this travels in the PLCP SIGNAL field; in the
    simulation it is carried alongside the transmission.
    """

    rate: Rate
    n_payload_bytes: int
    params: OFDMParams = DEFAULT_PARAMS
    scrambler_seed: int = 0x5D

    @property
    def n_info_bits(self) -> int:
        """Information bits including the CRC-32 trailer."""
        return 8 * (self.n_payload_bytes + 4)

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits per OFDM symbol (N_CBPS)."""
        return self.params.n_data_subcarriers * self.rate.bits_per_symbol

    @property
    def data_bits_per_symbol(self) -> int:
        """Information bits per OFDM symbol (N_DBPS)."""
        value = self.coded_bits_per_symbol * self.rate.code_rate
        if value.denominator != 1:
            raise ValueError("rate/numerology combination yields fractional N_DBPS")
        return int(value)

    @property
    def n_data_symbols(self) -> int:
        """Number of OFDM data symbols needed for the payload."""
        needed = self.n_info_bits + _CODE.tail_bits
        return int(np.ceil(needed / self.data_bits_per_symbol))

    @property
    def n_pad_bits(self) -> int:
        """Zero pad bits appended before encoding to fill the last symbol."""
        return self.n_data_symbols * self.data_bits_per_symbol - self.n_info_bits - _CODE.tail_bits

    def airtime_us(self, include_preamble: bool = True) -> float:
        """Frame duration on the air in microseconds."""
        samples = self.n_data_symbols * self.params.symbol_samples
        if include_preamble:
            samples += preamble(self.params).size
        return samples * self.params.sample_period_s * 1e6


@dataclass
class EncodedFrame:
    """A frame after the transmit chain, ready to be sent over a channel."""

    config: FrameConfig
    payload: bytes
    data_symbols: np.ndarray = field(repr=False)
    samples: np.ndarray = field(repr=False)

    @property
    def n_samples(self) -> int:
        """Total number of baseband samples including the preamble."""
        return int(self.samples.size)


def encode_payload_to_symbols(payload: bytes, config: FrameConfig) -> np.ndarray:
    """Run the bit-domain chain and return constellation symbols per OFDM symbol.

    Returns an array of shape ``(n_data_symbols, n_data_subcarriers)``.
    """
    if len(payload) != config.n_payload_bytes:
        raise ValueError(
            f"payload length {len(payload)} does not match config ({config.n_payload_bytes})"
        )
    frame_bytes = bitutils.append_crc(payload)
    info_bits = bitutils.bytes_to_bits(frame_bytes)
    padded = np.concatenate([info_bits, np.zeros(config.n_pad_bits, dtype=np.uint8)])
    scrambled = bitutils.scramble(padded, config.scrambler_seed)
    encoded = _CODE.encode(scrambled, terminate=True)
    punctured = puncture(encoded, config.rate.code_rate)

    n_cbps = config.coded_bits_per_symbol
    if punctured.size != config.n_data_symbols * n_cbps:
        raise AssertionError(
            f"internal length mismatch: {punctured.size} coded bits for "
            f"{config.n_data_symbols} symbols of {n_cbps} bits"
        )
    modulation = get_modulation(config.rate.modulation)
    symbols = np.empty(
        (config.n_data_symbols, config.params.n_data_subcarriers), dtype=np.complex128
    )
    for i in range(config.n_data_symbols):
        chunk = punctured[i * n_cbps : (i + 1) * n_cbps]
        interleaved = interleave(chunk, config.rate.bits_per_symbol)
        symbols[i] = modulation.modulate(interleaved)
    return symbols


class Transmitter:
    """Standard OFDM transmitter producing baseband samples for a payload."""

    def __init__(self, params: OFDMParams = DEFAULT_PARAMS):
        self.params = params

    def make_config(self, payload: bytes, rate_mbps: float) -> FrameConfig:
        """Build a :class:`FrameConfig` for a payload at a nominal bit rate."""
        return FrameConfig(
            rate=rate_for_mbps(rate_mbps),
            n_payload_bytes=len(payload),
            params=self.params,
        )

    def transmit(self, payload: bytes, rate_mbps: float = 6.0) -> EncodedFrame:
        """Encode a payload into a complete baseband frame."""
        config = self.make_config(payload, rate_mbps)
        data_symbols = encode_payload_to_symbols(payload, config)
        freq = assemble_symbols(data_symbols, self.params)
        data_samples = symbols_to_samples(freq, self.params)
        samples = np.concatenate([preamble(self.params), data_samples])
        return EncodedFrame(config=config, payload=payload, data_symbols=data_symbols, samples=samples)
