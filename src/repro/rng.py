"""Deterministic RNG policy for the reproduction library.

Every result in this repository rests on one contract: lockstep,
sequential, chunked, multi-process and resumed runs are bit-identical
under one seed.  That contract dies the moment library code silently
mints its own entropy — an unseeded ``np.random.default_rng()`` fallback
deep inside a channel model turns "arrays differ" into an unreproducible
heisenbug.  The policy is therefore:

* **Library code never creates generators.**  Functions and classes that
  draw randomness take an explicit ``rng`` (a ``numpy.random.Generator``)
  and fail loudly via :func:`require_rng` when the caller forgot one.
* **Experiments own the seeds.**  Only the experiment/runner layer turns
  a user-visible ``seed`` into generators (``np.random.default_rng(seed)``
  and ``SeedSequence.spawn`` children), so the draw order is auditable
  from a single root.

The static side of the contract is enforced by :mod:`repro.lint`
(rule ``R001`` flags unseeded ``default_rng()`` calls); the runtime side
is auditable with :mod:`repro.lint.ledger`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["require_rng"]


def require_rng(rng: "np.random.Generator | None", owner: str) -> np.random.Generator:
    """Return ``rng``, raising if the caller failed to provide one.

    Parameters
    ----------
    rng:
        The generator the caller passed (possibly ``None``).
    owner:
        Name of the API that needs the generator, used in the error
        message (e.g. ``"awgn"`` or ``"Testbed.random"``).

    Raises
    ------
    ValueError
        If ``rng`` is ``None``.  Library code must not fall back to an
        unseeded ``np.random.default_rng()`` — that silently breaks the
        bit-identical-replay contract every equivalence test depends on.
    """
    if rng is None:
        raise ValueError(
            f"{owner} requires an explicit numpy.random.Generator; pass "
            "rng=np.random.default_rng(seed) from the experiment layer — "
            "library code must not mint its own entropy (see repro.lint rule R001)"
        )
    return rng
