"""Routing protocols: single path, ExOR, ExOR + SourceSync, link-local recovery."""

from repro.routing.ensemble import (
    DownlinkLane,
    ExorLane,
    LinkLocalLane,
    prime_testbeds_lockstep,
    simulate_downlink_ensemble,
    simulate_exor_ensemble,
    simulate_link_local_ensemble,
    simulate_single_path_ensemble,
)
from repro.routing.exor import ExorConfig, ExorResult, exor_priority, simulate_exor
from repro.routing.exor_sourcesync import cp_increase_for_forwarders, simulate_exor_sourcesync
from repro.routing.link_local import LinkLocalConfig, LinkLocalResult, simulate_link_local
from repro.routing.single_path import SinglePathResult, simulate_single_path

__all__ = [
    "ExorConfig",
    "ExorResult",
    "ExorLane",
    "DownlinkLane",
    "LinkLocalConfig",
    "LinkLocalResult",
    "LinkLocalLane",
    "exor_priority",
    "prime_testbeds_lockstep",
    "simulate_exor",
    "simulate_exor_ensemble",
    "simulate_exor_sourcesync",
    "simulate_downlink_ensemble",
    "simulate_link_local",
    "simulate_link_local_ensemble",
    "simulate_single_path_ensemble",
    "cp_increase_for_forwarders",
    "SinglePathResult",
    "simulate_single_path",
]
