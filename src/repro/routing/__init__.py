"""Routing protocols: single path, ExOR, and ExOR + SourceSync."""

from repro.routing.exor import ExorConfig, ExorResult, simulate_exor
from repro.routing.exor_sourcesync import cp_increase_for_forwarders, simulate_exor_sourcesync
from repro.routing.single_path import SinglePathResult, simulate_single_path

__all__ = [
    "ExorConfig",
    "ExorResult",
    "simulate_exor",
    "simulate_exor_sourcesync",
    "cp_increase_for_forwarders",
    "SinglePathResult",
    "simulate_single_path",
]
