"""Lockstep mesh-ensemble execution of the ExOR / network layer.

The sender-diversity routing experiments (§8.4, Fig. 18; §8.3, Fig. 17)
are Monte-Carlo loops over *independent* topologies or client placements.
PRs 1 and 3 batched the PHY pipeline and the joint-frame core, but each
topology's ExOR transfer still ran a pure-Python event loop: per packet,
per receiver, one dict-keyed probability lookup and one scalar Bernoulli
draw.  This module advances many transfers *in lockstep* instead,
following the same pattern as :mod:`repro.core.ensemble`:

* link realisations of every testbed are materialised with per-testbed
  draws in the canonical all-pairs order, while the surrounding pure
  compute (tap normalisation, FFTs, the EESM/waterfall mapping) runs once
  over the stacked rows of the whole ensemble
  (:func:`prime_testbeds_lockstep`);
* each ExOR phase becomes masked Bernoulli matrix draws against the dense
  per-testbed probability tables
  (:meth:`repro.net.topology.Testbed.delivery_prob_matrix` and the
  frozen-sender-set joint rows): the source-broadcast phase is one
  ``(batch, listeners)`` draw, a forwarding turn is one
  ``(pending, receivers)`` draw, and holds live in a boolean
  ``(node, packet)`` array per lane instead of per-packet Python sets;
* the last-hop downlink loops of Fig. 17 advance placements in waves over
  packets with the SampleRate statistics of all lanes held in stacked
  arrays (:func:`simulate_downlink_ensemble`).

Heterogeneous lanes
-------------------
Lanes of one ensemble call do not have to be uniform: ExOR lanes may mix
batch sizes, topology sizes, rates and retry depths, and downlink lanes
may mix packet counts and retry limits.  The scheduler advances every
lane at its own pace inside one lockstep schedule — a lane that runs out
of packets (or stalls) simply stops participating in the stacked draws
while the rest continue.

Determinism contract
--------------------
Every RNG draw is made from the owning lane's generator in exactly the
order the sequential code would make it: a turn's flattened
packet-by-receiver draw consumes the same uniform stream as the loop of
per-packet :meth:`Testbed.attempt_deliveries` calls it replaces, and
stages that cannot merge draws (last-hop cleanup retries, downlink
attempt loops) keep per-lane scalar draws in sequential order.  A
lockstep run over lanes ``[l1, ..., ln]`` therefore produces *bit
identical* results to running each lane's sequential simulation to
completion, which ``tests/routing/test_exor_ensemble.py`` asserts.

Two lanes may share one generator only when they are *chained*: a lane
constructed with ``after=<other lane>`` does not start (neither its
setup nor its first draw) until the referenced lane has fully finished,
so the shared stream is consumed in exactly the sequential order.  This
is how Fig. 18 runs plain ExOR and then ExOR + SourceSync on the same
topology, and Fig. 17 runs the best-AP and SourceSync schemes of one
placement, as a single ensemble call::

    exor  = ExorLane(testbed, src, dst, rate, relays, config, rng)
    joint = ExorLane(testbed, src, dst, rate, relays, joint_config, rng,
                     after=exor)
    exor_result, joint_result = simulate_exor_ensemble([exor, joint])

Unchained lanes must use distinct generators; the engines reject
ensembles that violate the rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.error_models import delivery_probabilities, delivery_probabilities_rates
from repro.channel.awgn import db_to_linear, linear_to_db
from repro.channel.dynamics import (
    LinkStateTrajectory,
    link_order,
    materialise_trajectory,
    trajectory_from_states,
)
from repro.channel.multipath import rayleigh_taps_batch
from repro.engine import Lane, LockstepScheduler, resolve_chains
from repro.lasthop.controller import SourceSyncController
from repro.lasthop.rate_adaptation import SampleRate
from repro.lasthop.simulation import LastHopResult
from repro.net.etx import etx_graph
from repro.net.mac import CsmaState, MacTiming
from repro.net.topology import Testbed
from repro.phy.rates import Rate, rate_for_mbps, rates_sorted
from repro.routing.exor import ExorConfig, ExorResult, exor_priority
from repro.routing.link_local import LinkLocalConfig, LinkLocalResult, _transfer
from repro.routing.single_path import SinglePathResult

__all__ = [
    "ExorLane",
    "DownlinkLane",
    "LinkLocalLane",
    "prime_testbeds_lockstep",
    "simulate_exor_ensemble",
    "simulate_single_path_ensemble",
    "simulate_link_local_ensemble",
    "simulate_downlink_ensemble",
]


# ----------------------------------------------------------------------
# Lockstep testbed priming
# ----------------------------------------------------------------------
def prime_testbeds_lockstep(
    testbeds: list[Testbed], rate: Rate | float, payload_bytes: int = 1460
) -> None:
    """Prime every testbed's delivery cache with cross-testbed batched compute.

    The sequential counterpart is one
    :meth:`Testbed.prime_delivery_cache` call per testbed.  Here only the
    *draws* stay per testbed — each generator is consumed in the canonical
    all-pairs order (shadowing, then tap gains, per directed link), exactly
    as the lazy scalar path would — while the pure compute is stacked
    across the whole ensemble: one tap-normalisation/FFT pass and one
    EESM/waterfall pass over all outstanding links of all testbeds.  The
    cached profiles and probabilities are bit-identical to the scalar
    path's (row-wise FFTs and reductions match their 1-D counterparts).
    """
    rate_obj = rate if isinstance(rate, Rate) else rate_for_mbps(rate)
    done_key = ("delivery_primed", rate_obj.mbps, payload_bytes)
    # (testbed, (a, b)) rows needing a fresh fading realisation, grouped by
    # compute shape so heterogeneous ensembles stack safely.
    draw_groups: dict[tuple, list[tuple[Testbed, tuple[int, int], np.ndarray, float]]] = {}
    eesm_groups: dict[int, list[tuple[Testbed, tuple[int, int], np.ndarray]]] = {}
    pending: list[tuple[Testbed, list[tuple[int, int]]]] = []
    seen_testbeds: set[int] = set()
    for testbed in testbeds:
        # Dedupe shared topologies (e.g. one testbed carrying lanes at two
        # rates): collecting a testbed twice before its profiles are stored
        # would re-draw its link realisations and corrupt its generator.
        if id(testbed) in seen_testbeds or testbed._routing_cache.get(done_key):
            continue
        seen_testbeds.add(id(testbed))
        pairs = testbed._unprimed_pairs(rate_obj, payload_bytes)
        pending.append((testbed, pairs))
        rayleigh = not np.isfinite(testbed.multipath_profile.k_factor_db)
        n_taps = testbed.multipath_profile.n_taps
        for a, b in pairs:
            profile = testbed._profile_cache.get((a, b))
            if profile is not None:
                eesm_groups.setdefault(profile.size, []).append((testbed, (a, b), profile))
                continue
            average_snr = testbed.link_average_snr_db(a, b)  # shadowing draw, cached
            if rayleigh:
                # Draw-only fast path: the Gaussian draw is the whole RNG
                # consumption of rayleigh_taps_batch for Rayleigh profiles;
                # the power-delay scaling is deferred to the stacked pass.
                taps = testbed.rng.normal(size=(2, n_taps))
            else:
                taps = rayleigh_taps_batch(testbed.multipath_profile, 1, testbed.rng)[0]
            group = (rayleigh, n_taps, testbed.multipath_profile, testbed.params)
            draw_groups.setdefault(group, []).append((testbed, (a, b), taps, average_snr))

    for (rayleigh, n_taps, multipath_profile, params), rows in draw_groups.items():
        if rayleigh:
            draws = np.stack([row[2] for row in rows])
            scattered = (draws[:, 0, :] + 1j * draws[:, 1, :]) / np.sqrt(2.0)
            taps = scattered * np.sqrt(multipath_profile.tap_powers())
        else:
            taps = np.stack([row[2] for row in rows])
        average = np.array([row[3] for row in rows], dtype=np.float64)
        # Mirrors MultipathChannel.normalized + subcarrier_snr_profile,
        # row-stacked: unit-power taps, frequency response on the occupied
        # bins, mean-normalised gains scaled to the target average SNR.
        power = np.sum(np.abs(taps) ** 2, axis=1)
        response = np.fft.fft(taps / np.sqrt(power)[:, None], params.n_fft, axis=-1)
        # ascontiguousarray: the fancy-indexed bin selection is strided, and
        # the row means' pairwise-summation blocking (and hence the last
        # ulp) matches the scalar path only on contiguous rows.
        gains = np.abs(np.ascontiguousarray(response[:, params.occupied_bins()])) ** 2
        gains = gains / np.mean(gains, axis=1)[:, None]
        # The SNR scale must go through the scalar power path: numpy's
        # vectorised 10**x can differ from the 0-d case by one ulp.
        scale = np.array([db_to_linear(snr_db) for snr_db in average.tolist()])
        profiles = np.asarray(linear_to_db(gains * scale[:, None]))
        for (testbed, pair, _, _), profile in zip(rows, profiles):
            testbed._profile_cache[pair] = profile
            eesm_groups.setdefault(profile.size, []).append((testbed, pair, profile))

    for rows in eesm_groups.values():
        probs = delivery_probabilities(np.stack([row[2] for row in rows]), rate_obj, payload_bytes)
        for (testbed, (a, b), _), prob in zip(rows, probs):
            testbed._delivery_cache[(a, b, rate_obj.mbps, payload_bytes)] = float(prob)
    for testbed, _ in pending:
        testbed._routing_cache[done_key] = True


# ----------------------------------------------------------------------
# ExOR batch transfers in lockstep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExorLane:
    """One ExOR batch transfer to advance inside the lockstep ensemble.

    ``after`` chains this lane behind another lane of the same ensemble
    call: it starts only once that lane has fully finished (including its
    last-hop cleanup), which is the only way two lanes may share one
    generator.  Lanes may otherwise differ freely in batch size, topology,
    rate and retry depth.
    """

    testbed: Testbed
    src: int
    dst: int
    rate_mbps: float
    relays: list[int]
    config: ExorConfig
    rng: np.random.Generator
    timing: MacTiming | None = None
    after: "ExorLane | None" = None


def _wrap_lanes(specs: list, factory) -> list[Lane]:
    """Wrap spec dataclasses as engine lanes, remapping ``after`` chains.

    A spec whose ``after`` points outside the ensemble keeps the foreign
    object as the wrapper's ``after``, so the scheduler's membership check
    rejects it with the same error the private resolver used to raise.
    """
    wrappers = [factory(spec) for spec in specs]
    by_id = {id(spec): wrapper for spec, wrapper in zip(specs, wrappers)}
    for spec, wrapper in zip(specs, wrappers):
        if spec.after is not None:
            wrapper.after = by_id.get(id(spec.after), spec.after)
    return wrappers


def _bit_indices(mask: int) -> list[int]:
    """Ascending positions of the set bits of a packet bitmask."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


@dataclass
class _ExorLaneState:
    """Mutable per-lane execution state of the lockstep scheduler.

    Holds are packet *bitmasks*, one integer per holder (destination
    first, then the forwarder priority order) — the boolean
    ``(node, packet)`` view flattened into machine words, so the
    per-round pending/receiver bookkeeping that dominated the sequential
    profile becomes a handful of integer operations.
    """

    lane: ExorLane
    rate: Rate
    priority: list[int]
    holders: list[int]  #: receiver axis: destination first, then priority
    holds: list[int]  #: per-holder packet bitmask
    single_probs: list[list[float]]  #: per forwarder index, probabilities to rows 0..index
    single_airtime: float
    airtime_by_cosenders: list[float]
    #: Materialised link-state trajectory (``None`` = static links); the
    #: lane's transmission counter is the slot clock, exactly as in the
    #: sequential path.
    trajectory: LinkStateTrajectory | None = None
    elapsed_us: float = 0.0
    transmissions: int = 0
    failures: int = 0
    joint_count: int = 0
    rounds: int = 0
    progress: bool = True
    #: joint probability rows over the holder axis, keyed by sender bitmask
    joint_rows: dict[int, list] = field(default_factory=dict)

    @property
    def delivered(self) -> int:
        """Number of batch packets the destination currently holds."""
        return self.holds[0].bit_count()

    @property
    def active(self) -> bool:
        """Whether the transfer still has forwarding rounds to run."""
        config = self.lane.config
        return (
            self.rounds < config.max_rounds
            and self.delivered < config.batch_size
            and self.progress
        )


def _lane_state(
    lane: ExorLane, trajectory: LinkStateTrajectory | None = None
) -> _ExorLaneState:
    testbed, config = lane.testbed, lane.config
    timing = lane.timing if lane.timing is not None else MacTiming(params=testbed.params)
    rate = rate_for_mbps(lane.rate_mbps)
    priority = exor_priority(testbed, lane.relays, lane.src, lane.dst, config)
    holders = [lane.dst, *priority]
    holds = [0] * len(holders)
    holds[holders.index(lane.src)] = (1 << config.batch_size) - 1  # source holds the batch
    single = timing.single_transaction_us(config.payload_bytes, rate, with_ack=False)
    airtimes = [single] + [
        timing.joint_transaction_us(config.payload_bytes, rate, n, with_ack=False)
        for n in range(1, len(priority))
    ]
    matrix = testbed.delivery_prob_matrix(rate, config.payload_bytes)
    cols = [testbed._node_index[node] for node in holders]
    single_probs = [
        matrix[cols[index + 1], cols[: index + 1]].tolist()
        for index in range(len(priority))
    ]
    return _ExorLaneState(
        lane=lane,
        rate=rate,
        priority=priority,
        holders=holders,
        holds=holds,
        single_probs=single_probs,
        single_airtime=single,
        airtime_by_cosenders=airtimes,
        trajectory=trajectory,
    )


def _joint_probs(state: _ExorLaneState, bitmask: int, forwarder_index: int, n_receivers: int) -> list:
    """Joint delivery probabilities of one sender set towards the first receivers.

    ``bitmask`` sets bit ``i`` for every member ``priority[i]`` of the
    sender set; rows are cached per mask and extended lazily so each
    (sender set, receiver) entry is computed exactly when — and in the
    sender order — the sequential scheduler would first need it.
    """
    row = state.joint_rows.get(bitmask)
    if row is None:
        row = [None] * len(state.holders)
        state.joint_rows[bitmask] = row
    missing = [k for k in range(n_receivers) if row[k] is None]
    if missing:
        senders = [state.priority[forwarder_index]] + [
            state.priority[i]
            for i in range(len(state.priority))
            if i != forwarder_index and bitmask >> i & 1
        ]
        values = state.lane.testbed.joint_delivery_prob_row(
            senders,
            [state.holders[k] for k in missing],
            state.rate,
            state.lane.config.payload_bytes,
        )
        for k, value in zip(missing, values.tolist()):
            row[k] = value
    return row[:n_receivers]


def _broadcast_wave(state: _ExorLaneState) -> None:
    """Source-broadcast phase: one Bernoulli matrix draw for the whole batch."""
    lane, config = state.lane, state.lane.config
    testbed = lane.testbed
    listener_rows = [k for k, node in enumerate(state.holders) if node != lane.src]
    matrix = testbed.delivery_prob_matrix(state.rate, config.payload_bytes)
    src_col = testbed._node_index[lane.src]
    probs = matrix[src_col, [testbed._node_index[state.holders[k]] for k in listener_rows]]
    if state.trajectory is None:
        outcomes = lane.rng.random((config.batch_size, len(listener_rows))) < probs[None, :]
    else:
        # Identical (batch, listeners) draw; packet k transmits at slot k,
        # matching the sequential path's trajectory.rows modulation.
        mult = state.trajectory.rows(
            state.transmissions,
            config.batch_size,
            lane.src,
            [state.holders[k] for k in listener_rows],
        )
        outcomes = (
            lane.rng.random((config.batch_size, len(listener_rows))) < probs[None, :] * mult
        )
    holds = state.holds
    failures = 0
    for packet_id, row in enumerate(outcomes.tolist()):
        bit = 1 << packet_id
        heard = False
        for col, hit in enumerate(row):
            if hit:
                holds[listener_rows[col]] |= bit
                heard = True
        if not heard:
            failures += 1
    state.transmissions += config.batch_size
    state.failures += failures
    for _ in range(config.batch_size):  # per-packet accumulation order
        state.elapsed_us += state.single_airtime


def _forwarding_turn(state: _ExorLaneState, index: int, higher_or: int) -> int:
    """One forwarder's turn: a flattened packet-by-receiver Bernoulli draw.

    The flattened ``(pending, receivers)`` draw consumes the lane
    generator exactly as the sequential per-packet
    ``attempt_deliveries`` loop does (packets in ascending id order,
    receivers in destination-then-priority order).  Returns the union of
    newly-delivered packet bits so the caller can keep its running
    higher-priority OR current.
    """
    config = state.lane.config
    holds = state.holds
    pending_bits = holds[index + 1] & ~higher_or
    if not pending_bits:
        return 0
    pending = _bit_indices(pending_bits)
    n_pending, n_receivers = len(pending), index + 1
    if config.sender_diversity:
        base = 1 << index
        masks = [base] * n_pending
        for i in range(len(state.priority)):
            if i == index:
                continue
            overlap = holds[i + 1] & pending_bits
            if overlap:
                joiner_bit = 1 << i
                for k, packet_id in enumerate(pending):
                    if overlap >> packet_id & 1:
                        masks[k] |= joiner_bit
        prob_rows = []
        airtimes = []
        for mask in masks:
            if mask == base:
                prob_rows.append(state.single_probs[index])
                airtimes.append(state.single_airtime)
            else:
                prob_rows.append(_joint_probs(state, mask, index, n_receivers))
                n_cosenders = mask.bit_count() - 1
                airtimes.append(state.airtime_by_cosenders[n_cosenders])
                state.joint_count += 1
    else:
        prob_rows = None
        single_row = state.single_probs[index]
        airtimes = None
    traj = state.trajectory
    receiver_nodes = state.holders[:n_receivers] if traj is not None else None
    draws = state.lane.rng.random(n_pending * n_receivers).tolist()
    newly = [0] * n_receivers
    failures = 0
    elapsed = state.elapsed_us
    position = 0
    for k in range(n_pending):
        row = prob_rows[k] if prob_rows is not None else single_row
        if traj is not None:
            # Packet k of the turn transmits at slot transmissions + k; the
            # sender list is rebuilt exactly as the sequential scheduler's
            # (forwarder first, then joiners in priority order) so the
            # modulated probabilities are the same floats.
            if config.sender_diversity:
                mask = masks[k]
                senders = [state.priority[index]] + [
                    state.priority[i]
                    for i in range(len(state.priority))
                    if i != index and mask >> i & 1
                ]
            else:
                senders = [state.priority[index]]
            mult = traj.receiver_multipliers(
                state.transmissions + k, senders, receiver_nodes
            )
            row = (np.asarray(row) * mult).tolist()
        bit = 1 << pending[k]
        delivered_any = False
        for r in range(n_receivers):
            if draws[position] < row[r]:
                newly[r] |= bit
                delivered_any = True
            position += 1
        if not delivered_any:
            failures += 1
        elapsed += airtimes[k] if airtimes is not None else state.single_airtime
    state.elapsed_us = elapsed
    state.transmissions += n_pending
    state.failures += failures
    newly_union = 0
    for r in range(n_receivers):
        if newly[r]:
            holds[r] |= newly[r]
            newly_union |= newly[r]
    if newly_union:
        state.progress = True
    return newly_union


def _cleanup(state: _ExorLaneState) -> None:
    """Last-hop cleanup: per-packet retries, scalar draws in sequential order."""
    lane, config = state.lane, state.lane.config
    holds = state.holds
    rng = lane.rng
    traj = state.trajectory
    full = (1 << config.batch_size) - 1
    for packet_id in _bit_indices(~holds[0] & full):
        bit = 1 << packet_id
        holder_indices = [i for i in range(len(state.priority)) if holds[i + 1] & bit]
        if not holder_indices:
            continue
        sender_index = holder_indices[0]
        n_senders = 1
        if config.sender_diversity and len(holder_indices) > 1:
            n_senders = len(holder_indices)
            bitmask = 0
            for i in holder_indices:
                bitmask |= 1 << i
            prob = _joint_probs(state, bitmask, sender_index, 1)[0]
            sender_nodes = [state.priority[i] for i in holder_indices]
        else:
            # Row 0 of a forwarder's single-sender probabilities is the
            # destination (receivers are ordered destination-first).
            prob = state.single_probs[sender_index][0]
            sender_nodes = [state.priority[sender_index]]
        airtime = state.airtime_by_cosenders[n_senders - 1]
        for _ in range(config.retry_limit_last_hop):
            if n_senders > 1:
                state.joint_count += 1
            if traj is None:
                effective = prob
            else:
                # The slot clock advances every attempt, so the modulated
                # probability must be re-read inside the retry loop.
                effective = (
                    prob
                    * traj.receiver_multipliers(
                        state.transmissions, sender_nodes, [lane.dst]
                    )[0]
                )
            success = rng.random() < effective
            state.elapsed_us += airtime
            state.transmissions += 1
            if success:
                holds[0] |= bit
                break
            state.failures += 1


def _prime_lane_caches(lane: ExorLane) -> None:
    """Prime one lane's probe/data caches in its sequential stream position.

    Used when a chained lane activates: when its predecessor already primed
    the shared testbed at the same rates this is a pure cache hit (detected
    up front so the common chained case — same testbed, same rates — costs
    two dict lookups), and when it did not, the draws land exactly where the
    sequential code would make them (right after the predecessor's last
    draw).
    """
    config = lane.config
    cache = lane.testbed._routing_cache
    probe_mbps = rate_for_mbps(config.probe_rate_mbps).mbps
    if not cache.get(("delivery_primed", probe_mbps, config.payload_bytes)):
        prime_testbeds_lockstep([lane.testbed], config.probe_rate_mbps, config.payload_bytes)
    etx_graph(
        lane.testbed,
        probe_rate_mbps=config.probe_rate_mbps,
        probe_bytes=config.payload_bytes,
    )
    data_mbps = rate_for_mbps(lane.rate_mbps).mbps
    if not cache.get(("delivery_primed", data_mbps, config.payload_bytes)):
        prime_testbeds_lockstep([lane.testbed], lane.rate_mbps, config.payload_bytes)


def _materialise_root_trajectories(wrappers: list["_ExorEngineLane"]) -> None:
    """Draw the root lanes' link-state trajectories, evolved cross-lane.

    Each lane's uniform block is still that lane's own single draw (its
    sequential stream position: after priming, before the first transfer
    draw), but the Gilbert–Elliott scan runs once per distinct process over
    the *stacked* blocks of all lanes sharing it — the scan is pure
    comparisons, so the stacked evolution is bit-identical to evolving each
    lane alone.  Chained lanes are excluded: they draw at activation.
    """
    groups: dict[tuple, list[tuple["_ExorEngineLane", np.ndarray]]] = {}
    for wrapper in wrappers:
        lane = wrapper.spec
        dynamics = lane.config.dynamics
        if dynamics is None:
            continue
        n_links = len(link_order(lane.testbed.node_ids))
        uniforms = dynamics.draw_state_uniforms(lane.rng, n_links)
        if uniforms is None:  # grid-only spec: deterministic, no draws
            wrapper._trajectory = trajectory_from_states(
                dynamics, lane.testbed.node_ids, lane.rate_mbps, None
            )
            continue
        key = (dynamics.gilbert_elliott, dynamics.horizon_slots, n_links)
        groups.setdefault(key, []).append((wrapper, uniforms))
    for (process, _, _), rows in groups.items():
        states = process.evolve_states(np.stack([block for _, block in rows]))
        for (wrapper, _), lane_states in zip(rows, states):
            lane = wrapper.spec
            wrapper._trajectory = trajectory_from_states(
                lane.config.dynamics, lane.testbed.node_ids, lane.rate_mbps, lane_states
            )


class _ExorEngineLane(Lane):
    """One :class:`ExorLane` spec as a lane on the shared lockstep engine."""

    def __init__(self, spec: ExorLane) -> None:
        self.spec = spec
        self.rng = spec.rng
        self.after = None  # remapped over wrappers by _wrap_lanes
        self._trajectory: LinkStateTrajectory | None = None
        self._state: _ExorLaneState | None = None

    @classmethod
    def prime_lanes(cls, lanes: list["_ExorEngineLane"]) -> None:
        """Batched root priming: grouped cache priming, ETX graphs, trajectories.

        Priming groups by (probe rate, payload) and (data rate, payload) so
        heterogeneous ensembles batch what they can share; building the ETX
        graph and dense matrices afterwards consumes no generator draws.
        Chained lanes prime at activation instead — after their
        predecessor's final draw, as the sequential code would.
        """
        probe_groups: dict[tuple, list[Testbed]] = {}
        data_groups: dict[tuple, list[Testbed]] = {}
        for wrapper in lanes:
            lane = wrapper.spec
            config = lane.config
            probe_groups.setdefault(
                (config.probe_rate_mbps, config.payload_bytes), []
            ).append(lane.testbed)
            data_groups.setdefault((lane.rate_mbps, config.payload_bytes), []).append(lane.testbed)
        for (probe_rate, payload), testbeds in probe_groups.items():
            prime_testbeds_lockstep(testbeds, probe_rate, payload)
        for wrapper in lanes:
            lane = wrapper.spec
            etx_graph(
                lane.testbed,
                probe_rate_mbps=lane.config.probe_rate_mbps,
                probe_bytes=lane.config.payload_bytes,
            )
        for (rate_mbps, payload), testbeds in data_groups.items():
            prime_testbeds_lockstep(testbeds, rate_mbps, payload)
        # Link-state trajectories: root lanes draw now (their post-priming
        # stream position) with the evolution scan stacked across lanes.
        _materialise_root_trajectories(lanes)

    def prime(self) -> None:
        """Chained activation: cache priming plus the trajectory draw.

        Both land right after the predecessor's final draw — the shared
        generator's sequential order.
        """
        lane = self.spec
        _prime_lane_caches(lane)
        if lane.config.dynamics is not None:
            self._trajectory = materialise_trajectory(
                lane.config.dynamics, lane.testbed.node_ids, lane.rate_mbps, lane.rng
            )

    def setup(self) -> None:
        """Build the lane's state and run its source-broadcast phase."""
        self._state = _lane_state(self.spec, self._trajectory)
        _broadcast_wave(self._state)

    def advance(self) -> None:
        """One forwarding round: every forwarder takes a turn."""
        state = self._state
        state.rounds += 1
        state.progress = False
        state.elapsed_us += state.lane.config.batch_map_overhead_us
        # Running OR of the higher-priority holders' packets: rows the
        # earlier turns of this round updated are all downstream of the
        # later forwarders, so the union of newly-delivered bits keeps
        # the pending computation current.
        higher_or = state.holds[0]
        for index_fwd in range(len(state.priority)):
            higher_or |= _forwarding_turn(state, index_fwd, higher_or)
            higher_or |= state.holds[index_fwd + 1]

    @property
    def finished(self) -> bool:
        """Whether the transfer has no forwarding rounds left."""
        return not self._state.active

    def result(self) -> ExorResult:
        """Run the (drawing) last-hop cleanup and build the lane's result."""
        state = self._state
        _cleanup(state)
        config = state.lane.config
        delivered = state.delivered
        bits = delivered * config.payload_bytes * 8
        throughput = bits / state.elapsed_us if state.elapsed_us > 0 else 0.0
        return ExorResult(
            throughput_mbps=throughput,
            delivered_packets=delivered,
            total_packets=config.batch_size,
            transmissions=state.transmissions,
            rounds=state.rounds,
            forwarders=tuple(state.priority),
            joint_transmissions=state.joint_count,
            elapsed_us=state.elapsed_us,
        )


def simulate_exor_ensemble(lanes: list[ExorLane]) -> list[ExorResult]:
    """Advance many ExOR batch transfers in lockstep.

    Bit-identical to calling :func:`repro.routing.exor.simulate_exor` once
    per lane with the same arguments — every lane's generator is consumed
    in its sequential order — while the probability priming is batched
    across lanes and each phase runs as stacked array operations.  Lanes
    may be fully heterogeneous (mixed batch sizes, topologies, rates and
    retry depths); chained lanes (``after=...``) start the moment their
    predecessor finishes, so dependent phases sharing one generator advance
    inside the same schedule.  Scheduling is the shared engine's
    (:class:`repro.engine.LockstepScheduler`).

    Example::

        lanes = [ExorLane(tb, 0, 1, 12.0, relays, config, rng)
                 for tb, relays, rng in zip(testbeds, relay_sets, rngs)]
        results = simulate_exor_ensemble(lanes)  # one ExorResult per lane
    """
    if not lanes:
        return []
    return LockstepScheduler().run(_wrap_lanes(lanes, _ExorEngineLane))


# ----------------------------------------------------------------------
# Single-path baseline in lockstep
# ----------------------------------------------------------------------
def _run_single_path_lane(lane: ExorLane, retry_limit: int) -> SinglePathResult:
    """Run one lane's single-path transfer to completion (pre-draw/rewind)."""
    from repro.net.etx import best_route

    config = lane.config
    testbed, rng = lane.testbed, lane.rng
    timing = lane.timing if lane.timing is not None else MacTiming(params=testbed.params)
    rate = rate_for_mbps(lane.rate_mbps)
    n_packets = config.batch_size
    graph = etx_graph(
        testbed, probe_rate_mbps=config.probe_rate_mbps, probe_bytes=config.payload_bytes
    )
    route_key = ("best_route", config.probe_rate_mbps, config.payload_bytes, lane.src, lane.dst)
    route = testbed._routing_cache.get(route_key)
    if route is None:
        route = best_route(graph, lane.src, lane.dst) or ()
        testbed._routing_cache[route_key] = route
    if len(route) < 2:
        return SinglePathResult(0.0, 0, n_packets, 0, tuple(route))
    # The trajectory draw sits after the route check and before the
    # attempt block, exactly where the sequential simulator makes it.
    trajectory = None
    if config.dynamics is not None:
        trajectory = materialise_trajectory(
            config.dynamics, testbed.node_ids, lane.rate_mbps, rng
        )
    matrix = testbed.delivery_prob_matrix(rate, config.payload_bytes)
    idx = testbed._node_index
    hops = list(zip(route[:-1], route[1:]))
    hop_probs = [float(matrix[idx[a], idx[b]]) for a, b in hops]
    per_attempt = timing.single_transaction_us(config.payload_bytes, rate)
    snapshot = {**rng.bit_generator.state}
    draws = rng.random(n_packets * len(hop_probs) * retry_limit).tolist()
    position = 0
    delivered = transmissions = 0
    elapsed = 0.0
    for _ in range(n_packets):
        alive = True
        for hop, prob in zip(hops, hop_probs):
            success = False
            for _ in range(retry_limit):
                if trajectory is None:
                    threshold = prob
                else:
                    threshold = prob * trajectory.pair_multiplier(
                        transmissions, hop[0], hop[1]
                    )
                got_through = draws[position] < threshold
                position += 1
                elapsed += per_attempt
                transmissions += 1
                if got_through:
                    success = True
                    break
            if not success:
                alive = False
                break
        if alive:
            delivered += 1
    # Rewind and re-consume exactly the used draws: the generator ends
    # in the same state as the sequential retry loops leave it.
    rng.bit_generator.state = snapshot
    if position:
        rng.random(position)
    bits = delivered * config.payload_bytes * 8
    throughput = bits / elapsed if elapsed > 0 else 0.0
    return SinglePathResult(
        throughput_mbps=throughput,
        delivered_packets=delivered,
        total_packets=n_packets,
        transmissions=transmissions,
        route=tuple(route),
        elapsed_us=elapsed,
    )


class _SinglePathEngineLane(Lane):
    """Run-to-completion single-path lane; chains carry no scheduling meaning.

    Lanes run fully inside :meth:`setup` in input order, so unchained
    generator sharing is naturally sequential — the class opts out of
    chain enforcement, matching the pre-engine behaviour (``after`` was
    accepted but ignored).
    """

    enforce_generator_chains = False

    def __init__(self, spec: ExorLane, retry_limit: int) -> None:
        self.spec = spec
        self.rng = spec.rng
        self.after = None  # input order already is the dependency order
        self._retry_limit = retry_limit
        self._result: SinglePathResult | None = None

    def setup(self) -> None:
        """Run the whole transfer now (the lane is feedback-bound)."""
        self._result = _run_single_path_lane(self.spec, self._retry_limit)

    @property
    def finished(self) -> bool:
        """Run-to-completion lanes finish during setup."""
        return self._result is not None

    def result(self) -> SinglePathResult:
        """Return the transfer result computed during setup."""
        return self._result


def simulate_single_path_ensemble(
    lanes: list[ExorLane],
    retry_limit: int = 8,
) -> list[SinglePathResult]:
    """Single-path bulk transfers for an ensemble of lanes.

    Bit-identical to per-lane
    :func:`repro.routing.single_path.simulate_single_path` calls with
    ``n_packets = config.batch_size``.  Each lane's retry loop is
    feedback-bound (it stops at the first acknowledged attempt), so the
    uniforms cannot merge into one draw; instead the lane pre-draws an
    upper-bound block, consumes it sequentially, and then rewinds its
    generator to advance by exactly the consumed count — the stream any
    downstream phase sees is unchanged.  Lanes run to completion in input
    order, so lanes sharing a generator are naturally sequential here (list
    them in their dependency order; ``after`` is accepted but not needed).
    """
    return LockstepScheduler().run(
        [_SinglePathEngineLane(spec, retry_limit) for spec in lanes]
    )


# ----------------------------------------------------------------------
# Link-local recovery in lockstep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkLocalLane:
    """One link-local-recovery bulk transfer for the lockstep ensemble.

    Lanes run to completion in input order (the retry structure is
    feedback-bound, like the single-path baseline), so lanes sharing a
    generator are naturally sequential here; ``after`` is accepted — and
    validated by the chaining rules — but carries no scheduling meaning.
    """

    testbed: Testbed
    src: int
    dst: int
    rate_mbps: float
    n_packets: int
    config: LinkLocalConfig
    rng: np.random.Generator
    timing: MacTiming | None = None
    after: "LinkLocalLane | None" = None


def simulate_link_local_ensemble(lanes: list[LinkLocalLane]) -> list[LinkLocalResult]:
    """Link-local-recovery transfers for an ensemble of lanes.

    Bit-identical to per-lane
    :func:`repro.routing.link_local.simulate_link_local` calls: both paths
    run the same :func:`repro.routing.link_local._transfer` loop, this one
    against a pre-drawn upper-bound block
    (``n_packets × e2e passes × hops × attempts per hop``) that is rewound
    to advance the generator by exactly the consumed count.  The trajectory
    draw (when ``config.dynamics`` is set) lands after the route check and
    before the block, in the sequential stream position.
    """
    if not lanes:
        return []
    # Chain validation happens on the specs: wrappers run unchained (input
    # order already is the sequential order for run-to-completion lanes).
    resolve_chains(lanes)
    return LockstepScheduler().run([_LinkLocalEngineLane(spec) for spec in lanes])


def _run_link_local_lane(lane: LinkLocalLane) -> LinkLocalResult:
    """Run one lane's link-local transfer to completion (pre-draw/rewind)."""
    from repro.net.etx import best_route

    config = lane.config
    testbed, rng = lane.testbed, lane.rng
    timing = lane.timing if lane.timing is not None else MacTiming(params=testbed.params)
    rate = rate_for_mbps(lane.rate_mbps)
    graph = etx_graph(
        testbed, probe_rate_mbps=config.probe_rate_mbps, probe_bytes=config.payload_bytes
    )
    route_key = ("best_route", config.probe_rate_mbps, config.payload_bytes, lane.src, lane.dst)
    route = testbed._routing_cache.get(route_key)
    if route is None:
        route = best_route(graph, lane.src, lane.dst) or ()
        testbed._routing_cache[route_key] = route
    if len(route) < 2:
        return LinkLocalResult(0.0, 0, lane.n_packets, 0, 0, 0, tuple(route))
    trajectory = None
    if config.dynamics is not None:
        trajectory = materialise_trajectory(
            config.dynamics, testbed.node_ids, lane.rate_mbps, rng
        )
    matrix = testbed.delivery_prob_matrix(rate, config.payload_bytes)
    idx = testbed._node_index
    hop_pairs = list(zip(route[:-1], route[1:]))
    hop_probs = [float(matrix[idx[a], idx[b]]) for a, b in hop_pairs]
    per_attempt = timing.single_transaction_us(config.payload_bytes, rate)
    bound = lane.n_packets * config.e2e_passes * len(hop_pairs) * config.attempts_per_hop
    snapshot = {**rng.bit_generator.state}
    block = rng.random(bound).tolist()
    consumed = 0

    def next_uniform(block: list[float] = block) -> float:
        nonlocal consumed
        value = block[consumed]
        consumed += 1
        return value

    mac = CsmaState()
    delivered, local_retransmissions, e2e_retries = _transfer(
        hop_pairs, hop_probs, lane.n_packets, config, trajectory, per_attempt,
        next_uniform, mac,
    )
    # Rewind and re-consume exactly the used draws, as in the
    # single-path baseline: downstream phases see an unchanged stream.
    rng.bit_generator.state = snapshot
    if consumed:
        rng.random(consumed)
    throughput = mac.throughput_mbps(delivered * config.payload_bytes * 8)
    return LinkLocalResult(
        throughput_mbps=throughput,
        delivered_packets=delivered,
        total_packets=lane.n_packets,
        transmissions=mac.transmissions,
        local_retransmissions=local_retransmissions,
        e2e_retries=e2e_retries,
        route=tuple(route),
        elapsed_us=mac.elapsed_us,
    )


class _LinkLocalEngineLane(Lane):
    """Run-to-completion link-local lane (chains validated on the specs)."""

    enforce_generator_chains = False

    def __init__(self, spec: LinkLocalLane) -> None:
        self.spec = spec
        self.rng = spec.rng
        self.after = None  # input order already is the dependency order
        self._result: LinkLocalResult | None = None

    def setup(self) -> None:
        """Run the whole transfer now (the retry structure is feedback-bound)."""
        self._result = _run_link_local_lane(self.spec)

    @property
    def finished(self) -> bool:
        """Run-to-completion lanes finish during setup."""
        return self._result is not None

    def result(self) -> LinkLocalResult:
        """Return the transfer result computed during setup."""
        return self._result


# ----------------------------------------------------------------------
# Last-hop downlink placements in lockstep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DownlinkLane:
    """One client placement's downlink stream for the lockstep last hop.

    Lanes may differ freely in ``n_packets`` and ``retry_limit``; a lane
    that runs out of packets stops participating in the stacked waves while
    the rest continue.  ``after`` chains this lane behind another lane of
    the same ensemble call (it starts only when that lane has delivered its
    whole stream), which is the only way two lanes may share one generator
    — e.g. the best-AP and SourceSync schemes of one Fig. 17 placement.
    """

    testbed: Testbed
    controller: SourceSyncController
    client: int
    scheme: str
    rng: np.random.Generator
    n_packets: int = 200
    payload_bytes: int = 1460
    retry_limit: int = 7
    timing: MacTiming | None = None
    after: "DownlinkLane | None" = None


def _lane_senders(lane: DownlinkLane) -> list[int]:
    """Resolve the transmitting APs exactly as :func:`simulate_downlink` does."""
    if lane.scheme == "sourcesync":
        return lane.controller.downlink_senders(lane.client)
    if lane.scheme == "best_ap":
        return [lane.controller.best_single_ap(lane.client)]
    if lane.scheme.startswith("single_ap:"):
        return [int(lane.scheme.split(":", 1)[1])]
    raise ValueError(f"unknown scheme {lane.scheme!r}")


def simulate_downlink_ensemble(lanes: list[DownlinkLane]) -> list[LastHopResult]:
    """Advance many last-hop downlink streams in lockstep.

    Bit-identical to per-lane :func:`repro.lasthop.simulation.simulate_downlink`
    calls: each lane's generator sees the identical draw sequence (the
    SampleRate sampling draw, then one uniform per transmission attempt).
    The SampleRate decision state of every lane is held in stacked arrays,
    per-(sender set, rate) delivery probabilities are precomputed with one
    batched EESM pass per lane, and each retry sub-wave is one stacked
    probability/airtime gather over every lane still attempting — which is
    where the sequential loop spends its time.

    Lanes may be heterogeneous: mixed ``n_packets`` and ``retry_limit``
    values advance in one schedule (a finished lane drops out of the
    waves), and chained lanes (``after=...``) activate — including their
    sender resolution, which may draw — the moment their predecessor's
    stream completes, so dependent schemes sharing one generator run in a
    single ensemble call.

    Example::

        best  = DownlinkLane(testbed, controller, client, "best_ap", rng)
        joint = DownlinkLane(testbed, controller, client, "sourcesync",
                             rng, after=best)
        best_result, joint_result = simulate_downlink_ensemble([best, joint])
    """
    if not lanes:
        return []
    ens = _DownlinkEnsemble(lanes)
    row_of = {id(spec): row for row, spec in enumerate(lanes)}
    wrappers = _wrap_lanes(
        lanes, lambda spec: _DownlinkEngineLane(spec, ens, row_of[id(spec)])
    )
    return LockstepScheduler().run(wrappers)


_WAITING, _ACTIVE, _DONE = -1, 0, 1


class _DownlinkEnsemble:
    """Stacked SampleRate/attempt state shared by one downlink ensemble call.

    One instance holds every lane's decision statistics and progress
    counters as stacked arrays, rows filled at lane activation; `lossless`
    rows start at 1.0 so untouched rows cannot divide by zero (see
    :mod:`repro.lasthop.rate_adaptation` for the sequential counterpart).
    """

    def __init__(self, lanes: list[DownlinkLane]) -> None:
        self.lanes = lanes
        self.rates = rates_sorted()
        self.n_rates = len(self.rates)
        self.sample_every = SampleRate.sample_every
        self.max_failures = SampleRate.max_successive_failures
        n_lanes = len(lanes)
        self.n_packets = np.array([lane.n_packets for lane in lanes], dtype=np.int64)
        self.retry_limits = np.array([lane.retry_limit for lane in lanes], dtype=np.int64)
        self.senders_per_lane: list[list[int] | None] = [None] * n_lanes
        self.prob_table = np.zeros((n_lanes, self.n_rates))
        self.airtime_table = np.zeros((n_lanes, self.n_rates))
        self.lossless = np.ones((n_lanes, self.n_rates))
        self.successes = np.zeros((n_lanes, self.n_rates), dtype=np.int64)
        self.totals = np.zeros((n_lanes, self.n_rates))
        self.streak_failures = np.zeros((n_lanes, self.n_rates), dtype=np.int64)
        self.elapsed = np.zeros(n_lanes)
        self.transmissions = np.zeros(n_lanes, dtype=np.int64)
        self.delivered = np.zeros(n_lanes, dtype=np.int64)
        self.packets_done = np.zeros(n_lanes, dtype=np.int64)
        self.chosen = np.zeros(n_lanes, dtype=np.int64)
        self.status = np.full(n_lanes, _WAITING, dtype=np.int64)

    def resolve(self, row: int) -> np.ndarray:
        """Sender resolution in the lane's sequential stream position.

        May lazily materialise link profiles (generator draws), exactly as
        the sequential loop's controller calls would before its packet loop
        — so a chained lane must not resolve until its predecessor has
        finished.  Returns the lane's (combined) per-subcarrier SNR profile.
        """
        lane = self.lanes[row]
        senders = _lane_senders(lane)
        self.senders_per_lane[row] = senders
        if len(senders) == 1:
            return lane.testbed.link_profile(senders[0], lane.client)
        from repro.analysis.error_models import combined_subcarrier_snr

        return combined_subcarrier_snr(
            [lane.testbed.link_profile(s, lane.client) for s in senders]
        )

    def fill_tables(self, row: int, prob_row: np.ndarray) -> None:
        """Install a resolved lane's probability/airtime rows and activate it."""
        lane = self.lanes[row]
        timing = lane.timing if lane.timing is not None else MacTiming(params=lane.testbed.params)
        self.prob_table[row] = prob_row
        n_cosenders = len(self.senders_per_lane[row]) - 1
        for col, rate in enumerate(self.rates):
            if n_cosenders > 0:
                self.airtime_table[row, col] = timing.joint_transaction_us(
                    lane.payload_bytes, rate, n_cosenders
                )
            else:
                self.airtime_table[row, col] = timing.single_transaction_us(
                    lane.payload_bytes, rate
                )
            self.lossless[row, col] = timing.single_transaction_us(lane.payload_bytes, rate)
        status = _DONE if lane.n_packets <= 0 else _ACTIVE  # degenerate: done at once
        self.status[row] = status

    def current_best(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised SampleRate._current_best over the given lane rows."""
        with np.errstate(divide="ignore", invalid="ignore"):
            average = np.where(
                self.successes[rows] > 0, self.totals[rows] / self.successes[rows], np.inf
            )
        effective = np.where(self.successes[rows] > 0, average, self.lossless[rows] * 1.2)
        effective = np.where(self.streak_failures[rows] >= self.max_failures, np.inf, effective)
        minima = effective.min(axis=1)
        # Ties break towards the higher rate (the sequential sort key is
        # (average, -mbps)); all-excluded lanes fall back to the lowest rate.
        is_min = effective == minima[:, None]
        best = self.n_rates - 1 - np.argmax(is_min[:, ::-1], axis=1)
        return np.where(np.isinf(minima), 0, best)

    def wave(self) -> None:
        """One packet wave: rate choice, retry sub-waves, stats report."""
        lanes, chosen = self.lanes, self.chosen
        active = np.nonzero(self.status == _ACTIVE)[0]
        if active.size == 0:
            return
        chosen[active] = self.current_best(active)
        if self.sample_every > 0:
            due = active[(self.packets_done[active] + 1) % self.sample_every == 0]
            if due.size:
                with np.errstate(divide="ignore", invalid="ignore"):
                    average = np.where(
                        self.successes[due] > 0, self.totals[due] / self.successes[due], np.inf
                    )
                best_average = average[np.arange(due.size), chosen[due]]
                viable = self.lossless[due] < best_average[:, None]
                viable[np.arange(due.size), chosen[due]] = False
                for position, row in enumerate(due.tolist()):
                    options = np.nonzero(viable[position])[0]
                    if options.size == 0:
                        options = np.array(
                            [c for c in range(self.n_rates) if c != chosen[row]]
                        )
                    chosen[row] = options[int(lanes[row].rng.integers(0, options.size))]

        # Hoist the per-wave (lane, rate) gathers once; the retry sub-waves
        # below index these 1-D views by position instead of re-gathering
        # 2-D tables per attempt.
        act_chosen = chosen[active]
        act_prob = self.prob_table[active, act_chosen]
        act_airtime = self.airtime_table[active, act_chosen]
        act_lossless = self.lossless[active, act_chosen]
        act_retry = self.retry_limits[active]

        # Retry sub-waves: every lane still attempting this packet draws one
        # scalar uniform (its sequential order), the probability and airtime
        # gathers run stacked; lanes drop out at success or their own limit.
        success_act = np.zeros(active.size, dtype=bool)
        attempts_act = np.zeros(active.size, dtype=np.int64)
        remaining = np.arange(active.size)
        for attempt in range(int(act_retry.max())):
            if remaining.size == 0:
                break
            rows = active[remaining]
            draws = np.array([lanes[row].rng.random() for row in rows.tolist()])
            succeeded = draws < act_prob[remaining]
            self.elapsed[rows] += act_airtime[remaining]
            self.transmissions[rows] += 1
            attempts_act[remaining] += 1
            success_act[remaining[succeeded]] = True
            remaining = remaining[~succeeded]
            remaining = remaining[act_retry[remaining] > attempt + 1]

        # adapter.report(rate, success, attempts) for every active lane at once
        self.totals[active, act_chosen] += act_lossless * attempts_act
        self.successes[active, act_chosen] += success_act
        self.streak_failures[active, act_chosen] = np.where(
            success_act, 0, self.streak_failures[active, act_chosen] + 1
        )
        self.delivered[active] += success_act
        self.packets_done[active] += 1
        done = active[self.packets_done[active] >= self.n_packets[active]]
        self.status[done] = _DONE


class _DownlinkEngineLane(Lane):
    """Engine lane wrapping one :class:`DownlinkLane` row of the stacked state."""

    stacked = True

    def __init__(self, spec: DownlinkLane, ens: _DownlinkEnsemble, row: int) -> None:
        self.spec = spec
        self.rng = spec.rng
        self.after: "_DownlinkEngineLane | None" = None
        self.ens = ens
        self.row = row
        self._prob_row: np.ndarray | None = None

    @classmethod
    def prime_lanes(cls, lanes: list["_DownlinkEngineLane"]) -> None:
        """Prime root lanes: per-lane sender resolution, stacked EESM pass.

        Sender resolution draws stay per lane in input order, but the EESM
        pass runs stacked across every root sharing a payload size and
        profile width (row-wise bit-identical to the per-lane calls).
        """
        ens = lanes[0].ens
        profiles = {wrapper.row: ens.resolve(wrapper.row) for wrapper in lanes}
        eesm_groups: dict[tuple[int, int], list["_DownlinkEngineLane"]] = {}
        for wrapper in lanes:
            key = (wrapper.spec.payload_bytes, profiles[wrapper.row].size)
            eesm_groups.setdefault(key, []).append(wrapper)
        for (payload_bytes, _), members in eesm_groups.items():
            probs = delivery_probabilities_rates(
                np.vstack([profiles[w.row] for w in members]), ens.rates, payload_bytes
            )
            for wrapper, prob_row in zip(members, probs):
                wrapper._prob_row = prob_row

    def prime(self) -> None:
        """Chained activation: resolve senders (may draw), single-row EESM."""
        profile = self.ens.resolve(self.row)
        self._prob_row = delivery_probabilities_rates(
            profile[None, :], self.ens.rates, self.spec.payload_bytes
        )[0]

    def setup(self) -> None:
        """Install this lane's probability/airtime rows and mark it active."""
        self.ens.fill_tables(self.row, self._prob_row)

    @classmethod
    def advance_lanes(cls, lanes: list["_DownlinkEngineLane"]) -> None:
        """One stacked packet wave over every active row of the shared state."""
        lanes[0].ens.wave()

    @property
    def finished(self) -> bool:
        """Whether this row's stream has delivered (or skipped) every packet."""
        return bool(self.ens.status[self.row] == _DONE)

    def result(self) -> LastHopResult:
        """Assemble this row's :class:`LastHopResult` from the stacked totals."""
        ens, row, lane = self.ens, self.row, self.spec
        bits = int(ens.delivered[row]) * lane.payload_bytes * 8
        throughput = bits / ens.elapsed[row] if ens.elapsed[row] > 0 else 0.0
        return LastHopResult(
            throughput_mbps=float(throughput),
            delivered_packets=int(ens.delivered[row]),
            total_packets=lane.n_packets,
            transmissions=int(ens.transmissions[row]),
            scheme=lane.scheme,
            senders=tuple(ens.senders_per_lane[row]),
        )
